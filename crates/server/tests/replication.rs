//! Leader/follower replication over real sockets, in process: a durable
//! daemon is the leader, a second daemon bootstraps from its
//! `/wal/snapshot`, tails `/wal/tail`, serves the same reads, redirects
//! writes with `421`, and becomes a leader on `POST /promote` — the
//! protocol of docs/replication.md exercised end to end.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use pg_server::http::read_response;
use pg_server::workload::{sample_graph, toggle_delta, user_ids, SCHEMA_SDL};
use pg_server::{LogFormat, Server, ServerConfig, ServerHandle};
use pgraph::json::{self, Json};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("pg-server-repl-tests")
        .join(format!("{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Daemon {
    addr: SocketAddr,
    handle: ServerHandle,
}

impl Daemon {
    fn leader(dir: &Path) -> Daemon {
        let config = ServerConfig::builder()
            .addr("127.0.0.1:0")
            .cores(1)
            .log_format(LogFormat::Off)
            .data_dir(dir.to_str().unwrap())
            .build();
        let handle = Server::bind(config).expect("bind").serve().expect("serve");
        Daemon {
            addr: handle.local_addr(),
            handle,
        }
    }

    fn follower(dir: &Path, leader: SocketAddr) -> Daemon {
        let config = ServerConfig::builder()
            .addr("127.0.0.1:0")
            .cores(1)
            .log_format(LogFormat::Off)
            .data_dir(dir.to_str().unwrap())
            .follow(leader.to_string())
            .build();
        let handle = Server::bind(config).expect("bind").serve().expect("serve");
        Daemon {
            addr: handle.local_addr(),
            handle,
        }
    }

    fn stop(self) {
        self.handle.shutdown();
        self.handle.join().expect("clean shutdown");
    }
}

struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn request_full(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes()).unwrap();
        self.stream.write_all(body).unwrap();
        read_response(&mut self.stream, &mut self.buf).expect("response")
    }

    fn request(&mut self, method: &str, target: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let (status, _headers, body) = self.request_full(method, target, body);
        (status, body)
    }

    fn metric(&mut self, name: &str) -> u64 {
        let (status, body) = self.request("GET", "/metrics", b"");
        assert_eq!(status, 200);
        String::from_utf8_lossy(&body)
            .lines()
            .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no `{name}` sample in /metrics"))
    }
}

fn envelope(users: usize) -> Vec<u8> {
    let graph = sample_graph(users);
    let mut out = String::new();
    out.push_str("{\"schema\":");
    pg_server::http::push_json_string(&mut out, SCHEMA_SDL);
    out.push_str(",\"graph\":");
    out.push_str(&json::to_json(&graph));
    out.push('}');
    out.into_bytes()
}

/// Strips the volatile timing `metrics` member so reports over the same
/// state compare byte-for-byte.
fn canonical_report(body: &[u8]) -> String {
    let doc = Json::parse(&String::from_utf8_lossy(body)).expect("report JSON");
    match doc {
        Json::Object(members) => Json::Object(
            members
                .into_iter()
                .filter(|(name, _)| name != "metrics")
                .collect(),
        )
        .to_string(),
        other => other.to_string(),
    }
}

/// Blocks until the follower has applied the leader's newest sequence
/// number (polled via its replication metrics).
fn wait_caught_up(follower: &mut Client, leader_last: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if follower.metric("pgschemad_replication_last_applied_seq") >= leader_last {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower did not reach seq {leader_last} within 10s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The leader's newest sequence number, read from its own tail
/// endpoint (`x-wal-end-seq` is one past it).
fn leader_last_seq(leader: &mut Client) -> u64 {
    let (status, headers, _) = leader.request_full("GET", "/wal/tail?from=1", b"");
    // 410 once compacted: fall back to the oldest retained hint's
    // segment via an in-range request.
    if status == 410 {
        let oldest = headers
            .iter()
            .find(|(k, _)| k == "x-wal-oldest-retained")
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .expect("410 carries x-wal-oldest-retained");
        let (status, headers, _) =
            leader.request_full("GET", &format!("/wal/tail?from={oldest}"), b"");
        assert_eq!(status, 200);
        return header_u64(&headers, "x-wal-end-seq") - 1;
    }
    assert_eq!(status, 200);
    header_u64(&headers, "x-wal-end-seq") - 1
}

fn header_u64(headers: &[(String, String)], name: &str) -> u64 {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("no numeric `{name}` header"))
}

#[test]
fn follower_bootstraps_serves_reads_and_misdirects_writes() {
    let leader_dir = test_dir("boot-leader");
    let follower_dir = test_dir("boot-follower");
    let leader = Daemon::leader(&leader_dir);
    let mut client = Client::connect(leader.addr);

    // Session history on the leader: one broken, one repaired.
    let mut ids = Vec::new();
    for users in [2usize, 3] {
        let (status, body) = client.request("POST", "/sessions", &envelope(users));
        assert_eq!(status, 201);
        let id = Json::parse(&String::from_utf8_lossy(&body))
            .ok()
            .and_then(|d| d.get("session")?.as_i64())
            .expect("session id");
        ids.push((id, users));
    }
    for (i, &(id, users)) in ids.iter().enumerate() {
        let user = user_ids(&sample_graph(users))[0];
        for d in 0..(i as u64 + 1) {
            let delta = json::delta_to_json(&toggle_delta(user, d));
            let (status, _) =
                client.request("POST", &format!("/sessions/{id}/deltas"), delta.as_bytes());
            assert_eq!(status, 200);
        }
    }
    // Compact: now the WAL no longer reaches back to sequence 1, so the
    // follower MUST bootstrap from the snapshot, not from a full tail.
    let (status, _) = client.request("POST", &format!("/sessions/{}/compact", ids[0].0), b"");
    assert_eq!(status, 200);
    let (status, headers, _) = client.request_full("GET", "/wal/tail?from=1", b"");
    assert_eq!(status, 410, "compacted history must demand a snapshot");
    assert!(header_u64(&headers, "x-wal-oldest-retained") > 1);

    let follower = Daemon::follower(&follower_dir, leader.addr);
    let mut fclient = Client::connect(follower.addr);
    let last = leader_last_seq(&mut client);
    wait_caught_up(&mut fclient, last);
    assert_eq!(fclient.metric("pgschemad_replication_follower"), 1);

    // Reads on the follower are byte-identical to the leader's.
    for &(id, _) in &ids {
        let (status, leader_report) = client.request("GET", &format!("/sessions/{id}/report"), b"");
        assert_eq!(status, 200);
        let (status, follower_report) =
            fclient.request("GET", &format!("/sessions/{id}/report"), b"");
        assert_eq!(status, 200);
        assert_eq!(
            canonical_report(&follower_report),
            canonical_report(&leader_report),
            "session {id} report"
        );
        let (status, leader_graph) = client.request("GET", &format!("/sessions/{id}/graph"), b"");
        assert_eq!(status, 200);
        let (status, follower_graph) =
            fclient.request("GET", &format!("/sessions/{id}/graph"), b"");
        assert_eq!(status, 200);
        assert_eq!(follower_graph, leader_graph, "session {id} graph");
    }

    // Stateless validation still works on a follower — it writes nothing.
    let (status, _) = fclient.request("POST", "/validate?engine=indexed", &envelope(2));
    assert_eq!(status, 200);

    // Writes are misdirected to the leader: create, delta, compact,
    // delete all answer 421 and name the leader.
    let id = ids[0].0;
    for (method, target, body) in [
        ("POST", "/sessions".to_owned(), envelope(2)),
        (
            "POST",
            format!("/sessions/{id}/deltas"),
            br#"{"ops":[]}"#.to_vec(),
        ),
        ("POST", format!("/sessions/{id}/compact"), Vec::new()),
        ("DELETE", format!("/sessions/{id}"), Vec::new()),
    ] {
        let (status, headers, _) = fclient.request_full(method, &target, &body);
        assert_eq!(status, 421, "{method} {target}");
        let named = headers
            .iter()
            .find(|(k, _)| k == "x-pgschema-leader")
            .map(|(_, v)| v.clone());
        assert_eq!(named, Some(leader.addr.to_string()), "{method} {target}");
    }
    // …and none of them changed the follower's state.
    let (status, _) = fclient.request("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 200);

    follower.stop();
    leader.stop();
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}

#[test]
fn live_deltas_replicate_while_both_run() {
    let leader_dir = test_dir("live-leader");
    let follower_dir = test_dir("live-follower");
    let leader = Daemon::leader(&leader_dir);
    let mut client = Client::connect(leader.addr);

    let (status, body) = client.request("POST", "/sessions", &envelope(2));
    assert_eq!(status, 201);
    let id = Json::parse(&String::from_utf8_lossy(&body))
        .ok()
        .and_then(|d| d.get("session")?.as_i64())
        .expect("session id");

    let follower = Daemon::follower(&follower_dir, leader.addr);
    let mut fclient = Client::connect(follower.addr);
    wait_caught_up(&mut fclient, leader_last_seq(&mut client));

    // Deltas written after the follower attached arrive through live
    // tailing, ending with the session broken (odd toggle count).
    let user = user_ids(&sample_graph(2))[0];
    for d in 0..3u64 {
        let delta = json::delta_to_json(&toggle_delta(user, d));
        let (status, _) =
            client.request("POST", &format!("/sessions/{id}/deltas"), delta.as_bytes());
        assert_eq!(status, 200);
    }
    wait_caught_up(&mut fclient, leader_last_seq(&mut client));

    let (status, report) = fclient.request("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 200);
    let report = Json::parse(&String::from_utf8_lossy(&report)).expect("report JSON");
    assert_eq!(
        report.get("conforms"),
        Some(&Json::Bool(false)),
        "the broken state replicated"
    );

    // A session deleted on the leader disappears from the follower.
    let (status, _) = client.request("DELETE", &format!("/sessions/{id}"), b"");
    assert_eq!(status, 200);
    wait_caught_up(&mut fclient, leader_last_seq(&mut client));
    let (status, _) = fclient.request("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 404, "replicated delete removes the session");

    follower.stop();
    leader.stop();
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}

#[test]
fn promotion_flips_the_role_and_accepts_writes() {
    let leader_dir = test_dir("promote-leader");
    let follower_dir = test_dir("promote-follower");
    let leader = Daemon::leader(&leader_dir);
    let mut client = Client::connect(leader.addr);

    // Promoting a node that is already a leader is a no-op answer.
    let (status, body) = client.request("POST", "/promote", b"");
    assert_eq!(status, 200);
    let doc = Json::parse(&String::from_utf8_lossy(&body)).expect("promote JSON");
    assert_eq!(doc.get("promoted"), Some(&Json::Bool(false)));

    let (status, body) = client.request("POST", "/sessions", &envelope(2));
    assert_eq!(status, 201);
    let id = Json::parse(&String::from_utf8_lossy(&body))
        .ok()
        .and_then(|d| d.get("session")?.as_i64())
        .expect("session id");

    let follower = Daemon::follower(&follower_dir, leader.addr);
    let mut fclient = Client::connect(follower.addr);
    wait_caught_up(&mut fclient, leader_last_seq(&mut client));

    let (status, body) = fclient.request("POST", "/promote", b"");
    assert_eq!(status, 200);
    let doc = Json::parse(&String::from_utf8_lossy(&body)).expect("promote JSON");
    assert_eq!(doc.get("role"), Some(&Json::Str("leader".into())));
    assert_eq!(doc.get("promoted"), Some(&Json::Bool(true)));
    assert_eq!(fclient.metric("pgschemad_replication_follower"), 0);
    assert_eq!(fclient.metric("pgschemad_replication_state"), 0);

    // The promoted node takes writes now: a delta against the
    // replicated session, and a fresh session.
    let user = user_ids(&sample_graph(2))[0];
    let delta = json::delta_to_json(&toggle_delta(user, 0));
    let (status, _) = fclient.request("POST", &format!("/sessions/{id}/deltas"), delta.as_bytes());
    assert_eq!(status, 200, "promoted node accepts deltas");
    let (status, body) = fclient.request("POST", "/sessions", &envelope(2));
    assert_eq!(status, 201, "promoted node accepts creates");
    let new_id = Json::parse(&String::from_utf8_lossy(&body))
        .ok()
        .and_then(|d| d.get("session")?.as_i64())
        .expect("session id");
    assert!(new_id > id, "ids continue past the replicated history");

    follower.stop();
    leader.stop();
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}

#[test]
fn replication_endpoints_require_a_store() {
    // A memory-only daemon has no WAL: the replication surface answers
    // 409 rather than pretending.
    let config = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .cores(1)
        .log_format(LogFormat::Off)
        .build();
    let handle = Server::bind(config).expect("bind").serve().expect("serve");
    let mut client = Client::connect(handle.local_addr());

    let (status, _) = client.request("GET", "/wal/tail?from=1", b"");
    assert_eq!(status, 409);
    let (status, _) = client.request("GET", "/wal/snapshot", b"");
    assert_eq!(status, 409);

    handle.shutdown();
    handle.join().expect("clean shutdown");
}

#[test]
fn tail_rejects_bad_from_parameters() {
    let dir = test_dir("tail-params");
    let leader = Daemon::leader(&dir);
    let mut client = Client::connect(leader.addr);

    for target in ["/wal/tail", "/wal/tail?from=0", "/wal/tail?from=nope"] {
        let (status, _) = client.request("GET", target, b"");
        assert_eq!(status, 400, "{target}");
    }
    // Beyond the end is not an error — it is an empty batch, which is
    // how a caught-up follower polls.
    let (status, headers, body) = client.request_full("GET", "/wal/tail?from=999", b"");
    assert_eq!(status, 200);
    assert!(body.is_empty());
    assert_eq!(header_u64(&headers, "x-wal-next-from"), 999);

    leader.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// [`SCHEMA_SDL`] with `UserSession.endTime` made `@required` — every
/// sample session lacks it, so commit needs `force` and the new
/// schema's report is non-conforming.
const BREAKING_SDL: &str = r#"
type UserSession {
    id: ID! @required
    user(certainty: Float! comment: String): User! @required
    startTime: Time! @required
    endTime: Time! @required
}
type User @key(fields: ["id"]) {
    id: ID! @required
    login: String! @required
    nicknames: [String!]!
}
scalar Time
"#;

fn migrate_body(action: &str, schema: Option<&str>, force: bool) -> Vec<u8> {
    let mut out = String::new();
    out.push_str("{\"action\":\"");
    out.push_str(action);
    out.push('"');
    if let Some(sdl) = schema {
        out.push_str(",\"schema\":");
        pg_server::http::push_json_string(&mut out, sdl);
    }
    if force {
        out.push_str(",\"force\":true");
    }
    out.push('}');
    out.into_bytes()
}

/// An open migration window is WAL state: killing the leader mid-window
/// and restarting from the same directory re-opens it — the commit (and
/// its regression guard) behave exactly as they would have before the
/// crash.
#[test]
fn open_migration_window_survives_restart() {
    let dir = test_dir("migrate-restart");
    let leader = Daemon::leader(&dir);
    let mut client = Client::connect(leader.addr);

    let (status, body) = client.request("POST", "/sessions", &envelope(3));
    assert_eq!(status, 201);
    let created = Json::parse(&String::from_utf8_lossy(&body)).unwrap();
    let id = created.get("session").and_then(Json::as_i64).unwrap();
    let migrate = format!("/sessions/{id}/migrate");

    let (status, _) = client.request(
        "POST",
        &migrate,
        &migrate_body("begin", Some(BREAKING_SDL), false),
    );
    assert_eq!(status, 200);
    // Mutate inside the window so recovery replays a delta under it too.
    let users = user_ids(&sample_graph(3));
    let (status, _) = client.request(
        "POST",
        &format!("/sessions/{id}/deltas"),
        json::delta_to_json(&toggle_delta(users[0], 1)).as_bytes(),
    );
    assert_eq!(status, 200);
    leader.stop();

    let leader = Daemon::leader(&dir);
    let mut client = Client::connect(leader.addr);
    // The recovered window still guards its regressions...
    let (status, body) = client.request("POST", &migrate, &migrate_body("commit", None, false));
    assert_eq!(status, 409, "{}", String::from_utf8_lossy(&body));
    // ...and still commits when forced, serving the new schema's report.
    let (status, body) = client.request("POST", &migrate, &migrate_body("commit", None, true));
    assert_eq!(status, 200);
    let committed = Json::parse(&String::from_utf8_lossy(&body)).unwrap();
    assert_eq!(
        committed.get("report").and_then(|r| r.get("conforms")),
        Some(&Json::Bool(false))
    );
    leader.stop();
}

/// A follower applies replicated `SchemaChange` records: after the
/// leader commits a migration, the follower's report for the session is
/// byte-identical to the leader's — i.e. it serves the *new* schema's
/// violations, and misdirects migration writes throughout.
#[test]
fn follower_applies_replicated_migration() {
    let leader_dir = test_dir("migrate-leader");
    let follower_dir = test_dir("migrate-follower");
    let leader = Daemon::leader(&leader_dir);
    let mut client = Client::connect(leader.addr);

    let (status, body) = client.request("POST", "/sessions", &envelope(4));
    assert_eq!(status, 201);
    let created = Json::parse(&String::from_utf8_lossy(&body)).unwrap();
    let id = created.get("session").and_then(Json::as_i64).unwrap();
    let migrate = format!("/sessions/{id}/migrate");

    let follower = Daemon::follower(&follower_dir, leader.addr);
    let mut fclient = Client::connect(follower.addr);
    wait_caught_up(&mut fclient, leader_last_seq(&mut client));

    // Writes are misdirected on the follower, including migrations.
    let (status, _) = fclient.request(
        "POST",
        &migrate,
        &migrate_body("begin", Some(BREAKING_SDL), false),
    );
    assert_eq!(status, 421);

    let (status, _) = client.request(
        "POST",
        &migrate,
        &migrate_body("begin", Some(BREAKING_SDL), false),
    );
    assert_eq!(status, 200);
    wait_caught_up(&mut fclient, leader_last_seq(&mut client));
    // Mid-window the follower still serves the *old* schema's report.
    let (status, body) = fclient.request("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 200);
    let report = Json::parse(&String::from_utf8_lossy(&body)).unwrap();
    assert_eq!(report.get("conforms"), Some(&Json::Bool(true)));

    let (status, _) = client.request("POST", &migrate, &migrate_body("commit", None, true));
    assert_eq!(status, 200);
    wait_caught_up(&mut fclient, leader_last_seq(&mut client));

    let (status, leader_report) = client.request("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 200);
    let (status, follower_report) = fclient.request("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 200);
    assert_eq!(
        canonical_report(&follower_report),
        canonical_report(&leader_report),
        "follower serves the committed schema's report"
    );
    let parsed = Json::parse(&String::from_utf8_lossy(&follower_report)).unwrap();
    assert_eq!(
        parsed.get("conforms"),
        Some(&Json::Bool(false)),
        "the committed schema is the breaking one"
    );

    follower.stop();
    leader.stop();
}
