//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the API surface the workspace uses:
//!
//! * [`rngs::StdRng`] / [`rngs::SmallRng`] seeded via
//!   [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_bool`], [`Rng::gen_range`] (integer ranges, half-open and
//!   inclusive), [`Rng::gen`] for primitive types,
//! * [`seq::SliceRandom::shuffle`] and [`seq::SliceRandom::choose`],
//! * a `prelude` re-exporting all of the above.
//!
//! The generator is SplitMix64: tiny, statistically sound for test-data
//! generation, and fully deterministic per seed — which is all the
//! workspace needs (reproducible datagen, k-SAT instance generation).
//! It is **not** the same stream as upstream `rand`'s `StdRng`, so seeds
//! produce different (but equally stable) data.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection sampling (span ≤ 2^64).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64() as u128;
    }
    let span64 = span as u64;
    // Largest multiple of span that fits in u64; rejection keeps the draw
    // exactly uniform.
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::draw(self) < p
    }

    /// Uniform draw from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Same generator under the `SmallRng` name.
    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) StdRng);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(StdRng::seed_from_u64(seed))
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// One-stop imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((600..1400).contains(&hits), "p=0.25 hits: {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
