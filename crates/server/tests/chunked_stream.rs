//! Property test for the reactor's resumable request parsing: a
//! pipelined keep-alive byte stream must produce the *byte-identical*
//! response stream no matter how it is fragmented across wakeups — one
//! byte at a time, random chunks, or a single write.
//!
//! The request pool is restricted to routes whose responses are fully
//! deterministic (no session ids, no timing figures), so the comparison
//! can be exact.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use pg_server::{LogFormat, Server, ServerConfig, ServerHandle};
use proptest::prelude::*;

/// Pipelined requests with deterministic responses. Every entry is a
/// complete HTTP/1.1 request; the last one on a wire is sent with
/// `connection: close` so the server terminates the stream for us.
const POOL: &[&str] = &[
    "GET /healthz HTTP/1.1\r\n\r\n",
    "GET /nope HTTP/1.1\r\n\r\n",
    "DELETE /validate HTTP/1.1\r\n\r\n",
    "POST /validate HTTP/1.1\r\ncontent-length: 9\r\n\r\nnot json!",
    "GET /sessions/424242/report HTTP/1.1\r\n\r\n",
    "POST /sessions/424242/deltas HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}",
];

fn start_daemon() -> ServerHandle {
    let config = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .cores(1)
        .log_format(LogFormat::Off)
        .build();
    Server::bind(config).expect("bind").serve().expect("serve")
}

/// Concatenates the chosen requests into one pipelined wire image,
/// marking the final request `connection: close`.
fn wire_image(picks: &[usize]) -> Vec<u8> {
    let mut wire = Vec::new();
    for (i, &pick) in picks.iter().enumerate() {
        let request = POOL[pick % POOL.len()];
        if i + 1 == picks.len() {
            let head_end = request.find("\r\n").unwrap() + 2;
            wire.extend_from_slice(&request.as_bytes()[..head_end]);
            wire.extend_from_slice(b"connection: close\r\n");
            wire.extend_from_slice(&request.as_bytes()[head_end..]);
        } else {
            wire.extend_from_slice(request.as_bytes());
        }
    }
    wire
}

/// Sends `wire` split at `cuts` (fragment boundaries, pre-sorted), with
/// a short pause after each fragment so the reactor observes separate
/// wakeups, then reads the full response stream to EOF.
fn exchange(addr: SocketAddr, wire: &[u8], cuts: &[usize]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut from = 0;
    for &cut in cuts.iter().chain(std::iter::once(&wire.len())) {
        if cut > from {
            stream.write_all(&wire[from..cut]).unwrap();
            from = cut;
        }
        if !cuts.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let mut responses = Vec::new();
    stream.read_to_end(&mut responses).expect("read to EOF");
    responses
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random pipelined sequences, random fragmentation: the chunked
    /// response stream equals the single-write response stream.
    #[test]
    fn random_chunking_matches_single_write(
        picks in proptest::collection::vec(0..6usize, 1..5),
        raw_cuts in proptest::collection::vec(0..512usize, 0..24),
    ) {
        let daemon = start_daemon();
        let addr = daemon.local_addr();
        let wire = wire_image(&picks);
        let mut cuts: Vec<usize> = raw_cuts
            .into_iter()
            .map(|c| c % wire.len())
            .collect();
        cuts.sort_unstable();
        cuts.dedup();

        let baseline = exchange(addr, &wire, &[]);
        let chunked = exchange(addr, &wire, &cuts);
        daemon.shutdown();
        daemon.join().expect("clean shutdown");

        prop_assert!(!baseline.is_empty(), "baseline produced no bytes");
        prop_assert_eq!(chunked, baseline);
    }
}

/// The degenerate fragmentation: every single byte is its own wakeup.
/// Uses a short two-request pipeline so the one-pause-per-byte pacing
/// stays fast.
#[test]
fn byte_at_a_time_matches_single_write() {
    let daemon = start_daemon();
    let addr = daemon.local_addr();
    let wire = wire_image(&[3, 0]);
    let cuts: Vec<usize> = (1..wire.len()).collect();

    let baseline = exchange(addr, &wire, &[]);
    let trickled = exchange(addr, &wire, &cuts);
    daemon.shutdown();
    daemon.join().expect("clean shutdown");

    let text = String::from_utf8_lossy(&baseline);
    assert!(
        text.starts_with("HTTP/1.1 400"),
        "first response is the 400"
    );
    assert!(text.contains("HTTP/1.1 200"), "second response is the 200");
    assert_eq!(trickled, baseline);
}
