//! Kernels for weak satisfaction — rules WS1–WS4 (Definition 5.1).
//!
//! All lookups are symbol-keyed: labels and property keys arrive as
//! [`Sym`](pgraph::Sym)s from the scope's columnar scan and are resolved
//! against the compiled [`SymSchema`](super::symschema::SymSchema) rows,
//! so the hot loops compare `u32`s and only allocate when a violation is
//! actually emitted.

use crate::report::{Rule, Violation};

use super::{Scope, Sink};

/// WS1: node property values conform to their declared attribute types —
/// one scan over the scope's nodes.
pub(crate) fn ws1(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::WS1, |sink| {
        let (s, ss) = (scope.s, scope.ss);
        for n in scope.nodes() {
            if sink.at_limit() {
                return;
            }
            sink.node_visited();
            let row = ss.row(n.label);
            for (prop, value) in n.props.iter() {
                if let Some(attr) = row.attr(prop) {
                    if !s.schema().value_conforms(value, &attr.ty) {
                        sink.push(Violation::NodePropertyType {
                            node: n.id,
                            field: scope.syms.resolve(prop).to_owned(),
                            value: value.to_string(),
                            expected: attr.expected.clone(),
                        });
                    }
                }
            }
        }
    });
}

/// WS2: edge property values conform to their declared argument types
/// (relationship fields only; attribute field arguments are ignored per
/// §3.6) — one scan over the scope's edges.
pub(crate) fn ws2(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::WS2, |sink| {
        let (s, ss) = (scope.s, scope.ss);
        for e in scope.edges() {
            if sink.at_limit() {
                return;
            }
            sink.edge_visited();
            let Some(rel) = ss.relationship(scope.label_sym(e.src), e.label) else {
                continue;
            };
            for (prop, value) in e.props.iter() {
                if let Some(ep) = rel.edge_prop(prop) {
                    if !s.schema().value_conforms(value, &ep.ty) {
                        sink.push(Violation::EdgePropertyType {
                            edge: e.id,
                            prop: scope.syms.resolve(prop).to_owned(),
                            value: value.to_string(),
                            expected: ep.expected.clone(),
                        });
                    }
                }
            }
        }
    });
}

/// WS3: an edge's target label is a subtype of the field's base type —
/// checked over *all* field definitions of the source type, in one scan
/// over the scope's edges.
pub(crate) fn ws3(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::WS3, |sink| {
        let ss = scope.ss;
        for e in scope.edges() {
            if sink.at_limit() {
                return;
            }
            sink.edge_visited();
            let Some(src_label) = scope.label_sym(e.src) else {
                continue;
            };
            let Some(field) = ss.row(src_label).field(e.label) else {
                continue;
            };
            let target_label = scope.label_sym(e.dst);
            if !ss.label_subtype_opt(target_label, field.base) {
                sink.push(Violation::EdgeTargetType {
                    edge: e.id,
                    target: e.dst,
                    target_label: target_label
                        .map_or_else(String::new, |l| scope.syms.resolve(l).to_owned()),
                    expected: field.base_name.clone(),
                });
            }
        }
    });
}

/// WS4: at most one outgoing edge per non-list relationship field — via
/// the `(source, label)` out-groups whose source the scope owns.
pub(crate) fn ws4(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::WS4, |sink| {
        let ss = scope.ss;
        scope.for_out_groups(&mut |source, label, edges| {
            if sink.at_limit() {
                return false;
            }
            if edges.len() < 2 {
                return true;
            }
            sink.group_visited();
            let Some(src_label) = scope.label_sym(source) else {
                return true;
            };
            let Some(field) = ss.row(src_label).field(label) else {
                return true;
            };
            if !field.is_list {
                sink.push(Violation::NonListFieldMultiEdge {
                    source,
                    field: scope.syms.resolve(label).to_owned(),
                    count: edges.len(),
                });
            }
            true
        });
    });
}
