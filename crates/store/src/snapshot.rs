//! Snapshot file codec.
//!
//! A snapshot is one CRC-framed blob (same `[len][crc][payload]` frame
//! as a WAL record) whose payload captures every live session in full.
//! The current format is `PGS2` (`docs/replication.md` §Snapshot format
//! is the normative layout table, checked by `tests/spec_parity.rs`):
//!
//! ```text
//! payload = [magic "PGS2"][base_seq u64][next_session_id u64][count u32]
//!           count × [id u64][last_seq u64][deltas_applied u64]
//!                   [sdl: u32 len + bytes]
//!                   [pending: u8 flag][flag = 1: u32 len + bytes]
//!                   [graph_len u64]
//!                   [zero padding to the next 8-byte file offset]
//!                   [graph: graph_len bytes, a verbatim PGCS image]
//! ```
//!
//! Each graph is a self-contained [`pgraph::snapshot`] columnar image
//! (magic `PGCS`): the file bytes *are* the struct-of-arrays tables, so
//! a reader that has validated the container CRC and each image's
//! header needs **zero per-element deserialization** — it hands out
//! [`LazyGraph`]s pointing into the (typically memory-mapped) file.
//! The 8-byte frame header makes payload-relative and file-relative
//! offsets congruent mod 8, so the in-file images are 8-byte aligned.
//!
//! The `pending` field carries the candidate schema SDL of an open
//! migration window (flag 1), so compacting away the window's
//! `SchemaChange(begin)` WAL record does not lose it.
//!
//! `base_seq` is the sequence number at which the WAL was rotated when
//! the snapshot began; every record with `seq <= base_seq` is
//! superseded. Each session additionally carries its own `last_seq` —
//! its state may include records *newer* than `base_seq` (appends
//! continue while the snapshot is being captured), and replay must skip
//! exactly those.
//!
//! Reading distinguishes two failure classes:
//!
//! * [`DecodeError::Corrupt`] — torn tail, CRC mismatch, structural
//!   damage. Recovery falls back to the next older generation.
//! * [`DecodeError::Unsupported`] — an intact file written by a *newer*
//!   format (`PGS3`…, or a newer embedded `PGCS` version). Recovery
//!   refuses loudly with "unsupported snapshot version" instead of
//!   silently regressing to stale state.
//!
//! Legacy `PGS1` snapshots (per-session `pgraph::binary` element
//! streams) still decode via the eager path, so a data directory
//! written by an older build opens cleanly.

use pgraph::snapshot::{GraphHeader, SnapshotError};
use pgraph::{binary, snapshot as pgcs};

use crate::crc32::crc32;
use crate::lazy::{Backing, GraphPayload, LazyGraph};
use crate::record::FRAME_HEADER;
use crate::wire::{SNAPSHOT_GRAPH_ALIGN, SNAPSHOT_MAGIC, SNAPSHOT_MAGIC_V2};
use crate::RecoveredSession;

/// Why a snapshot file could not be used.
#[derive(Debug)]
pub(crate) enum DecodeError {
    /// Torn, bit-flipped or structurally damaged — fall back to an
    /// older generation.
    Corrupt,
    /// Intact but written by a newer format than this build understands
    /// — refuse recovery with this message rather than fall back.
    Unsupported(String),
}

/// Everything a decoded snapshot says.
#[derive(Debug)]
pub(crate) struct SnapshotData {
    pub base_seq: u64,
    pub next_session_id: u64,
    pub sessions: Vec<RecoveredSession>,
}

/// One session prepared for assembly: fixed metadata and the graph's
/// `PGCS` image, joined with alignment padding by [`assemble`].
pub(crate) struct SessionEntry {
    meta: Vec<u8>,
    graph: Vec<u8>,
}

/// Encodes one session entry (used incrementally during compaction so
/// graphs are serialised straight out of the session lock, no clone).
/// A [`GraphPayload::Pgcs`] payload — a still-mapped dormant session —
/// is embedded verbatim, never deserialized.
pub(crate) fn encode_session(
    id: u64,
    last_seq: u64,
    deltas_applied: u64,
    schema_sdl: &str,
    graph: GraphPayload<'_>,
    pending_migration: Option<&str>,
) -> SessionEntry {
    let graph = match graph {
        GraphPayload::Graph(g) => pgcs::graph_to_snapshot_bytes(g),
        GraphPayload::Pgcs(bytes) => bytes.to_vec(),
    };
    let mut meta = Vec::with_capacity(41 + schema_sdl.len());
    meta.extend_from_slice(&id.to_le_bytes());
    meta.extend_from_slice(&last_seq.to_le_bytes());
    meta.extend_from_slice(&deltas_applied.to_le_bytes());
    meta.extend_from_slice(&(schema_sdl.len() as u32).to_le_bytes());
    meta.extend_from_slice(schema_sdl.as_bytes());
    match pending_migration {
        Some(sdl) => {
            meta.push(1);
            meta.extend_from_slice(&(sdl.len() as u32).to_le_bytes());
            meta.extend_from_slice(sdl.as_bytes());
        }
        None => meta.push(0),
    }
    meta.extend_from_slice(&(graph.len() as u64).to_le_bytes());
    SessionEntry { meta, graph }
}

/// Bytes of zero padding needed after a payload of length `pos` so the
/// next byte lands on an [`SNAPSHOT_GRAPH_ALIGN`]-aligned *file* offset
/// (`FRAME_HEADER` is a multiple of the alignment, so payload offsets
/// suffice).
fn pad_to_align(pos: usize) -> usize {
    (SNAPSHOT_GRAPH_ALIGN - pos % SNAPSHOT_GRAPH_ALIGN) % SNAPSHOT_GRAPH_ALIGN
}

// File-relative and payload-relative alignment coincide only because the
// frame header is itself a multiple of the graph alignment.
const _: () = assert!(FRAME_HEADER % SNAPSHOT_GRAPH_ALIGN == 0);

/// Assembles the full framed snapshot file contents.
pub(crate) fn assemble(base_seq: u64, next_session_id: u64, sessions: &[SessionEntry]) -> Vec<u8> {
    let body: usize = sessions
        .iter()
        .map(|s| s.meta.len() + s.graph.len() + SNAPSHOT_GRAPH_ALIGN)
        .sum();
    let mut payload = Vec::with_capacity(24 + body);
    payload.extend_from_slice(&SNAPSHOT_MAGIC_V2);
    payload.extend_from_slice(&base_seq.to_le_bytes());
    payload.extend_from_slice(&next_session_id.to_le_bytes());
    payload.extend_from_slice(&(sessions.len() as u32).to_le_bytes());
    for session in sessions {
        payload.extend_from_slice(&session.meta);
        payload.resize(payload.len() + pad_to_align(payload.len()), 0);
        payload.extend_from_slice(&session.graph);
    }
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Checks the CRC frame and returns the payload (everything the CRC
/// covers).
fn framed_payload(buf: &[u8]) -> Result<&[u8], DecodeError> {
    if buf.len() < FRAME_HEADER {
        return Err(DecodeError::Corrupt);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if buf.len() != FRAME_HEADER + len {
        return Err(DecodeError::Corrupt);
    }
    let payload = &buf[FRAME_HEADER..];
    if crc32(payload) != crc {
        return Err(DecodeError::Corrupt);
    }
    Ok(payload)
}

fn take<'a>(payload: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], DecodeError> {
    let slice = payload.get(*pos..*pos + n).ok_or(DecodeError::Corrupt)?;
    *pos += n;
    Ok(slice)
}

fn take_u32(payload: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    Ok(u32::from_le_bytes(
        take(payload, pos, 4)?.try_into().unwrap(),
    ))
}

fn take_u64(payload: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    Ok(u64::from_le_bytes(
        take(payload, pos, 8)?.try_into().unwrap(),
    ))
}

fn take_str(payload: &[u8], pos: &mut usize) -> Result<String, DecodeError> {
    let len = take_u32(payload, pos)? as usize;
    std::str::from_utf8(take(payload, pos, len)?)
        .map(str::to_owned)
        .map_err(|_| DecodeError::Corrupt)
}

/// The structure of one v2 session entry: decoded metadata plus the
/// payload-relative byte range of its `PGCS` graph image.
struct V2Session {
    id: u64,
    last_seq: u64,
    deltas_applied: u64,
    schema_sdl: String,
    pending_migration: Option<String>,
    graph_range: std::ops::Range<usize>,
}

/// Walks a v2 payload structurally (after the magic), validating
/// alignment padding and graph bounds but not graph contents.
fn walk_v2(payload: &[u8]) -> Result<(u64, u64, Vec<V2Session>), DecodeError> {
    let mut pos = 4usize; // past the magic
    let base_seq = take_u64(payload, &mut pos)?;
    let next_session_id = take_u64(payload, &mut pos)?;
    let count = take_u32(payload, &mut pos)? as usize;
    let mut sessions = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let id = take_u64(payload, &mut pos)?;
        let last_seq = take_u64(payload, &mut pos)?;
        let deltas_applied = take_u64(payload, &mut pos)?;
        let schema_sdl = take_str(payload, &mut pos)?;
        let pending_migration = match take(payload, &mut pos, 1)?[0] {
            0 => None,
            1 => Some(take_str(payload, &mut pos)?),
            _ => return Err(DecodeError::Corrupt),
        };
        let graph_len = take_u64(payload, &mut pos)? as usize;
        let pad_len = pad_to_align(pos);
        let pad = take(payload, &mut pos, pad_len)?;
        if pad.iter().any(|&b| b != 0) {
            return Err(DecodeError::Corrupt);
        }
        let start = pos;
        take(payload, &mut pos, graph_len)?;
        sessions.push(V2Session {
            id,
            last_seq,
            deltas_applied,
            schema_sdl,
            pending_migration,
            graph_range: start..pos,
        });
    }
    if pos != payload.len() {
        return Err(DecodeError::Corrupt);
    }
    Ok((base_seq, next_session_id, sessions))
}

/// Maps a failure from the embedded-graph codec onto the container's
/// corrupt/unsupported split.
fn graph_error(e: SnapshotError) -> DecodeError {
    match e {
        SnapshotError::UnsupportedVersion { found } => DecodeError::Unsupported(format!(
            "unsupported snapshot version: embedded PGCS graph v{found}, this build reads v{}",
            pgcs::VERSION
        )),
        _ => DecodeError::Corrupt,
    }
}

/// Decodes a snapshot. For the current `PGS2` format this validates the
/// container CRC (which covers every embedded image byte) and each
/// graph's fixed-size header, then returns *mapped* [`LazyGraph`]s into
/// `backing` — one checksum pass over the file and no per-element work;
/// the per-image CRC re-verifies lazily when a graph materializes. Legacy
/// `PGS1` files are decoded eagerly. A recognizably newer format yields
/// [`DecodeError::Unsupported`]; anything else wrong yields
/// [`DecodeError::Corrupt`] (the caller falls back to an older
/// generation).
pub(crate) fn decode(backing: &Backing) -> Result<SnapshotData, DecodeError> {
    let buf = backing.bytes();
    let payload = framed_payload(buf)?;
    if payload.len() < 4 {
        return Err(DecodeError::Corrupt);
    }
    match &payload[..4] {
        m if m == SNAPSHOT_MAGIC_V2 => {
            let (base_seq, next_session_id, entries) = walk_v2(payload)?;
            let mut sessions = Vec::with_capacity(entries.len());
            for e in entries {
                let graph_bytes = &payload[e.graph_range.clone()];
                // Header only: magic, version, bounds. The container CRC
                // already proved the image bytes intact; the image's own
                // CRC re-verifies at materialize time.
                GraphHeader::parse(graph_bytes).map_err(graph_error)?;
                // File-relative range into the shared backing.
                let range = FRAME_HEADER + e.graph_range.start..FRAME_HEADER + e.graph_range.end;
                sessions.push(RecoveredSession {
                    id: e.id,
                    schema_sdl: e.schema_sdl,
                    graph: LazyGraph::mapped(backing.clone(), range),
                    deltas_applied: e.deltas_applied,
                    last_seq: e.last_seq,
                    pending_migration: e.pending_migration,
                });
            }
            Ok(SnapshotData {
                base_seq,
                next_session_id,
                sessions,
            })
        }
        m if m == SNAPSHOT_MAGIC => decode_v1(payload),
        m if m.starts_with(b"PGS") => {
            let tag = String::from_utf8_lossy(m).into_owned();
            Err(DecodeError::Unsupported(format!(
                "unsupported snapshot version: magic `{tag}`, this build reads PGS1/PGS2"
            )))
        }
        _ => Err(DecodeError::Corrupt),
    }
}

/// The legacy eager decoder: per-session `pgraph::binary` graphs.
fn decode_v1(payload: &[u8]) -> Result<SnapshotData, DecodeError> {
    let mut pos = 4usize; // past the magic
    let base_seq = take_u64(payload, &mut pos)?;
    let next_session_id = take_u64(payload, &mut pos)?;
    let count = take_u32(payload, &mut pos)? as usize;
    let mut sessions = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let id = take_u64(payload, &mut pos)?;
        let last_seq = take_u64(payload, &mut pos)?;
        let deltas_applied = take_u64(payload, &mut pos)?;
        let schema_sdl = take_str(payload, &mut pos)?;
        let graph_len = take_u32(payload, &mut pos)? as usize;
        let graph = binary::graph_from_bytes(take(payload, &mut pos, graph_len)?)
            .map_err(|_| DecodeError::Corrupt)?;
        let pending_migration = match take(payload, &mut pos, 1)?[0] {
            0 => None,
            1 => Some(take_str(payload, &mut pos)?),
            _ => return Err(DecodeError::Corrupt),
        };
        sessions.push(RecoveredSession {
            id,
            schema_sdl,
            graph: LazyGraph::from(graph),
            deltas_applied,
            last_seq,
            pending_migration,
        });
    }
    if pos != payload.len() {
        return Err(DecodeError::Corrupt);
    }
    Ok(SnapshotData {
        base_seq,
        next_session_id,
        sessions,
    })
}

/// What `pgschema store inspect` reports about one snapshot file: the
/// container format and CRC status plus, for v2 files, every embedded
/// graph's header (version, element counts, section table, CRC).
#[derive(Debug)]
pub struct SnapshotDesc {
    /// Container format: 1 (`PGS1`), 2 (`PGS2`), or 0 if unrecognized.
    pub format: u32,
    /// Container frame CRC verdict.
    pub crc_ok: bool,
    /// `base_seq` of the container (0 if unreadable).
    pub base_seq: u64,
    /// Decoded session count (0 if unreadable).
    pub sessions: usize,
    /// Whether the whole file decodes cleanly end to end.
    pub valid: bool,
    /// Per-graph header details (v2 only; legacy graphs have no
    /// independent header).
    pub graphs: Vec<GraphDesc>,
}

/// Header details of one embedded `PGCS` graph image.
#[derive(Debug)]
pub struct GraphDesc {
    /// Owning session id.
    pub session: u64,
    /// The session's `last_seq` (newest WAL record its state reflects).
    pub last_seq: u64,
    /// Absolute file offset of the image.
    pub file_offset: u64,
    /// Image length in bytes.
    pub len: u64,
    /// `PGCS` format version, if the header parses.
    pub version: Option<u32>,
    /// Whether the image's recorded CRC matches its bytes.
    pub crc_ok: bool,
    /// Section table: `(name, offset-within-image, len)`.
    pub sections: Vec<(&'static str, u64, u64)>,
}

/// Describes a snapshot file for `store inspect` without requiring it
/// to be fully valid — reports as much structure as survives.
pub(crate) fn describe(buf: &[u8]) -> SnapshotDesc {
    let mut desc = SnapshotDesc {
        format: 0,
        crc_ok: false,
        base_seq: 0,
        sessions: 0,
        valid: false,
        graphs: Vec::new(),
    };
    let Ok(payload) = framed_payload(buf) else {
        return desc;
    };
    desc.crc_ok = true;
    match payload.get(..4) {
        Some(m) if m == SNAPSHOT_MAGIC_V2 => {
            desc.format = 2;
            let Ok((base_seq, _next, entries)) = walk_v2(payload) else {
                return desc;
            };
            desc.base_seq = base_seq;
            desc.sessions = entries.len();
            desc.valid = true;
            for e in &entries {
                let bytes = &payload[e.graph_range.clone()];
                let header = GraphHeader::parse(bytes).ok();
                let crc_ok = header.as_ref().is_some_and(|h| h.crc_ok(bytes));
                desc.valid &= crc_ok;
                desc.graphs.push(GraphDesc {
                    session: e.id,
                    last_seq: e.last_seq,
                    file_offset: (FRAME_HEADER + e.graph_range.start) as u64,
                    len: (e.graph_range.end - e.graph_range.start) as u64,
                    version: header.as_ref().map(|h| h.version),
                    crc_ok,
                    sections: header
                        .map(|h| {
                            pgcs::SECTION_NAMES
                                .iter()
                                .zip(h.sections.iter())
                                .map(|(name, s)| (*name, s.offset, s.len))
                                .collect()
                        })
                        .unwrap_or_default(),
                });
            }
        }
        Some(m) if m == SNAPSHOT_MAGIC => {
            desc.format = 1;
            if let Ok(data) = decode_v1(payload) {
                desc.base_seq = data.base_seq;
                desc.sessions = data.sessions.len();
                desc.valid = true;
            }
        }
        _ => {}
    }
    desc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use pgraph::{PropertyGraph, Value};

    fn heap(bytes: &[u8]) -> Backing {
        Backing::Heap(Arc::new(bytes.to_vec()))
    }

    fn sample_graph() -> PropertyGraph {
        let mut graph = PropertyGraph::new();
        let u = graph.add_node("User");
        graph.set_node_property(u, "login", Value::from("alice"));
        graph
    }

    fn sample() -> Vec<u8> {
        let graph = sample_graph();
        let entries = vec![
            encode_session(
                1,
                5,
                4,
                "type User { login: String! }",
                GraphPayload::Graph(&graph),
                None,
            ),
            encode_session(
                7,
                9,
                0,
                "type T { x: Int }",
                GraphPayload::Graph(&PropertyGraph::new()),
                Some("type T { x: Int y: Int }"),
            ),
        ];
        assemble(9, 8, &entries)
    }

    #[test]
    fn snapshot_round_trip() {
        let bytes = sample();
        let snap = decode(&heap(&bytes)).expect("decodes");
        assert_eq!(snap.base_seq, 9);
        assert_eq!(snap.next_session_id, 8);
        assert_eq!(snap.sessions.len(), 2);
        assert_eq!(snap.sessions[0].id, 1);
        assert_eq!(snap.sessions[0].last_seq, 5);
        assert_eq!(snap.sessions[0].deltas_applied, 4);
        let mut g0 = snap.sessions[0].graph.clone();
        assert!(g0.is_mapped(), "v2 decode defers materialization");
        assert_eq!(g0.load().expect("thaws").node_count(), 1);
        assert_eq!(snap.sessions[0].pending_migration, None);
        assert_eq!(snap.sessions[1].id, 7);
        assert!(snap.sessions[1]
            .graph
            .clone()
            .into_graph()
            .expect("thaws")
            .is_empty());
        assert_eq!(
            snap.sessions[1].pending_migration.as_deref(),
            Some("type T { x: Int y: Int }"),
            "open migration window survives the snapshot"
        );
    }

    #[test]
    fn embedded_graphs_are_file_aligned() {
        let bytes = sample();
        let snap = decode(&heap(&bytes)).expect("decodes");
        for s in &snap.sessions {
            let pgcs_bytes = s.graph.pgcs().expect("mapped");
            assert_eq!(&pgcs_bytes[..4], b"PGCS");
        }
        let desc = describe(&bytes);
        assert_eq!(desc.graphs.len(), 2);
        for g in &desc.graphs {
            let offset = g.file_offset as usize;
            assert_eq!(
                offset % SNAPSHOT_GRAPH_ALIGN,
                0,
                "session {} misaligned",
                g.session
            );
            assert_eq!(&bytes[offset..offset + 4], b"PGCS");
        }
    }

    #[test]
    fn verbatim_pgcs_payload_round_trips() {
        let graph = sample_graph();
        let image = pgcs::graph_to_snapshot_bytes(&graph);
        let entries = vec![encode_session(
            3,
            2,
            1,
            "type User { login: String! }",
            GraphPayload::Pgcs(&image),
            None,
        )];
        let bytes = assemble(2, 4, &entries);
        let snap = decode(&heap(&bytes)).expect("decodes");
        assert_eq!(snap.sessions[0].graph.pgcs(), Some(&image[..]));
        assert_eq!(
            snap.sessions[0].graph.clone().into_graph().expect("thaws"),
            graph
        );
    }

    #[test]
    fn legacy_v1_snapshot_still_decodes() {
        // A PGS1 file as the previous build wrote it, byte for byte.
        let graph = sample_graph();
        let graph_bytes = binary::graph_to_bytes(&graph);
        let mut entry = Vec::new();
        entry.extend_from_slice(&1u64.to_le_bytes());
        entry.extend_from_slice(&5u64.to_le_bytes());
        entry.extend_from_slice(&4u64.to_le_bytes());
        let sdl = "type User { login: String! }";
        entry.extend_from_slice(&(sdl.len() as u32).to_le_bytes());
        entry.extend_from_slice(sdl.as_bytes());
        entry.extend_from_slice(&(graph_bytes.len() as u32).to_le_bytes());
        entry.extend_from_slice(&graph_bytes);
        entry.push(0);
        let mut payload = Vec::new();
        payload.extend_from_slice(&SNAPSHOT_MAGIC);
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.extend_from_slice(&8u64.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&entry);
        let mut file = Vec::new();
        file.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        file.extend_from_slice(&crc32(&payload).to_le_bytes());
        file.extend_from_slice(&payload);

        let snap = decode(&heap(&file)).expect("legacy decodes");
        assert_eq!(snap.base_seq, 9);
        assert_eq!(snap.sessions.len(), 1);
        assert!(!snap.sessions[0].graph.is_mapped(), "legacy path is eager");
        assert_eq!(snap.sessions[0].graph.loaded().unwrap(), &graph);
        let desc = describe(&file);
        assert_eq!(desc.format, 1);
        assert!(desc.valid);
    }

    #[test]
    fn future_format_is_unsupported_not_corrupt() {
        let mut bytes = sample();
        // Rewrite the magic to PGS3 and fix up the CRC: an intact file
        // from a future writer.
        bytes[FRAME_HEADER + 3] = b'3';
        let crc = crc32(&bytes[FRAME_HEADER..]);
        bytes[4..8].copy_from_slice(&crc.to_le_bytes());
        match decode(&heap(&bytes)) {
            Err(DecodeError::Unsupported(msg)) => {
                assert!(msg.contains("unsupported snapshot version"), "{msg}");
                assert!(msg.contains("PGS3"), "{msg}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn any_corruption_rejects_the_whole_snapshot() {
        let clean = sample();
        for cut in 0..clean.len() {
            assert!(
                decode(&heap(&clean[..cut])).is_err(),
                "prefix {cut} decoded"
            );
        }
        for byte in 0..clean.len() {
            let mut buf = clean.clone();
            buf[byte] ^= 0x10;
            assert!(decode(&heap(&buf)).is_err(), "flip at {byte} decoded");
        }
    }

    #[test]
    fn describe_reports_headers_and_sections() {
        let bytes = sample();
        let desc = describe(&bytes);
        assert_eq!(desc.format, 2);
        assert!(desc.crc_ok);
        assert!(desc.valid);
        assert_eq!(desc.base_seq, 9);
        assert_eq!(desc.sessions, 2);
        assert_eq!(desc.graphs.len(), 2);
        let g = &desc.graphs[0];
        assert_eq!(g.session, 1);
        assert_eq!(g.version, Some(pgcs::VERSION));
        assert!(g.crc_ok);
        assert_eq!(g.file_offset % SNAPSHOT_GRAPH_ALIGN as u64, 0);
        assert_eq!(g.sections.len(), pgcs::SECTION_COUNT);
        assert_eq!(g.sections[0].0, "node_alive");
    }
}
