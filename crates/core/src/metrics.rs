//! Crate-private instrumentation plumbing shared by the engines.
//!
//! Engines drive a [`MetricsRecorder`] unconditionally; when metrics were
//! not requested every method is a no-op, so the hot paths carry no
//! branches beyond one `Option` check per rule-family block.

use std::time::Instant;

use crate::report::{FamilyMetrics, RuleFamily, RuleMetrics, ValidationMetrics, ValidationReport};
use crate::rules::SinkOutput;

/// Sums per-rule entries into per-family rollups, in order of first
/// appearance (rule order, so Weak, Directives, Strong when all are on).
pub(crate) fn families_from_rules(rules: &[RuleMetrics]) -> Vec<FamilyMetrics> {
    let mut families: Vec<FamilyMetrics> = Vec::with_capacity(3);
    for rm in rules {
        let family = rm.rule.family();
        match families.iter_mut().find(|f| f.family == family) {
            Some(f) => {
                f.nanos += rm.nanos;
                f.violations += rm.violations;
            }
            None => families.push(FamilyMetrics {
                family,
                nanos: rm.nanos,
                violations: rm.violations,
            }),
        }
    }
    families
}

/// Accumulates [`ValidationMetrics`] for one validation run.
pub(crate) struct MetricsRecorder {
    metrics: Option<ValidationMetrics>,
}

impl MetricsRecorder {
    pub(crate) fn new(enabled: bool, engine: &'static str, threads: usize) -> Self {
        MetricsRecorder {
            metrics: enabled.then(|| ValidationMetrics {
                engine,
                threads,
                ..ValidationMetrics::default()
            }),
        }
    }

    pub(crate) fn index_build(&mut self, nanos: u64) {
        if let Some(m) = &mut self.metrics {
            m.index_build_nanos = nanos;
        }
    }

    pub(crate) fn scanned(&mut self, nodes: u64, edges: u64) {
        if let Some(m) = &mut self.metrics {
            m.nodes_scanned += nodes;
            m.edges_scanned += edges;
        }
    }

    /// Runs one rule-family block, recording its wall time and the
    /// violations it contributed to `r`.
    pub(crate) fn family(
        &mut self,
        family: RuleFamily,
        r: &mut ValidationReport,
        block: impl FnOnce(&mut ValidationReport),
    ) {
        if self.metrics.is_none() {
            block(r);
            return;
        }
        let before = r.len();
        let start = Instant::now();
        block(r);
        let nanos = start.elapsed().as_nanos() as u64;
        if let Some(m) = &mut self.metrics {
            m.families.push(FamilyMetrics {
                family,
                nanos,
                violations: r.len() - before,
            });
        }
    }

    /// Absorbs one [`Sink`](crate::rules::Sink)'s per-rule output: the
    /// rule entries are appended and the scan counters added. Family
    /// rollups are derived from the rules at [`finish`](Self::finish).
    pub(crate) fn absorb(&mut self, out: Option<SinkOutput>) {
        let (Some(m), Some(out)) = (&mut self.metrics, out) else {
            return;
        };
        m.rules.extend(out.rules);
        m.nodes_scanned += out.nodes_scanned;
        m.edges_scanned += out.edges_scanned;
    }

    /// Records per-rule metrics reduced externally (the parallel engine
    /// merges per-worker timings itself).
    pub(crate) fn rules_record(&mut self, rules: Vec<RuleMetrics>) {
        if let Some(m) = &mut self.metrics {
            m.rules = rules;
        }
    }

    pub(crate) fn shard_elements(&mut self, elements: Vec<u64>) {
        if let Some(m) = &mut self.metrics {
            m.shard_elements = elements;
        }
    }

    /// Attaches the collected metrics (if any) to the report. Engines
    /// that recorded per-rule entries but no family blocks (the kernel
    /// planners) get their family rollups derived here by summing rule
    /// time and violations per family, in order of first appearance.
    pub(crate) fn finish(self, r: &mut ValidationReport) {
        if let Some(mut m) = self.metrics {
            if m.families.is_empty() && !m.rules.is_empty() {
                m.families = families_from_rules(&m.rules);
            }
            r.set_metrics(m);
        }
    }
}
