//! Property-based tests of the binary graph/delta codec (`pg-store`'s
//! on-disk payload format) against the JSON (de)serialisers: on random
//! generated schemas, graphs and mutation sequences, both codecs must
//! describe the same object — with the one designed divergence that the
//! binary graph form preserves the raw id space (tombstones included)
//! while the JSON form re-densifies ids on load.

use pg_datagen::{DeltaGen, DeltaGenParams, GraphGen, GraphGenParams, SchemaGen, SchemaGenParams};
use pg_schema::PgSchema;
use pgraph::{binary, json, GraphDelta, PropertyGraph};
use proptest::prelude::*;

fn schema_for(seed: u64) -> PgSchema {
    let sdl = SchemaGen::new(SchemaGenParams {
        num_types: 4,
        attrs_per_type: 3,
        rels_per_type: 2,
        seed,
        ..Default::default()
    })
    .generate();
    PgSchema::parse(&sdl).expect("generated schemas build")
}

/// A graph with history: generated, then mutated so that tombstones and
/// non-dense ids exist — the case the binary codec exists for.
fn evolved_graph(schema: &PgSchema, graph_seed: u64, steps: u64) -> PropertyGraph {
    let gen = GraphGen::new(
        schema,
        GraphGenParams {
            nodes_per_type: 5,
            seed: graph_seed,
            ..Default::default()
        },
    );
    let mut graph = gen.generate();
    let deltas = DeltaGen::new(
        schema,
        DeltaGenParams {
            ops: 6,
            p_structural: 0.6,
            ..Default::default()
        },
    );
    for step in 0..steps {
        let delta = deltas.generate_seeded(&graph, graph_seed ^ step);
        delta.apply_to(&mut graph).expect("generated deltas apply");
    }
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Binary graph round-trip is the identity — including tombstones,
    /// the live-element views, and id continuation — and agrees with the
    /// JSON codec on the live subgraph.
    #[test]
    fn graph_binary_round_trip(schema_seed in 0u64..12, graph_seed in 0u64..12, steps in 0u64..4) {
        let schema = schema_for(schema_seed);
        let graph = evolved_graph(&schema, graph_seed, steps);

        let bytes = binary::graph_to_bytes(&graph);
        let decoded = binary::graph_from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &graph);
        prop_assert_eq!(decoded.node_index_bound(), graph.node_index_bound());
        prop_assert_eq!(decoded.edge_index_bound(), graph.edge_index_bound());

        // Both codecs agree on the live subgraph: JSON re-densifies ids,
        // so compare after compaction (which the JSON round-trip equals
        // structurally by construction).
        let via_json = json::from_json(&json::to_json(&graph)).unwrap();
        prop_assert_eq!(&via_json, &graph.compacted());
        prop_assert_eq!(
            json::to_json(&binary::graph_from_bytes(&bytes).unwrap()),
            json::to_json(&graph)
        );
    }

    /// Binary delta round-trip is the identity, agrees with the JSON
    /// round-trip, and both decoded forms replay to the same graph.
    #[test]
    fn delta_binary_round_trip(schema_seed in 0u64..12, graph_seed in 0u64..12, delta_seed in 0u64..6) {
        let schema = schema_for(schema_seed);
        let base = evolved_graph(&schema, graph_seed, 1);
        let delta = DeltaGen::new(&schema, DeltaGenParams {
            ops: 10,
            p_structural: 0.5,
            ..Default::default()
        })
        .generate_seeded(&base, delta_seed);

        let bytes = binary::delta_to_bytes(&delta);
        let decoded = binary::delta_from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &delta);

        let via_json = json::delta_from_json(&json::delta_to_json(&delta)).unwrap();
        prop_assert_eq!(&via_json, &decoded);

        let mut replayed_bin = base.clone();
        let mut replayed_json = base.clone();
        decoded.apply_to(&mut replayed_bin).unwrap();
        via_json.apply_to(&mut replayed_json).unwrap();
        prop_assert_eq!(&replayed_bin, &replayed_json);
    }

    /// Decoding never panics and never fabricates data: any truncation
    /// of a valid encoding is rejected.
    #[test]
    fn truncated_payloads_are_rejected(schema_seed in 0u64..6, cut_frac in 0u64..97) {
        let schema = schema_for(schema_seed);
        let graph = evolved_graph(&schema, schema_seed, 2);
        let bytes = binary::graph_to_bytes(&graph);
        let cut = (bytes.len() as u64 * cut_frac / 97) as usize;
        if cut < bytes.len() {
            prop_assert!(binary::graph_from_bytes(&bytes[..cut]).is_err());
        }
        let delta = GraphDelta::new().add_node("User");
        let dbytes = binary::delta_to_bytes(&delta);
        for cut in 0..dbytes.len() {
            prop_assert!(binary::delta_from_bytes(&dbytes[..cut]).is_err());
        }
    }
}
