//! Read-only store inspection (`pgschema store inspect`).
//!
//! Unlike [`crate::Store::open`], scanning never mutates the directory:
//! torn tails are reported, not truncated, and stale files are left in
//! place — safe to run against the data directory of a *live* server.

use std::io;
use std::path::{Path, PathBuf};

use crate::files::{self, DirListing};
use crate::record::{self, StoreRecord};
use crate::snapshot::{self, GraphDesc};

/// One snapshot file as seen on disk.
#[derive(Debug)]
pub struct SnapshotInfo {
    /// The file.
    pub path: PathBuf,
    /// Generation parsed from the file name.
    pub generation: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Whether the snapshot decodes (CRC and structure).
    pub valid: bool,
    /// Sessions it captures (0 when invalid).
    pub sessions: usize,
    /// The WAL rotation point it corresponds to (0 when invalid).
    pub base_seq: u64,
    /// Container format: 1 (`PGS1` legacy), 2 (`PGS2`), 0 unrecognized.
    pub format: u32,
    /// Container frame CRC verdict (structure aside).
    pub crc_ok: bool,
    /// Per-graph `PGCS` header details (v2 snapshots only).
    pub graphs: Vec<GraphDesc>,
}

/// One WAL segment as seen on disk.
#[derive(Debug)]
pub struct SegmentInfo {
    /// The file.
    pub path: PathBuf,
    /// First sequence number, parsed from the file name.
    pub first_seq: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Bytes covered by valid frames (equals `bytes` when clean).
    pub valid_bytes: u64,
    /// Valid records, by kind: `(creates, deltas, deletes,
    /// schema_changes)`.
    pub records: (u64, u64, u64, u64),
    /// Last valid sequence number in the segment, if any record exists.
    pub last_seq: Option<u64>,
    /// Why the frame walk stopped early, if it did.
    pub torn: Option<String>,
}

/// The directory inventory produced by [`scan`].
#[derive(Debug)]
pub struct ScanReport {
    /// Snapshots, newest generation first.
    pub snapshots: Vec<SnapshotInfo>,
    /// Segments in replay order.
    pub segments: Vec<SegmentInfo>,
}

/// Inventories a store directory without touching it.
pub fn scan(dir: &Path) -> io::Result<ScanReport> {
    let DirListing {
        segments,
        snapshots,
        ..
    } = files::list_dir(dir)?;
    let mut report = ScanReport {
        snapshots: Vec::with_capacity(snapshots.len()),
        segments: Vec::with_capacity(segments.len()),
    };
    for (generation, path) in snapshots {
        let buf = std::fs::read(&path)?;
        let desc = snapshot::describe(&buf);
        report.snapshots.push(SnapshotInfo {
            generation,
            bytes: buf.len() as u64,
            valid: desc.valid,
            sessions: desc.sessions,
            base_seq: desc.base_seq,
            format: desc.format,
            crc_ok: desc.crc_ok,
            graphs: desc.graphs,
            path,
        });
    }
    for (first_seq, path) in segments {
        let buf = std::fs::read(&path)?;
        let parse = record::parse_segment(&buf);
        if let Some(unknown) = &parse.unknown {
            // Forward compatibility: a valid frame of an unknown kind is
            // a newer writer's work, not corruption — refuse loudly
            // instead of reporting a bogus torn tail.
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("{}: {}", path.display(), unknown.to_error()),
            ));
        }
        let mut records = (0u64, 0u64, 0u64, 0u64);
        for parsed in &parse.records {
            match parsed.record {
                StoreRecord::Create { .. } => records.0 += 1,
                StoreRecord::Delta { .. } => records.1 += 1,
                StoreRecord::Delete { .. } => records.2 += 1,
                StoreRecord::SchemaChange { .. } => records.3 += 1,
            }
        }
        report.segments.push(SegmentInfo {
            first_seq,
            bytes: buf.len() as u64,
            valid_bytes: parse.valid_len,
            records,
            last_seq: parse.records.last().map(|r| r.seq),
            torn: parse.torn,
            path,
        });
    }
    Ok(report)
}
