//! Tokens and source positions.

use std::fmt;

/// A position in the source text (1-based line/column, 0-based byte offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in Unicode scalar values).
    pub column: u32,
    /// Byte offset into the source.
    pub offset: usize,
}

impl Pos {
    /// The position of the first character.
    pub fn start() -> Self {
        Pos {
            line: 1,
            column: 1,
            offset: 0,
        }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A half-open source range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Start of the range.
    pub start: Pos,
    /// End of the range (exclusive).
    pub end: Pos,
}

impl Span {
    /// A zero-width span at `pos`.
    pub fn at(pos: Pos) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// The kind (and payload) of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `/[_A-Za-z][_0-9A-Za-z]*/`
    Name(String),
    /// An integer literal.
    Int(i64),
    /// A floating point literal.
    Float(f64),
    /// A string literal (already unescaped). `block` records whether it was
    /// a `"""block string"""`, which matters only for printing fidelity.
    Str {
        /// The decoded string value.
        value: String,
        /// True if the source used block-string syntax.
        block: bool,
    },
    /// `!`
    Bang,
    /// `$`
    Dollar,
    /// `&`
    Amp,
    /// `(`
    ParenL,
    /// `)`
    ParenR,
    /// `...`
    Spread,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `@`
    At,
    /// `[`
    BracketL,
    /// `]`
    BracketR,
    /// `{`
    BraceL,
    /// `}`
    BraceR,
    /// `|`
    Pipe,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Name(n) => format!("name `{n}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Float(x) => format!("float `{x}`"),
            TokenKind::Str { .. } => "string literal".to_owned(),
            TokenKind::Bang => "`!`".to_owned(),
            TokenKind::Dollar => "`$`".to_owned(),
            TokenKind::Amp => "`&`".to_owned(),
            TokenKind::ParenL => "`(`".to_owned(),
            TokenKind::ParenR => "`)`".to_owned(),
            TokenKind::Spread => "`...`".to_owned(),
            TokenKind::Colon => "`:`".to_owned(),
            TokenKind::Eq => "`=`".to_owned(),
            TokenKind::At => "`@`".to_owned(),
            TokenKind::BracketL => "`[`".to_owned(),
            TokenKind::BracketR => "`]`".to_owned(),
            TokenKind::BraceL => "`{`".to_owned(),
            TokenKind::BraceR => "`}`".to_owned(),
            TokenKind::Pipe => "`|`".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}
