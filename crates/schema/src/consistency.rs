//! Schema consistency (Definitions 4.3–4.5).
//!
//! A schema is **consistent** iff it is *interface consistent* (every
//! object type implementing an interface carries at least the interface's
//! fields, at subtypes, with identical argument types, and adds only
//! nullable extra arguments) and *directives consistent* (every applied
//! directive supplies all non-null declared arguments and only declared
//! arguments, with values in `valuesW` of the declared types).
//!
//! The paper assumes all schemas are consistent; [`check`] makes that
//! assumption checkable, and the validation/reasoning layers require an
//! empty violation list before running.

use std::fmt;

use crate::model::{AppliedDirective, Schema, TypeKind};
use crate::subtype::wrapped_subtype;

/// Where an applied directive sits (used in violation reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveSite {
    /// On a type definition.
    Type {
        /// The type's name.
        ty: String,
    },
    /// On a field definition.
    Field {
        /// The enclosing type's name.
        ty: String,
        /// The field's name.
        field: String,
    },
    /// On a field argument definition.
    Arg {
        /// The enclosing type's name.
        ty: String,
        /// The field's name.
        field: String,
        /// The argument's name.
        arg: String,
    },
}

impl fmt::Display for DirectiveSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectiveSite::Type { ty } => write!(f, "type {ty}"),
            DirectiveSite::Field { ty, field } => write!(f, "field {ty}.{field}"),
            DirectiveSite::Arg { ty, field, arg } => {
                write!(f, "argument {ty}.{field}({arg}:)")
            }
        }
    }
}

/// A violation of Definition 4.3 or 4.4.
#[derive(Debug, Clone, PartialEq)]
pub enum ConsistencyViolation {
    /// Def 4.3 (1): implementing object type misses an interface field.
    MissingInterfaceField {
        /// The object type.
        object: String,
        /// The interface it implements.
        interface: String,
        /// The missing field.
        field: String,
    },
    /// Def 4.3 (1): the object's field type is not a subtype of the
    /// interface's field type.
    FieldTypeNotSubtype {
        /// The object type.
        object: String,
        /// The interface.
        interface: String,
        /// The field.
        field: String,
        /// Rendered object field type.
        object_ty: String,
        /// Rendered interface field type.
        interface_ty: String,
    },
    /// Def 4.3 (2): an interface field argument is missing on the object.
    MissingInterfaceArg {
        /// The object type.
        object: String,
        /// The interface.
        interface: String,
        /// The field.
        field: String,
        /// The missing argument.
        arg: String,
    },
    /// Def 4.3 (2): the object's argument type differs from the
    /// interface's (must be *equal*, not merely a subtype).
    ArgTypeMismatch {
        /// The object type.
        object: String,
        /// The interface.
        interface: String,
        /// The field.
        field: String,
        /// The argument.
        arg: String,
        /// Rendered object argument type.
        object_ty: String,
        /// Rendered interface argument type.
        interface_ty: String,
    },
    /// Def 4.3 (3): an extra argument on the object's field is non-null.
    ExtraArgNonNull {
        /// The object type.
        object: String,
        /// The interface.
        interface: String,
        /// The field.
        field: String,
        /// The offending argument.
        arg: String,
    },
    /// Def 4.4 (1): a non-null declared directive argument was not
    /// supplied.
    MissingDirectiveArg {
        /// Where the directive is applied.
        site: DirectiveSite,
        /// The directive.
        directive: String,
        /// The missing argument.
        arg: String,
    },
    /// Def 4.4 (2): a supplied argument is not declared for the directive
    /// (then `typeAD(d, a)` is undefined).
    UndeclaredDirectiveArg {
        /// Where the directive is applied.
        site: DirectiveSite,
        /// The directive.
        directive: String,
        /// The undeclared argument.
        arg: String,
    },
    /// Def 4.4 (2): a supplied value is outside `valuesW(typeAD(d, a))`.
    DirectiveArgValueMismatch {
        /// Where the directive is applied.
        site: DirectiveSite,
        /// The directive.
        directive: String,
        /// The argument.
        arg: String,
        /// The declared (rendered) type.
        declared_ty: String,
        /// The supplied (rendered) value.
        value: String,
    },
}

impl fmt::Display for ConsistencyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ConsistencyViolation as V;
        match self {
            V::MissingInterfaceField {
                object,
                interface,
                field,
            } => write!(
                f,
                "type {object} implements {interface} but lacks field `{field}`"
            ),
            V::FieldTypeNotSubtype {
                object,
                interface,
                field,
                object_ty,
                interface_ty,
            } => write!(
                f,
                "{object}.{field}: {object_ty} is not a subtype of {interface}.{field}: {interface_ty}"
            ),
            V::MissingInterfaceArg {
                object,
                interface,
                field,
                arg,
            } => write!(
                f,
                "{object}.{field} lacks argument `{arg}` required by {interface}.{field}"
            ),
            V::ArgTypeMismatch {
                object,
                interface,
                field,
                arg,
                object_ty,
                interface_ty,
            } => write!(
                f,
                "{object}.{field}({arg}:): type {object_ty} differs from {interface}'s {interface_ty}"
            ),
            V::ExtraArgNonNull {
                object,
                interface,
                field,
                arg,
            } => write!(
                f,
                "{object}.{field}({arg}:) is non-null but absent from {interface}.{field}"
            ),
            V::MissingDirectiveArg {
                site,
                directive,
                arg,
            } => write!(f, "{site}: @{directive} misses required argument `{arg}`"),
            V::UndeclaredDirectiveArg {
                site,
                directive,
                arg,
            } => write!(f, "{site}: @{directive} has undeclared argument `{arg}`"),
            V::DirectiveArgValueMismatch {
                site,
                directive,
                arg,
                declared_ty,
                value,
            } => write!(
                f,
                "{site}: @{directive}({arg}: {value}) does not conform to {declared_ty}"
            ),
        }
    }
}

/// Checks Definitions 4.3 and 4.4; an empty result means the schema is
/// consistent (Definition 4.5).
pub fn check(schema: &Schema) -> Vec<ConsistencyViolation> {
    let mut out = Vec::new();
    check_interfaces(schema, &mut out);
    check_directives(schema, &mut out);
    out
}

fn check_interfaces(schema: &Schema, out: &mut Vec<ConsistencyViolation>) {
    for it in schema.interface_types() {
        let iface = schema.interface_type(it).expect("interface payload");
        for &ot in schema.implementors(it) {
            let obj = schema.object_type(ot).expect("object payload");
            for ifield in &iface.fields {
                let Some(ofield) = obj.field(&ifield.name) else {
                    out.push(ConsistencyViolation::MissingInterfaceField {
                        object: schema.type_name(ot).to_owned(),
                        interface: schema.type_name(it).to_owned(),
                        field: ifield.name.clone(),
                    });
                    continue;
                };
                // (1) typeS(f, ot) ⊑S typeS(f, it)
                if !wrapped_subtype(schema, &ofield.ty, &ifield.ty) {
                    out.push(ConsistencyViolation::FieldTypeNotSubtype {
                        object: schema.type_name(ot).to_owned(),
                        interface: schema.type_name(it).to_owned(),
                        field: ifield.name.clone(),
                        object_ty: schema.display_type(&ofield.ty),
                        interface_ty: schema.display_type(&ifield.ty),
                    });
                }
                // (2) every interface arg exists with the *same* type.
                for iarg in &ifield.args {
                    match ofield.arg(&iarg.name) {
                        None => out.push(ConsistencyViolation::MissingInterfaceArg {
                            object: schema.type_name(ot).to_owned(),
                            interface: schema.type_name(it).to_owned(),
                            field: ifield.name.clone(),
                            arg: iarg.name.clone(),
                        }),
                        Some(oarg) if oarg.ty != iarg.ty => {
                            out.push(ConsistencyViolation::ArgTypeMismatch {
                                object: schema.type_name(ot).to_owned(),
                                interface: schema.type_name(it).to_owned(),
                                field: ifield.name.clone(),
                                arg: iarg.name.clone(),
                                object_ty: schema.display_type(&oarg.ty),
                                interface_ty: schema.display_type(&iarg.ty),
                            });
                        }
                        Some(_) => {}
                    }
                }
                // (3) extra args on the object's field must be nullable.
                for oarg in &ofield.args {
                    if ifield.arg(&oarg.name).is_none() && oarg.ty.wrap.outer_non_null() {
                        out.push(ConsistencyViolation::ExtraArgNonNull {
                            object: schema.type_name(ot).to_owned(),
                            interface: schema.type_name(it).to_owned(),
                            field: ifield.name.clone(),
                            arg: oarg.name.clone(),
                        });
                    }
                }
            }
        }
    }
}

fn check_directives(schema: &Schema, out: &mut Vec<ConsistencyViolation>) {
    for t in schema.type_ids() {
        let ty_name = schema.type_name(t).to_owned();
        for d in schema.type_directives(t) {
            check_one_directive(
                schema,
                d,
                DirectiveSite::Type {
                    ty: ty_name.clone(),
                },
                out,
            );
        }
        let fields: Vec<_> = match &schema.type_info(t).kind {
            TypeKind::Object(o) | TypeKind::Interface(o) => o.fields.iter().collect(),
            _ => Vec::new(),
        };
        for f in fields {
            for d in &f.directives {
                check_one_directive(
                    schema,
                    d,
                    DirectiveSite::Field {
                        ty: ty_name.clone(),
                        field: f.name.clone(),
                    },
                    out,
                );
            }
            for a in &f.args {
                for d in &a.directives {
                    check_one_directive(
                        schema,
                        d,
                        DirectiveSite::Arg {
                            ty: ty_name.clone(),
                            field: f.name.clone(),
                            arg: a.name.clone(),
                        },
                        out,
                    );
                }
            }
        }
    }
}

fn check_one_directive(
    schema: &Schema,
    applied: &AppliedDirective,
    site: DirectiveSite,
    out: &mut Vec<ConsistencyViolation>,
) {
    let decl = schema.directive_decl(&applied.name);
    // (2) supplied arguments must be declared and well-typed. An unknown
    // directive *with no arguments* is vacuously consistent (it is simply
    // ignored, §3.6); with arguments, typeAD(d, a) is undefined → violation.
    for (name, value) in &applied.args {
        match decl.and_then(|d| d.arg(name)) {
            None => out.push(ConsistencyViolation::UndeclaredDirectiveArg {
                site: site.clone(),
                directive: applied.name.clone(),
                arg: name.clone(),
            }),
            Some(arg_decl) => {
                if !schema.value_conforms(value, &arg_decl.ty) {
                    out.push(ConsistencyViolation::DirectiveArgValueMismatch {
                        site: site.clone(),
                        directive: applied.name.clone(),
                        arg: name.clone(),
                        declared_ty: schema.display_type(&arg_decl.ty),
                        value: value.to_string(),
                    });
                }
            }
        }
    }
    // (1) every non-null declared argument must be supplied.
    if let Some(decl) = decl {
        for arg_decl in &decl.args {
            if arg_decl.ty.wrap.outer_non_null() && applied.arg(&arg_decl.name).is_none() {
                out.push(ConsistencyViolation::MissingDirectiveArg {
                    site: site.clone(),
                    directive: applied.name.clone(),
                    arg: arg_decl.name.clone(),
                });
            }
        }
    }
}

/// Convenience: true iff [`check`] returns no violations (Definition 4.5).
pub fn is_consistent(schema: &Schema) -> bool {
    check(schema).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_schema;

    fn violations(src: &str) -> Vec<ConsistencyViolation> {
        check(&build_schema(&gql_sdl::parse(src).unwrap()).unwrap())
    }

    #[test]
    fn example_3_10_is_consistent() {
        let v = violations(
            r#"
            type Person { name: String! favoriteFood: Food }
            interface Food { name: String! }
            type Pizza implements Food { name: String! toppings: [String!]! }
            type Pasta implements Food { name: String! }
            "#,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_interface_field_is_caught() {
        let v = violations("interface I { f: Int } type T implements I { g: Int }");
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::MissingInterfaceField { object, field, .. }]
                if object == "T" && field == "f"
        ));
    }

    #[test]
    fn field_type_must_be_subtype() {
        // Int vs String: unrelated.
        let v = violations("interface I { f: Int } type T implements I { f: String }");
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::FieldTypeNotSubtype { .. }]
        ));
        // Narrowing to an implementing type is fine.
        let v = violations(
            r#"
            interface Node { self: Node }
            type Doc implements Node { self: Doc }
            "#,
        );
        assert!(v.is_empty(), "{v:?}");
        // Non-null narrowing is fine (rule 6/7): f: Int! ⊑ f: Int.
        let v = violations("interface I { f: Int } type T implements I { f: Int! }");
        assert!(v.is_empty(), "{v:?}");
        // Widening from non-null to nullable is NOT.
        let v = violations("interface I { f: Int! } type T implements I { f: Int }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn interface_args_must_match_exactly() {
        let v =
            violations("interface I { f(a: Int): Int } type T implements I { f(a: Int!): Int }");
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::ArgTypeMismatch { .. }]
        ));
        let v = violations("interface I { f(a: Int): Int } type T implements I { f: Int }");
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::MissingInterfaceArg { .. }]
        ));
    }

    #[test]
    fn extra_args_must_be_nullable() {
        let v = violations("interface I { f: Int } type T implements I { f(extra: String!): Int }");
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::ExtraArgNonNull { arg, .. }] if arg == "extra"
        ));
        let v = violations("interface I { f: Int } type T implements I { f(extra: String): Int }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn key_directive_needs_its_fields_argument() {
        let v = violations("type T @key { f: Int }");
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::MissingDirectiveArg { arg, .. }] if arg == "fields"
        ));
        let v = violations(r#"type T @key(fields: ["f"]) { f: Int }"#);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn key_fields_value_must_be_string_list() {
        let v = violations("type T @key(fields: 3) { f: Int }");
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::DirectiveArgValueMismatch { .. }]
        ));
        let v = violations(r#"type T @key(fields: ["a", 3]) { a: Int }"#);
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::DirectiveArgValueMismatch { .. }]
        ));
    }

    #[test]
    fn built_in_directives_take_no_arguments() {
        let v = violations("type U {} type T { r: U @required(hard: true) }");
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::UndeclaredDirectiveArg { arg, .. }] if arg == "hard"
        ));
    }

    #[test]
    fn unknown_directive_without_args_is_consistent() {
        assert!(violations("type T { f: Int @fancy }").is_empty());
        let v = violations("type T { f: Int @fancy(x: 1) }");
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::UndeclaredDirectiveArg { .. }]
        ));
    }

    #[test]
    fn directives_on_args_are_checked_too() {
        let v = violations("type U {} type T { r(w: Float @fancy(x: 1)): U }");
        assert!(matches!(
            v.as_slice(),
            [ConsistencyViolation::UndeclaredDirectiveArg {
                site: DirectiveSite::Arg { .. },
                ..
            }]
        ));
    }

    #[test]
    fn violations_display() {
        let v = violations("interface I { f: Int } type T implements I { g: Int }");
        assert_eq!(v[0].to_string(), "type T implements I but lacks field `f`");
    }
}
