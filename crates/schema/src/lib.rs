//! # gql-schema — the formal GraphQL schema model
//!
//! This crate implements §4 of Hartig & Hidders: a *concise formalization
//! of the notion of schemas captured by the GraphQL SDL*, extended from
//! Hartig & Pérez with non-null types, wrapping-type semantics, and
//! directives.
//!
//! The pieces map one-to-one onto the paper:
//!
//! | Paper (§4)                         | Here                                   |
//! |------------------------------------|----------------------------------------|
//! | finite sets `F, A, T, S, D`        | interned tables inside [`Schema`]      |
//! | `typeF : (OT ∪ IT) × F ⇀ T ∪ WT`   | [`Schema::field`] / [`FieldInfo::ty`]  |
//! | `typeAF : dom(typeF) × A ⇀ S ∪ WS` | [`FieldInfo::args`]                    |
//! | `typeAD : D × A ⇀ S ∪ WS`          | [`DirectiveDecl::args`]                |
//! | `unionS : UT → 2^OT`               | [`TypeKind::Union`]                    |
//! | `implementationS : IT → 2^OT`      | [`Schema::implementors`]               |
//! | `directivesS` (on types/fields/args) | `directives` vectors on each item   |
//! | wrapping types `t!,[t],[t!],[t]!,[t!]!` | [`Wrap`] / [`WrappedType`]        |
//! | `basetype`                         | [`WrappedType::base`]                  |
//! | `valuesW` (§4.1)                   | [`Schema::value_conforms`]             |
//! | subtype relation `⊑S` (rules 1–7)  | [`subtype`]                            |
//! | interface consistency (Def. 4.3)   | [`consistency::check`]                 |
//! | directives consistency (Def. 4.4)  | [`consistency::check`]                 |
//!
//! Per footnote 1 of the paper, enum types are folded into the scalar
//! types: an enum is a scalar whose value set is its symbol set.
//!
//! ```
//! let doc = gql_sdl::parse("type User { id: ID! @required login: String! }").unwrap();
//! let schema = gql_schema::build_schema(&doc).unwrap();
//! let user = schema.type_id("User").unwrap();
//! assert!(schema.object_type(user).is_some());
//! assert_eq!(schema.fields(user).count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
pub mod consistency;
pub mod emit;
mod model;
pub mod subtype;
mod values;
mod wrap;

pub use build::{
    build_schema, build_schema_with_diagnostics, Diagnostic, DiagnosticKind, Severity,
};
pub use model::{
    AppliedDirective, ArgInfo, BuiltinScalar, DirectiveDecl, FieldInfo, ObjectInfo, ScalarInfo,
    Schema, TypeId, TypeKind,
};
pub use wrap::{Wrap, WrappedType};

/// Names of the six schema directives the paper introduces (§3, §4.3).
pub mod directives {
    /// Mandatory property / mandatory edge (DS5/DS6).
    pub const REQUIRED: &str = "required";
    /// Edges identified by endpoints and label (DS1).
    pub const DISTINCT: &str = "distinct";
    /// No self-loop edges (DS2). The paper writes `@noloops` in §3 and
    /// `@noLoops` in §4.3/§5; we canonicalise to this spelling and accept
    /// both on input.
    pub const NO_LOOPS: &str = "noLoops";
    /// Target has at most one incoming edge of this type (DS3).
    pub const UNIQUE_FOR_TARGET: &str = "uniqueForTarget";
    /// Target has at least one incoming edge of this type (DS4).
    pub const REQUIRED_FOR_TARGET: &str = "requiredForTarget";
    /// Key constraint over node properties (DS7).
    pub const KEY: &str = "key";
}
