//! Parser robustness: `pg_pgschema::compile` on mutated valid inputs
//! (truncations, token swaps, character noise) must never panic, and
//! every rejection must carry a usable 1-based line/column position —
//! the error contract DESIGN §PG-Schema frontend promises tooling.

use pg_pgschema::{compile, corpus::corpus_sdl, print_pgschema, ParseError, TypeMode};
use proptest::prelude::*;

/// A valid PG-Schema text: the bilingual corpus schema for `seed`,
/// rendered through the printer (the same path `pgschema translate`
/// takes).
fn corpus_pgs(seed: u64) -> String {
    let sdl = corpus_sdl(seed);
    let doc = gql_sdl::parse(&sdl).expect("corpus SDL parses");
    print_pgschema(&doc, "Corpus", TypeMode::Strict)
        .expect("corpus stays inside the PG-Schema fragment")
}

/// Every error must point into (or just past) the source it was raised
/// on, with 1-based coordinates, and must render a caret snippet
/// without panicking.
fn assert_error_is_located(err: &ParseError, source: &str) {
    assert!(err.pos.line >= 1, "0-based line in {err}");
    assert!(err.pos.column >= 1, "0-based column in {err}");
    let lines = source.lines().count().max(1) as u32;
    assert!(
        err.pos.line <= lines + 1,
        "line {} beyond the {}-line source",
        err.pos.line,
        lines
    );
    assert!(
        err.pos.offset <= source.len(),
        "offset {} beyond the {}-byte source",
        err.pos.offset,
        source.len()
    );
    let rendered = err.render(source);
    assert!(rendered.contains('^'), "no caret in:\n{rendered}");
    assert!(
        rendered.contains(&format!("{}:{}", err.pos.line, err.pos.column)),
        "no position in:\n{rendered}"
    );
}

/// Compile arbitrary (possibly mangled) text: no panic, and a located
/// error on rejection. Acceptance is fine — some mutations stay valid.
fn check(text: &str) {
    if let Err(err) = compile(text) {
        assert_error_is_located(&err, text);
    }
}

/// Clamp `at` to the nearest char boundary at or below it.
fn char_floor(text: &str, at: usize) -> usize {
    let mut i = at.min(text.len());
    while !text.is_char_boundary(i) {
        i -= 1;
    }
    i
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The unmutated corpus rendering always compiles.
    #[test]
    fn corpus_renderings_compile(seed in 0u64..64) {
        let text = corpus_pgs(seed);
        compile(&text).expect("valid rendering must compile");
    }

    /// Truncation at any byte: never a panic, always a located error
    /// (or acceptance, for cuts landing after the closing brace).
    #[test]
    fn truncations_never_panic(seed in 0u64..24, cut in 0usize..4096) {
        let text = corpus_pgs(seed);
        let cut = char_floor(&text, cut % (text.len() + 1));
        check(&text[..cut]);
    }

    /// Swapping two whitespace-delimited tokens: never a panic, and
    /// rejections stay located.
    #[test]
    fn token_swaps_never_panic(seed in 0u64..24, a in 0usize..256, b in 0usize..256) {
        let text = corpus_pgs(seed);
        let tokens: Vec<&str> = text.split_whitespace().collect();
        if tokens.len() < 2 {
            return Ok(());
        }
        let (a, b) = (a % tokens.len(), b % tokens.len());
        let mut swapped = tokens.clone();
        swapped.swap(a, b);
        check(&swapped.join(" "));
    }

    /// Single-character noise — insertion of a grammar-significant
    /// character, or deletion of one in place: never a panic.
    #[test]
    fn character_noise_never_panics(seed in 0u64..24, at in 0usize..4096, which in 0usize..12) {
        let text = corpus_pgs(seed);
        let at = char_floor(&text, at % (text.len() + 1));
        const NOISE: [char; 11] = ['(', ')', '{', '}', '[', ']', ':', ',', '.', '-', '\u{e9}'];
        let mutated = if which < NOISE.len() {
            let mut m = String::with_capacity(text.len() + 2);
            m.push_str(&text[..at]);
            m.push(NOISE[which]);
            m.push_str(&text[at..]);
            m
        } else {
            // Delete the character at `at` (no-op at end of input).
            let mut m = String::with_capacity(text.len());
            m.push_str(&text[..at]);
            let rest = &text[at..];
            let skip = rest.chars().next().map_or(0, char::len_utf8);
            m.push_str(&rest[skip..]);
            m
        };
        check(&mutated);
    }
}
