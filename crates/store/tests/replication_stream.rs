//! Replication stream tests: `read_tail` edge cases (mid-frame
//! truncation at the leader, compacted history forcing a snapshot
//! bootstrap), `append_replicated` idempotence under duplicate delivery,
//! and the snapshot-handoff round trip a follower bootstrap performs.

use std::fs::{self, OpenOptions};
use std::path::PathBuf;

use pg_store::{FsyncPolicy, Store, Tail};
use pgraph::{GraphDelta, NodeId, PropertyGraph, Value};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("pg-store-repl-tests")
        .join(format!("{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

const SDL: &str = "type User { login: String! @required }";

fn seed_graph() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let u = g.add_node("User");
    g.set_node_property(u, "login", Value::from("alice"));
    g
}

fn toggle(i: u64) -> GraphDelta {
    GraphDelta::new().set_node_property(
        NodeId::from_index(0),
        "login",
        if i.is_multiple_of(2) {
            Value::Int(i as i64)
        } else {
            Value::from("alice")
        },
    )
}

/// A leader store with one session and `deltas` toggling deltas.
fn leader_with_history(name: &str, deltas: u64) -> Store {
    let (store, _) = Store::open(test_dir(name), FsyncPolicy::Never).unwrap();
    store.append_create(1, SDL, &seed_graph()).unwrap();
    for i in 0..deltas {
        store.append_delta(1, &toggle(i)).unwrap();
    }
    store
}

fn batch(store: &Store, from: u64, max: usize) -> pg_store::TailBatch {
    match store.read_tail(from, max).unwrap() {
        Tail::Batch(b) => b,
        Tail::SnapshotRequired { oldest_retained } => {
            panic!("unexpected SnapshotRequired (oldest {oldest_retained})")
        }
    }
}

#[test]
fn tail_serves_the_whole_log_and_then_reports_caught_up() {
    let leader = leader_with_history("whole-log", 5);
    let b = batch(&leader, 1, usize::MAX >> 1);
    assert_eq!(b.frames.len(), 6); // create + 5 deltas
    assert_eq!(b.next_from, 7);
    assert_eq!(b.end_seq, 7);
    assert_eq!(b.remaining_bytes, 0);
    // Caught up: an empty batch from the cursor.
    let caught_up = batch(&leader, b.next_from, usize::MAX >> 1);
    assert!(caught_up.frames.is_empty());
    assert_eq!(caught_up.next_from, 7);
    assert_eq!(caught_up.end_seq, 7);
}

#[test]
fn tail_batches_respect_max_bytes_and_report_remaining_lag() {
    let leader = leader_with_history("batched", 20);
    let mut from = 1;
    let mut total = 0usize;
    let mut rounds = 0usize;
    loop {
        let b = batch(&leader, from, 256);
        if b.frames.is_empty() {
            break;
        }
        // remaining_bytes counts exactly the frame bytes not yet shipped.
        let shipped: usize = b.frames.iter().map(Vec::len).sum();
        let rest = batch(&leader, b.next_from, usize::MAX >> 1);
        let rest_bytes: usize = rest.frames.iter().map(Vec::len).sum();
        assert_eq!(b.remaining_bytes, rest_bytes as u64, "round {rounds}");
        total += shipped;
        from = b.next_from;
        rounds += 1;
        assert!(rounds < 100, "tail did not converge");
    }
    assert!(rounds > 1, "test should need several batches");
    let whole = batch(&leader, 1, usize::MAX >> 1);
    assert_eq!(total, whole.frames.iter().map(Vec::len).sum::<usize>());
}

#[test]
fn a_tail_truncated_mid_frame_ships_only_whole_frames() {
    let leader = leader_with_history("torn", 3);
    let clean = batch(&leader, 1, usize::MAX >> 1);
    assert_eq!(clean.frames.len(), 4);
    // Chop the last frame in half on disk, as if the leader crashed
    // mid-write and a follower polled before recovery truncated it.
    let seg = fs::read_dir(leader.dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .unwrap();
    let len = fs::metadata(&seg).unwrap().len();
    let last = clean.frames.last().unwrap().len() as u64;
    OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - last / 2)
        .unwrap();
    let torn = batch(&leader, 1, usize::MAX >> 1);
    assert_eq!(torn.frames.len(), 3, "the half frame must not ship");
    assert_eq!(torn.next_from, 4);
    for (clean_frame, torn_frame) in clean.frames.iter().zip(&torn.frames) {
        assert_eq!(clean_frame, torn_frame);
    }
}

#[test]
fn compacted_history_demands_a_snapshot() {
    let leader = leader_with_history("compacted", 4);
    let mut compaction = leader.try_begin_compaction().unwrap().unwrap();
    // State as an external caller would capture it (graph after replay).
    let mut graph = seed_graph();
    for i in 0..4 {
        toggle(i).apply_to(&mut graph).unwrap();
    }
    compaction.add_session(1, 5, 4, SDL, &graph, None);
    compaction.finish(2).unwrap();
    match leader.read_tail(1, usize::MAX >> 1).unwrap() {
        Tail::SnapshotRequired { oldest_retained } => assert_eq!(oldest_retained, 6),
        Tail::Batch(b) => panic!("expected SnapshotRequired, got {} frames", b.frames.len()),
    }
    // From the retention point on, tailing works again.
    let b = batch(&leader, 6, usize::MAX >> 1);
    assert!(b.frames.is_empty());
    assert_eq!(b.end_seq, 6);
}

/// Concatenates a batch the way the HTTP body does.
fn concat(frames: &[Vec<u8>]) -> Vec<u8> {
    frames.iter().flat_map(|f| f.iter().copied()).collect()
}

#[test]
fn replicated_appends_preserve_bytes_and_survive_duplicate_delivery() {
    let leader = leader_with_history("dup-leader", 6);
    let follower_dir = test_dir("dup-follower");
    let (follower, _) = Store::open(&follower_dir, FsyncPolicy::Never).unwrap();

    let b = batch(&leader, 1, usize::MAX >> 1);
    let body = concat(&b.frames);
    let first = follower.append_replicated(&body).unwrap();
    assert_eq!(first.records.len(), 7);
    assert_eq!(first.duplicates, 0);
    assert!(first.torn.is_none());
    assert_eq!(follower.tail_cursor(), 8);
    assert_eq!(follower.next_seq(), 8);

    // Redelivery of the same batch after a reconnect: all duplicates,
    // nothing appended, cursor unchanged.
    let again = follower.append_replicated(&body).unwrap();
    assert_eq!(again.records.len(), 0);
    assert_eq!(again.duplicates, 7);
    assert_eq!(follower.tail_cursor(), 8);

    // An overlapping batch (old frames + one new) appends only the new.
    leader.append_delta(1, &toggle(6)).unwrap();
    let overlap = batch(&leader, 5, usize::MAX >> 1);
    let applied = follower
        .append_replicated(&concat(&overlap.frames))
        .unwrap();
    assert_eq!(applied.duplicates, 3);
    assert_eq!(applied.records.len(), 1);
    assert_eq!(applied.records[0].0, 8);

    // The follower's WAL is byte-identical to the leader's.
    let leader_bytes = concat(&batch(&leader, 1, usize::MAX >> 1).frames);
    let follower_bytes = concat(&batch(&follower, 1, usize::MAX >> 1).frames);
    assert_eq!(leader_bytes, follower_bytes);

    // And recovery of the follower's directory reproduces the session.
    drop(follower);
    let (_, recovered) = Store::open(&follower_dir, FsyncPolicy::Never).unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    assert_eq!(recovered.sessions[0].deltas_applied, 7);
}

#[test]
fn a_sequence_gap_is_rejected_as_divergence() {
    let leader = leader_with_history("gap-leader", 4);
    let (follower, _) = Store::open(test_dir("gap-follower"), FsyncPolicy::Never).unwrap();
    let b = batch(&leader, 3, usize::MAX >> 1); // starts at seq 3, follower expects 1
    let err = follower
        .append_replicated(&concat(&b.frames))
        .expect_err("gap must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert_eq!(follower.tail_cursor(), 1, "nothing may be appended");
}

#[test]
fn corrupt_frames_end_a_batch_without_erroring() {
    let leader = leader_with_history("corrupt-leader", 4);
    let (follower, _) = Store::open(test_dir("corrupt-follower"), FsyncPolicy::Never).unwrap();
    let b = batch(&leader, 1, usize::MAX >> 1);
    let mut body = concat(&b.frames);
    // Flip a bit in the third frame's payload.
    let third_start: usize = b.frames[..2].iter().map(Vec::len).sum();
    body[third_start + 12] ^= 0x20;
    let applied = follower.append_replicated(&body).unwrap();
    assert_eq!(applied.records.len(), 2, "only the clean prefix lands");
    assert!(applied.torn.is_some());
    assert_eq!(follower.tail_cursor(), 3);
    // The follower re-requests from its cursor and completes.
    let rest = batch(&leader, follower.tail_cursor(), usize::MAX >> 1);
    follower.append_replicated(&concat(&rest.frames)).unwrap();
    assert_eq!(follower.tail_cursor(), leader.tail_cursor());
}

#[test]
fn snapshot_handoff_bootstraps_an_empty_follower() {
    let leader = leader_with_history("handoff-leader", 8);
    // Capture the handoff as the server would: base first, then the
    // session state (which here includes everything up to seq 9).
    let mut handoff = leader.begin_handoff();
    assert_eq!(handoff.base_seq(), 9);
    let mut graph = seed_graph();
    for i in 0..8 {
        toggle(i).apply_to(&mut graph).unwrap();
    }
    handoff.add_session(1, 9, 8, SDL, &graph, None);
    let blob = handoff.finish(2);

    let dir = test_dir("handoff-follower");
    pg_store::install_snapshot(&dir, &blob).unwrap();
    // Installing twice is refused: bootstrap only targets empty dirs.
    let err = pg_store::install_snapshot(&dir, &blob).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    // Garbage is refused before touching the filesystem.
    let err = pg_store::install_snapshot(test_dir("handoff-garbage"), b"nope").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    let (follower, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    assert_eq!(recovered.sessions[0].deltas_applied, 8);
    assert_eq!(recovered.next_session_id, 2);
    // The cursor resumes exactly past the snapshot base; new leader
    // records replicate on top.
    assert_eq!(follower.tail_cursor(), 10);
    leader.append_delta(1, &toggle(8)).unwrap();
    let b = batch(&leader, follower.tail_cursor(), usize::MAX >> 1);
    let applied = follower.append_replicated(&concat(&b.frames)).unwrap();
    assert_eq!(applied.records.len(), 1);
    assert_eq!(follower.next_seq(), leader.next_seq());
}

#[test]
fn handoff_tolerates_sessions_captured_past_base_seq() {
    // The race the per-session gating exists for: a session captured
    // *after* the handoff's base_seq already contains newer records. The
    // follower must tail from base_seq + 1 (its tail_cursor), accept the
    // overlap, and end up consistent.
    let leader = leader_with_history("race-leader", 2); // seqs 1..=3
    let mut handoff = leader.begin_handoff();
    assert_eq!(handoff.base_seq(), 3);
    // Two more records land while the capture is in progress…
    leader.append_delta(1, &toggle(2)).unwrap(); // seq 4
    leader.append_delta(1, &toggle(3)).unwrap(); // seq 5
                                                 // …and the session is captured only now, at last_seq 5.
    let mut graph = seed_graph();
    for i in 0..4 {
        toggle(i).apply_to(&mut graph).unwrap();
    }
    handoff.add_session(1, 5, 4, SDL, &graph, None);
    let blob = handoff.finish(2);

    let dir = test_dir("race-follower");
    pg_store::install_snapshot(&dir, &blob).unwrap();
    let (follower, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap();
    // next_seq already accounts for seq 5; the tail cursor does not —
    // frames 4 and 5 must still be fetched into the local WAL.
    assert_eq!(follower.next_seq(), 6);
    assert_eq!(follower.tail_cursor(), 4);
    let b = batch(&leader, follower.tail_cursor(), usize::MAX >> 1);
    let applied = follower.append_replicated(&concat(&b.frames)).unwrap();
    assert_eq!(applied.records.len(), 2);
    assert_eq!(follower.tail_cursor(), 6);
    // Replay gating: the recovered session already reflects seqs 4–5, so
    // applying them again must be skipped by last_seq — which is what
    // recovery does when this directory is reopened.
    assert_eq!(recovered.sessions[0].last_seq, 5);
    drop(follower);
    let (_, recovered2) = Store::open(&dir, FsyncPolicy::Never).unwrap();
    assert_eq!(recovered2.sessions[0].deltas_applied, 4);
    assert_eq!(recovered2.sessions[0].last_seq, 5);
}
