//! A realistic scenario: a social-network catalogue with keys, distinct
//! follows-edges, no-self-follow, and edge properties. Generates a large
//! conforming instance, profiles both validation engines on it, then
//! demonstrates the per-rule detection matrix via violation injection.
//!
//! Run with: `cargo run --release --example social_network`

use std::time::Instant;

use pg_datagen::{inject, Defect, GraphGen, GraphGenParams};
use pg_schema::{validate, Engine, PgSchema, ValidationOptions};
use pgraph::stats::GraphStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = PgSchema::parse(pg_datagen::schemagen::social_schema())?;

    let gen = GraphGen::new(
        &schema,
        GraphGenParams {
            nodes_per_type: 2_000,
            max_fanout: 4,
            ..Default::default()
        },
    );
    let graph = gen
        .generate_conforming(5)
        .ok_or("social schema should be generable")?;
    println!("generated: {}", GraphStats::compute(&graph).summary());

    for engine in [Engine::Indexed, Engine::Naive] {
        let start = Instant::now();
        let report = validate(&graph, &schema, &ValidationOptions::with_engine(engine));
        println!(
            "{engine:?} engine: conforms={} in {:?}",
            report.conforms(),
            start.elapsed()
        );
        assert!(report.conforms());
    }

    // Detection matrix: every applicable defect is caught by exactly the
    // rule it targets.
    println!("\ndefect → detected rule");
    for defect in Defect::ALL {
        let mut broken = graph.clone();
        if !inject(&mut broken, &schema, defect) {
            println!("  {defect:?}: not applicable to this schema");
            continue;
        }
        let report = validate(&broken, &schema, &ValidationOptions::default());
        let caught = report.by_rule(defect.rule()).next().is_some();
        println!(
            "  {defect:?} → {} ({} violation(s)){}",
            defect.rule(),
            report.len(),
            if caught { "" } else { "  !! MISSED" }
        );
        assert!(caught, "{defect:?} was not caught");
    }
    Ok(())
}
