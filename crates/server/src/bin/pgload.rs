//! `pgload` — the load generator and smoke tester for `pg-schema serve`.
//!
//! Drives N concurrent keep-alive connections of one-shot `/validate`
//! and/or incremental-session delta traffic against a running daemon
//! and reports throughput plus p50/p95/p99 client-observed latency —
//! the measurement behind the E3s/E3e tables in EXPERIMENTS.md.
//!
//! Closed-loop by default (each connection fires its next request when
//! the previous response lands — measures capacity). `--rate R` switches
//! to an open loop with a fixed arrival schedule spread across the
//! connections; latency is then measured from each request's *scheduled*
//! arrival time, so server stalls surface as tail latency instead of
//! silently thinning the sample (the coordinated-omission trap).
//! `--hold N` parks N idle keep-alive connections to exercise
//! connection-scale rather than request throughput.
//!
//! ```text
//! pgload --addr 127.0.0.1:7878 --mode oneshot --connections 8 --duration 10
//! pgload --addr 127.0.0.1:7878 --mode session --connections 8 --duration 10
//! pgload --addr 127.0.0.1:7878 --mode mixed   --connections 8 --duration 10
//! pgload --addr 127.0.0.1:7878 --mode oneshot --rate 5000 --duration 10
//! pgload --addr 127.0.0.1:7878 --hold 5000 --duration 10
//! pgload --cluster 127.0.0.1:7878,127.0.0.1:7879 --mode session --duration 10
//! pgload --addr 127.0.0.1:7878 --smoke   # CI: one pass over the surface
//! pgload --restart-check path/to/pgschema   # CI: durability across SIGKILL
//! pgload --failover-check path/to/pgschema  # CI: promote a follower, lose nothing
//! pgload --migrate-check path/to/pgschema   # CI: dual-schema window survives SIGKILL
//! ```
//!
//! `--cluster a,b,c` shards session traffic across independent leaders
//! with the same consistent-hash ring every other client computes
//! ([`pg_server::ring::Ring`]); `--failover-check` spawns a leader and
//! two followers, kills the leader under acknowledged traffic, promotes
//! a follower and requires zero acked-write loss.

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use pg_server::http::read_response;
use pg_server::ring::Ring;
use pg_server::workload::{sample_graph, toggle_delta, user_ids, SCHEMA_SDL};
use pgraph::json::{self, Json};

/// Status, response headers (lowercased names), body.
type FullResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// One keep-alive client connection.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    fn request(&mut self, method: &str, target: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let (status, _headers, body) = self.request_full(method, target, body)?;
        Ok((status, body))
    }

    fn request_full(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> io::Result<FullResponse> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: pgload\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut out = Vec::with_capacity(head.len() + body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(body);
        self.stream.write_all(&out)?;
        read_response(&mut self.stream, &mut self.buf)
    }
}

/// Set once from `--lang pgschema`: the workload then posts the
/// PG-Schema rendering of the worked-example schema, and schema-carrying
/// creation requests add `lang=pgschema`. Deltas, reports and graphs are
/// language-neutral, so everything downstream is unchanged — which is
/// the point: E5f measures the per-language frontend cost in isolation.
static USE_PGSCHEMA: AtomicBool = AtomicBool::new(false);

fn use_pgschema() -> bool {
    USE_PGSCHEMA.load(Ordering::Relaxed)
}

/// The workload schema in the selected language.
fn workload_schema() -> String {
    if use_pgschema() {
        let doc = gql_sdl::parse(SCHEMA_SDL).expect("workload schema parses");
        pg_pgschema::print_pgschema(&doc, "Workload", pg_pgschema::TypeMode::Strict)
            .expect("workload schema is inside the PG-Schema fragment")
    } else {
        SCHEMA_SDL.to_owned()
    }
}

/// The session-creation target in the selected language.
fn sessions_target() -> &'static str {
    if use_pgschema() {
        "/sessions?lang=pgschema"
    } else {
        "/sessions"
    }
}

/// The one-shot validation target in the selected language.
fn validate_target(engine: &str) -> String {
    let lang = if use_pgschema() { "&lang=pgschema" } else { "" };
    format!("/validate?engine={engine}{lang}")
}

/// The `{"schema": …, "graph": …}` envelope for the worked-example
/// workload.
fn envelope(users: usize) -> String {
    let graph = sample_graph(users);
    let mut out = String::new();
    out.push_str("{\"schema\":");
    pg_server::http::push_json_string(&mut out, &workload_schema());
    out.push_str(",\"graph\":");
    out.push_str(&json::to_json(&graph));
    out.push('}');
    out
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Oneshot,
    Session,
    Mixed,
}

struct WorkerStats {
    latencies_micros: Vec<u64>,
    errors: u64,
    shed: u64,
}

/// One worker's slice of the open-loop arrival schedule: its k-th
/// request is *due* at `start + offset_s + k * interval_s`, regardless
/// of how the server is doing. Latency is measured from that due time —
/// a stalled server accumulates schedule debt that shows up as tail
/// latency, which is what makes the recording coordinated-omission safe.
#[derive(Clone, Copy)]
struct Pace {
    start: Instant,
    interval_s: f64,
    offset_s: f64,
}

/// One worker driving a single connection until `deadline`.
fn run_worker(
    addr: &str,
    oneshot: bool,
    users: usize,
    engine: &str,
    deadline: Instant,
    stop: &AtomicBool,
    pace: Option<Pace>,
) -> WorkerStats {
    let mut stats = WorkerStats {
        latencies_micros: Vec::with_capacity(1 << 16),
        errors: 0,
        shed: 0,
    };
    let body = envelope(users);
    let graph = sample_graph(users);
    let user = user_ids(&graph)[0];
    let target = validate_target(engine);

    // The arrival index persists across reconnects so the schedule is
    // never silently thinned by a dropped connection.
    let mut k = 0u64;
    'reconnect: loop {
        if stop.load(Ordering::Relaxed) || Instant::now() >= deadline {
            return stats;
        }
        let mut client = match Client::connect(addr) {
            Ok(client) => client,
            Err(_) => {
                stats.errors += 1;
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };

        // Session mode: create this connection's own session first.
        let session_id = if oneshot {
            None
        } else {
            match client.request("POST", sessions_target(), body.as_bytes()) {
                Ok((201, response)) => {
                    let text = String::from_utf8_lossy(&response).into_owned();
                    match Json::parse(&text)
                        .ok()
                        .and_then(|d| d.get("session")?.as_i64())
                    {
                        Some(id) => Some(id as u64),
                        None => {
                            stats.errors += 1;
                            continue 'reconnect;
                        }
                    }
                }
                Ok((503, _)) => {
                    stats.shed += 1;
                    std::thread::sleep(Duration::from_millis(20));
                    continue 'reconnect;
                }
                _ => {
                    stats.errors += 1;
                    continue 'reconnect;
                }
            }
        };
        let delta_target = session_id.map(|id| format!("/sessions/{id}/deltas"));
        let report_target = session_id.map(|id| format!("/sessions/{id}/report"));

        let mut i = 0u64;
        loop {
            // Open loop: wait for the k-th arrival to come due. If the
            // previous response came back late the due time is already in
            // the past and the request fires immediately, carrying the
            // backlog in its recorded latency.
            let started = match pace {
                Some(p) => {
                    let due =
                        p.start + Duration::from_secs_f64(p.offset_s + k as f64 * p.interval_s);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    due
                }
                None => Instant::now(),
            };
            if stop.load(Ordering::Relaxed) || Instant::now() >= deadline {
                if let Some(id) = session_id {
                    let _ = client.request("DELETE", &format!("/sessions/{id}"), b"");
                }
                return stats;
            }
            let result = if oneshot {
                client.request("POST", &target, body.as_bytes())
            } else if i % 16 == 15 {
                client.request("GET", report_target.as_deref().unwrap(), b"")
            } else {
                let delta = json::delta_to_json(&toggle_delta(user, i));
                client.request("POST", delta_target.as_deref().unwrap(), delta.as_bytes())
            };
            let micros = started.elapsed().as_micros() as u64;
            i += 1;
            k += 1;
            match result {
                Ok((200, _)) => stats.latencies_micros.push(micros),
                Ok((503, _)) => {
                    stats.shed += 1;
                    std::thread::sleep(Duration::from_millis(20));
                    continue 'reconnect;
                }
                Ok((_, _)) => stats.errors += 1,
                Err(_) => {
                    stats.errors += 1;
                    continue 'reconnect;
                }
            }
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[allow(clippy::too_many_arguments)]
fn run_load(
    addr: &str,
    cluster: Option<&Ring>,
    mode: Mode,
    connections: usize,
    seconds: u64,
    users: usize,
    engine: &str,
    rate: Option<f64>,
) {
    let start = Instant::now();
    let deadline = start + Duration::from_secs(seconds);
    let stop = AtomicBool::new(false);
    let stop_ref = &stop;
    // With `--cluster`, each worker's session key picks its node off the
    // consistent-hash ring — the same placement every client computes
    // from the same node list, no coordinator involved.
    let targets: Vec<String> = (0..connections)
        .map(|c| match cluster {
            Some(ring) => ring
                .node_for_key(format!("pgload-{c}").as_bytes())
                .to_owned(),
            None => addr.to_owned(),
        })
        .collect();
    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let oneshot = match mode {
                    Mode::Oneshot => true,
                    Mode::Session => false,
                    Mode::Mixed => c % 2 == 0,
                };
                // Open loop: the aggregate rate R is interleaved across
                // the C connections — worker c owns arrivals c, c+C,
                // c+2C, … of the global schedule.
                let pace = rate.map(|r| Pace {
                    start,
                    interval_s: connections as f64 / r,
                    offset_s: c as f64 / r,
                });
                let target = targets[c].as_str();
                scope.spawn(move || {
                    run_worker(target, oneshot, users, engine, deadline, stop_ref, pace)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    let mut shed = 0u64;
    for s in &stats {
        latencies.extend_from_slice(&s.latencies_micros);
        errors += s.errors;
        shed += s.shed;
    }
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let mode_name = match mode {
        Mode::Oneshot => "oneshot",
        Mode::Session => "session",
        Mode::Mixed => "mixed",
    };
    let mut target = match rate {
        Some(r) => format!(" target_rps={r:.0}"),
        None => String::new(),
    };
    if let Some(ring) = cluster {
        target.push_str(&format!(" cluster_nodes={}", ring.nodes().len()));
    }
    println!(
        "mode={mode_name} connections={connections} duration_s={elapsed:.1}{target} \
         requests={requests} errors={errors} shed={shed} \
         throughput_rps={:.0} p50_us={} p95_us={} p99_us={}",
        requests as f64 / elapsed,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
}

/// Connection-scale check (`--hold N`): opens N keep-alive connections,
/// proves each is live with one `/healthz`, parks them all for the
/// duration, then re-verifies a sample and the server's own
/// `pgschemad_connections_open` gauge before closing them. Exercises the
/// reactor's idle-connection capacity, which a closed-loop run never
/// does.
fn run_hold(addr: &str, count: usize, seconds: u64) -> Result<(), String> {
    let started = Instant::now();
    let mut clients = Vec::with_capacity(count);
    for n in 0..count {
        let mut client =
            Client::connect(addr).map_err(|e| format!("connect #{n} of {count}: {e}"))?;
        match client.request("GET", "/healthz", b"") {
            Ok((200, _)) => clients.push(client),
            Ok((503, _)) => return Err(format!("connection #{n} shed with 503")),
            Ok((status, _)) => return Err(format!("connection #{n}: healthz status {status}")),
            Err(e) => return Err(format!("connection #{n}: healthz: {e}")),
        }
    }
    let ramp_s = started.elapsed().as_secs_f64();
    println!("hold: {count} connections open after {ramp_s:.1}s, holding {seconds}s");
    std::thread::sleep(Duration::from_secs(seconds));

    // Every sampled connection must still be alive after idling.
    let sample = [0, count / 2, count.saturating_sub(1)];
    for &n in &sample {
        let Some(client) = clients.get_mut(n) else {
            continue;
        };
        match client.request("GET", "/healthz", b"") {
            Ok((200, _)) => {}
            Ok((status, _)) => return Err(format!("held connection #{n}: status {status}")),
            Err(e) => return Err(format!("held connection #{n} died while idle: {e}")),
        }
    }
    // The server must agree it is holding them all (+1 for this probe).
    let mut probe = Client::connect(addr).map_err(|e| format!("metrics probe: {e}"))?;
    let (status, body) = probe
        .request("GET", "/metrics", b"")
        .map_err(|e| format!("metrics probe: {e}"))?;
    if status != 200 {
        return Err(format!("metrics probe: status {status}"));
    }
    let text = String::from_utf8_lossy(&body);
    let open = text
        .lines()
        .find_map(|l| l.strip_prefix("pgschemad_connections_open "))
        .and_then(|v| v.trim().parse::<usize>().ok())
        .ok_or("metrics probe: no pgschemad_connections_open gauge")?;
    if open < count {
        return Err(format!(
            "server reports {open} open connections, expected at least {count}"
        ));
    }
    println!("hold: ok ({count} connections held, server gauge {open})");
    Ok(())
}

/// One deterministic pass over the HTTP surface; any unexpected response
/// is a process-exit failure. CI runs this between daemon start and
/// SIGTERM.
fn run_smoke(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;

    let (status, body) = client
        .request("GET", "/healthz", b"")
        .map_err(|e| format!("healthz: {e}"))?;
    if status != 200 {
        return Err(format!("healthz: status {status}"));
    }
    if body != b"ok\n" {
        return Err("healthz: unexpected body".into());
    }

    // Stateless validation on every engine agrees the sample conforms.
    let envelope = envelope(4);
    for engine in ["naive", "indexed", "parallel", "incremental"] {
        let (status, body) = client
            .request("POST", &validate_target(engine), envelope.as_bytes())
            .map_err(|e| format!("validate({engine}): {e}"))?;
        if status != 200 {
            return Err(format!("validate({engine}): status {status}"));
        }
        let report = Json::parse(&String::from_utf8_lossy(&body))
            .map_err(|e| format!("validate({engine}): bad report JSON: {e}"))?;
        if report.get("conforms") != Some(&Json::Bool(true)) {
            return Err(format!("validate({engine}): sample should conform"));
        }
    }

    // Session round trip: create, break, observe, repair, verify.
    let (status, body) = client
        .request("POST", sessions_target(), envelope.as_bytes())
        .map_err(|e| format!("create session: {e}"))?;
    if status != 201 {
        return Err(format!("create session: status {status}"));
    }
    let created = Json::parse(&String::from_utf8_lossy(&body))
        .map_err(|e| format!("create session: bad JSON: {e}"))?;
    let id = created
        .get("session")
        .and_then(Json::as_i64)
        .ok_or("create session: no id")?;
    let graph = sample_graph(4);
    let user = user_ids(&graph)[0];

    let break_delta = json::delta_to_json(&toggle_delta(user, 0));
    let (status, body) = client
        .request(
            "POST",
            &format!("/sessions/{id}/deltas"),
            break_delta.as_bytes(),
        )
        .map_err(|e| format!("breaking delta: {e}"))?;
    if status != 200 {
        return Err(format!("breaking delta: status {status}"));
    }
    let patched = Json::parse(&String::from_utf8_lossy(&body))
        .map_err(|e| format!("breaking delta: bad JSON: {e}"))?;
    if patched.get("report").and_then(|r| r.get("conforms")) != Some(&Json::Bool(false)) {
        return Err("breaking delta: report should not conform".into());
    }

    let repair_delta = json::delta_to_json(&toggle_delta(user, 1));
    let (status, _) = client
        .request(
            "POST",
            &format!("/sessions/{id}/deltas"),
            repair_delta.as_bytes(),
        )
        .map_err(|e| format!("repair delta: {e}"))?;
    if status != 200 {
        return Err(format!("repair delta: status {status}"));
    }

    let (status, body) = client
        .request("GET", &format!("/sessions/{id}/report"), b"")
        .map_err(|e| format!("report: {e}"))?;
    if status != 200 {
        return Err(format!("report: status {status}"));
    }
    let report = Json::parse(&String::from_utf8_lossy(&body))
        .map_err(|e| format!("report: bad JSON: {e}"))?;
    if report.get("conforms") != Some(&Json::Bool(true)) {
        return Err("report: repaired session should conform".into());
    }
    if report.get("rule_counts").is_none() {
        return Err("report: missing per-rule counts".into());
    }

    let (status, body) = client
        .request("GET", "/metrics", b"")
        .map_err(|e| format!("metrics: {e}"))?;
    let text = String::from_utf8_lossy(&body).into_owned();
    if status != 200 || !text.contains("pgschemad_validations_total") {
        return Err("metrics: missing pgschemad_validations_total".into());
    }
    if !text.contains("pgschemad_sessions_live 1") {
        return Err("metrics: expected one live session".into());
    }
    if !text.contains("pgschemad_rule_violations_total{rule=\"WS1\"}")
        || !text.contains("pgschemad_rule_nanos_total{rule=\"DS7\"}")
    {
        return Err("metrics: missing per-rule counter families".into());
    }
    if !text.contains("pgschemad_wakeups_total{core=\"0\"}")
        || !text.contains("pgschemad_connections_open")
        || !text.contains("pgschemad_core_connections{core=\"0\"}")
    {
        return Err("metrics: missing reactor counter families".into());
    }

    let (status, _) = client
        .request("DELETE", &format!("/sessions/{id}"), b"")
        .map_err(|e| format!("delete session: {e}"))?;
    if status != 200 {
        return Err(format!("delete session: status {status}"));
    }

    println!("smoke: ok");
    Ok(())
}

/// Strips the volatile `metrics` member (wall times differ run to run)
/// so two reports over the same state compare byte-for-byte.
fn canonical_report(body: &[u8]) -> Result<String, String> {
    let doc = Json::parse(&String::from_utf8_lossy(body)).map_err(|e| format!("bad JSON: {e}"))?;
    let canonical = match doc {
        Json::Object(members) => Json::Object(
            members
                .into_iter()
                .filter(|(name, _)| name != "metrics")
                .collect(),
        ),
        other => other,
    };
    Ok(canonical.to_string())
}

/// The restart check (`--restart-check <pgschema-binary>`): load durable
/// sessions into a freshly spawned daemon, SIGKILL it, relaunch it on
/// the same `--data-dir`, and require every session's report and graph
/// to come back byte-for-byte identical (reports compared with their
/// volatile timing metrics stripped). Also checks that a deleted session
/// stays deleted and that new sequence numbers keep flowing after
/// recovery.
fn run_restart_check(server_bin: &str) -> Result<(), String> {
    let data_dir = std::env::temp_dir().join(format!("pgload-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    // Reserve a port by binding to 0 and releasing it; the daemon binds
    // it back a moment later.
    let port = TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .map_err(|e| format!("cannot pick a port: {e}"))?
        .port();
    let addr = format!("127.0.0.1:{port}");
    let spawn = || -> Result<std::process::Child, String> {
        std::process::Command::new(server_bin)
            .args([
                "serve",
                "--addr",
                &addr,
                "--cores",
                "2",
                "--log-format",
                "off",
                "--fsync",
                "always",
                "--data-dir",
            ])
            .arg(&data_dir)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn {server_bin}: {e}"))
    };
    let wait_ready = || -> Result<Client, String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(mut client) = Client::connect(&addr) {
                if let Ok((200, _)) = client.request("GET", "/healthz", b"") {
                    return Ok(client);
                }
            }
            if Instant::now() >= deadline {
                return Err(format!("daemon on {addr} not ready within 10s"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    };

    let mut child = spawn()?;
    let result = (|| -> Result<(), String> {
        let mut client = wait_ready()?;

        // Three sessions with different histories: left broken, broken
        // then repaired, and untouched. Plus one conflicting delta that
        // returns 409 — its deterministic partial effects must survive
        // the restart too.
        let mut ids = Vec::new();
        for users in [2usize, 4, 6] {
            let (status, body) = client
                .request("POST", sessions_target(), envelope(users).as_bytes())
                .map_err(|e| format!("create: {e}"))?;
            if status != 201 {
                return Err(format!("create: status {status}"));
            }
            let id = Json::parse(&String::from_utf8_lossy(&body))
                .ok()
                .and_then(|d| d.get("session")?.as_i64())
                .ok_or("create: no session id")?;
            ids.push((id, users));
        }
        for (i, &(id, users)) in ids.iter().enumerate() {
            let graph = sample_graph(users);
            let user = user_ids(&graph)[0];
            let deltas: u64 = match i {
                0 => 1, // ends broken
                1 => 2, // broken, then repaired
                _ => 0, // untouched
            };
            for d in 0..deltas {
                let delta = json::delta_to_json(&toggle_delta(user, d));
                let (status, _) = client
                    .request("POST", &format!("/sessions/{id}/deltas"), delta.as_bytes())
                    .map_err(|e| format!("delta: {e}"))?;
                if status != 200 {
                    return Err(format!("delta: status {status}"));
                }
            }
        }
        let conflict = r#"{"ops":[{"op":"remove-node","node":99999}]}"#;
        let (status, _) = client
            .request(
                "POST",
                &format!("/sessions/{}/deltas", ids[0].0),
                conflict.as_bytes(),
            )
            .map_err(|e| format!("conflicting delta: {e}"))?;
        if status != 409 {
            return Err(format!("conflicting delta: expected 409, got {status}"));
        }

        // A deleted session must stay deleted across the restart.
        let (status, body) = client
            .request("POST", sessions_target(), envelope(3).as_bytes())
            .map_err(|e| format!("create doomed: {e}"))?;
        if status != 201 {
            return Err(format!("create doomed: status {status}"));
        }
        let doomed = Json::parse(&String::from_utf8_lossy(&body))
            .ok()
            .and_then(|d| d.get("session")?.as_i64())
            .ok_or("create doomed: no session id")?;
        let (status, _) = client
            .request("DELETE", &format!("/sessions/{doomed}"), b"")
            .map_err(|e| format!("delete doomed: {e}"))?;
        if status != 200 {
            return Err(format!("delete doomed: status {status}"));
        }

        let mut before = Vec::new();
        for &(id, _) in &ids {
            let (status, report) = client
                .request("GET", &format!("/sessions/{id}/report"), b"")
                .map_err(|e| format!("report: {e}"))?;
            if status != 200 {
                return Err(format!("report: status {status}"));
            }
            let (status, graph) = client
                .request("GET", &format!("/sessions/{id}/graph"), b"")
                .map_err(|e| format!("graph: {e}"))?;
            if status != 200 {
                return Err(format!("graph: status {status}"));
            }
            before.push((id, canonical_report(&report)?, graph));
        }

        // SIGKILL: no drain, no flush beyond what `--fsync always`
        // already guaranteed per acknowledged append.
        child.kill().map_err(|e| format!("kill: {e}"))?;
        let _ = child.wait();
        child = spawn()?;
        let mut client = wait_ready()?;

        for (id, report_before, graph_before) in &before {
            let (status, report) = client
                .request("GET", &format!("/sessions/{id}/report"), b"")
                .map_err(|e| format!("report after restart: {e}"))?;
            if status != 200 {
                return Err(format!("report after restart: status {status}"));
            }
            if &canonical_report(&report)? != report_before {
                return Err(format!("session {id}: report changed across restart"));
            }
            let (status, graph) = client
                .request("GET", &format!("/sessions/{id}/graph"), b"")
                .map_err(|e| format!("graph after restart: {e}"))?;
            if status != 200 {
                return Err(format!("graph after restart: status {status}"));
            }
            if &graph != graph_before {
                return Err(format!("session {id}: graph changed across restart"));
            }
        }
        let (status, _) = client
            .request("GET", &format!("/sessions/{doomed}/report"), b"")
            .map_err(|e| format!("doomed after restart: {e}"))?;
        if status != 404 {
            return Err(format!("doomed session should stay deleted, got {status}"));
        }
        // Recovery must keep handing out fresh ids.
        let (status, body) = client
            .request("POST", sessions_target(), envelope(2).as_bytes())
            .map_err(|e| format!("post-restart create: {e}"))?;
        if status != 201 {
            return Err(format!("post-restart create: status {status}"));
        }
        let new_id = Json::parse(&String::from_utf8_lossy(&body))
            .ok()
            .and_then(|d| d.get("session")?.as_i64())
            .ok_or("post-restart create: no session id")?;
        if new_id <= doomed {
            return Err(format!(
                "session ids must not be reused: {new_id} after {doomed}"
            ));
        }
        Ok(())
    })();

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&data_dir);
    result?;
    println!("restart-check: ok");
    Ok(())
}

/// Reads one Prometheus gauge/counter value from `/metrics`.
fn metric_value(client: &mut Client, name: &str) -> Result<u64, String> {
    let (status, body) = client
        .request("GET", "/metrics", b"")
        .map_err(|e| format!("metrics: {e}"))?;
    if status != 200 {
        return Err(format!("metrics: status {status}"));
    }
    let text = String::from_utf8_lossy(&body);
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| format!("metrics: no `{name}` sample"))
}

/// The failover check (`--failover-check <pgschema-binary>`): spawn a
/// leader and two followers, write sessions with distinct histories
/// through the leader, wait for replication lag to reach zero, verify
/// follower reads match the leader byte-for-byte and that follower
/// writes answer `421` naming the leader — then SIGKILL the leader,
/// promote one follower, and require the promoted node to serve every
/// acknowledged session identically and to accept new writes. This is
/// the zero-acked-write-loss guarantee of docs/replication.md exercised
/// across real processes.
fn run_failover_check(server_bin: &str) -> Result<(), String> {
    let scratch = std::env::temp_dir().join(format!("pgload-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).map_err(|e| format!("cannot create {scratch:?}: {e}"))?;

    let pick_port = || -> Result<u16, String> {
        TcpListener::bind("127.0.0.1:0")
            .and_then(|l| l.local_addr())
            .map(|a| a.port())
            .map_err(|e| format!("cannot pick a port: {e}"))
    };
    let leader_addr = format!("127.0.0.1:{}", pick_port()?);
    let f1_addr = format!("127.0.0.1:{}", pick_port()?);
    let f2_addr = format!("127.0.0.1:{}", pick_port()?);

    let spawn =
        |addr: &str, dir: &str, follow: Option<&str>| -> Result<std::process::Child, String> {
            let mut cmd = std::process::Command::new(server_bin);
            cmd.args([
                "serve",
                "--addr",
                addr,
                "--cores",
                "2",
                "--log-format",
                "off",
                "--fsync",
                "always",
                "--data-dir",
            ])
            .arg(scratch.join(dir));
            if let Some(leader) = follow {
                cmd.args(["--follow", leader]);
            }
            cmd.stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .map_err(|e| format!("cannot spawn {server_bin}: {e}"))
        };
    let wait_ready = |addr: &str| -> Result<Client, String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(mut client) = Client::connect(addr) {
                if let Ok((200, _)) = client.request("GET", "/healthz", b"") {
                    return Ok(client);
                }
            }
            if Instant::now() >= deadline {
                return Err(format!("daemon on {addr} not ready within 10s"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    };

    let mut children = Vec::new();
    let result = (|| -> Result<(), String> {
        children.push(spawn(&leader_addr, "leader", None)?);
        let mut leader = wait_ready(&leader_addr)?;

        // Seed the leader before the followers exist, so they must
        // bootstrap from `GET /wal/snapshot` rather than tailing from
        // sequence 1.
        let mut ids = Vec::new();
        for users in [2usize, 4, 6] {
            let (status, body) = leader
                .request("POST", sessions_target(), envelope(users).as_bytes())
                .map_err(|e| format!("create: {e}"))?;
            if status != 201 {
                return Err(format!("create: status {status}"));
            }
            let id = Json::parse(&String::from_utf8_lossy(&body))
                .ok()
                .and_then(|d| d.get("session")?.as_i64())
                .ok_or("create: no session id")?;
            ids.push((id, users));
        }

        children.push(spawn(&f1_addr, "follower-1", Some(&leader_addr))?);
        children.push(spawn(&f2_addr, "follower-2", Some(&leader_addr))?);
        let mut f1 = wait_ready(&f1_addr)?;
        let mut f2 = wait_ready(&f2_addr)?;

        // More history after the followers attached, so live tailing is
        // exercised too: one session left broken, one broken-then-
        // repaired, one untouched.
        for (i, &(id, users)) in ids.iter().enumerate() {
            let graph = sample_graph(users);
            let user = user_ids(&graph)[0];
            let deltas: u64 = match i {
                0 => 1,
                1 => 2,
                _ => 0,
            };
            for d in 0..deltas {
                let delta = json::delta_to_json(&toggle_delta(user, d));
                let (status, _) = leader
                    .request("POST", &format!("/sessions/{id}/deltas"), delta.as_bytes())
                    .map_err(|e| format!("delta: {e}"))?;
                if status != 200 {
                    return Err(format!("delta: status {status}"));
                }
            }
        }

        // Every write above was acknowledged; the oracle is the leader's
        // own view of them.
        let mut oracle = Vec::new();
        for &(id, _) in &ids {
            let (status, report) = leader
                .request("GET", &format!("/sessions/{id}/report"), b"")
                .map_err(|e| format!("oracle report: {e}"))?;
            if status != 200 {
                return Err(format!("oracle report: status {status}"));
            }
            let (status, graph) = leader
                .request("GET", &format!("/sessions/{id}/graph"), b"")
                .map_err(|e| format!("oracle graph: {e}"))?;
            if status != 200 {
                return Err(format!("oracle graph: status {status}"));
            }
            oracle.push((id, canonical_report(&report)?, graph));
        }

        // Both followers must drain their lag before the leader dies —
        // promotion only preserves what replication delivered. A
        // follower's lag gauges freeze between polls, so "lag 0" alone
        // can be a stale pre-write reading; the authoritative bar is the
        // leader's own end sequence, taken from its tail endpoint.
        let (status, headers, _) = leader
            .request_full("GET", "/wal/tail?from=1", b"")
            .map_err(|e| format!("leader tail: {e}"))?;
        if status != 200 {
            return Err(format!("leader tail: status {status}"));
        }
        // `x-wal-end-seq` is the leader's `next_seq` — one past its
        // newest record, so that is the sequence a caught-up follower
        // must have applied.
        let leader_last = headers
            .iter()
            .find(|(k, _)| k == "x-wal-end-seq")
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .ok_or("leader tail: no x-wal-end-seq header")?
            .saturating_sub(1);
        for (name, follower) in [("follower-1", &mut f1), ("follower-2", &mut f2)] {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let caught_up = metric_value(follower, "pgschemad_replication_last_applied_seq")
                    .map(|seq| seq >= leader_last)
                    .unwrap_or(false);
                if caught_up {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(format!(
                        "{name} did not reach leader seq {leader_last} within 10s"
                    ));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            if metric_value(follower, "pgschemad_replication_state") != Ok(2) {
                return Err(format!("{name} is not in the tailing state"));
            }
            if metric_value(follower, "pgschemad_replication_follower") != Ok(1) {
                return Err(format!("{name} does not report itself as a follower"));
            }
        }

        // Follower reads serve the leader's state byte-for-byte.
        for (name, follower) in [("follower-1", &mut f1), ("follower-2", &mut f2)] {
            for (id, report_oracle, graph_oracle) in &oracle {
                let (status, report) = follower
                    .request("GET", &format!("/sessions/{id}/report"), b"")
                    .map_err(|e| format!("{name} report: {e}"))?;
                if status != 200 {
                    return Err(format!("{name} report: status {status}"));
                }
                if &canonical_report(&report)? != report_oracle {
                    return Err(format!("{name}: session {id} report diverges from leader"));
                }
                let (status, graph) = follower
                    .request("GET", &format!("/sessions/{id}/graph"), b"")
                    .map_err(|e| format!("{name} graph: {e}"))?;
                if status != 200 {
                    return Err(format!("{name} graph: status {status}"));
                }
                if &graph != graph_oracle {
                    return Err(format!("{name}: session {id} graph diverges from leader"));
                }
            }
        }

        // Follower writes are misdirected to the leader, not applied.
        let (status, headers, _) = f1
            .request_full("POST", sessions_target(), envelope(2).as_bytes())
            .map_err(|e| format!("follower write: {e}"))?;
        if status != 421 {
            return Err(format!("follower write: expected 421, got {status}"));
        }
        let named_leader = headers
            .iter()
            .find(|(k, _)| k == "x-pgschema-leader")
            .map(|(_, v)| v.as_str());
        if named_leader != Some(leader_addr.as_str()) {
            return Err(format!(
                "follower 421 names leader {named_leader:?}, expected {leader_addr}"
            ));
        }

        // Leader loss: SIGKILL, then promote follower-1.
        children[0]
            .kill()
            .map_err(|e| format!("kill leader: {e}"))?;
        let _ = children[0].wait();
        let promote_started = Instant::now();
        let (status, body) = f1
            .request("POST", "/promote", b"")
            .map_err(|e| format!("promote: {e}"))?;
        if status != 200 {
            return Err(format!("promote: status {status}"));
        }
        let promoted = Json::parse(&String::from_utf8_lossy(&body))
            .map_err(|e| format!("promote: bad JSON: {e}"))?;
        if promoted.get("role") != Some(&Json::Str("leader".into())) {
            return Err("promote: node did not report itself leader".into());
        }
        // Time-to-first-byte after promotion: the first read the new
        // leader serves in its new role.
        let (status, _) = f1
            .request("GET", &format!("/sessions/{}/report", oracle[0].0), b"")
            .map_err(|e| format!("post-promote read: {e}"))?;
        if status != 200 {
            return Err(format!("post-promote read: status {status}"));
        }
        let failover_ms = promote_started.elapsed().as_millis();
        if metric_value(&mut f1, "pgschemad_replication_follower") != Ok(0) {
            return Err("promoted node still reports itself as a follower".into());
        }

        // Zero acked-write loss: every oracle session is intact on the
        // promoted node.
        for (id, report_oracle, graph_oracle) in &oracle {
            let (status, report) = f1
                .request("GET", &format!("/sessions/{id}/report"), b"")
                .map_err(|e| format!("promoted report: {e}"))?;
            if status != 200 {
                return Err(format!("promoted report: status {status}"));
            }
            if &canonical_report(&report)? != report_oracle {
                return Err(format!("promoted node: session {id} lost acked writes"));
            }
            let (status, graph) = f1
                .request("GET", &format!("/sessions/{id}/graph"), b"")
                .map_err(|e| format!("promoted graph: {e}"))?;
            if status != 200 || &graph != graph_oracle {
                return Err(format!("promoted node: session {id} graph diverges"));
            }
        }

        // And it takes writes now: a delta on an old session and a
        // fresh session with an id the old leader never handed out.
        let graph = sample_graph(ids[1].1);
        let user = user_ids(&graph)[0];
        let delta = json::delta_to_json(&toggle_delta(user, 2));
        let (status, _) = f1
            .request(
                "POST",
                &format!("/sessions/{}/deltas", ids[1].0),
                delta.as_bytes(),
            )
            .map_err(|e| format!("post-promote delta: {e}"))?;
        if status != 200 {
            return Err(format!("post-promote delta: status {status}"));
        }
        let (status, body) = f1
            .request("POST", sessions_target(), envelope(3).as_bytes())
            .map_err(|e| format!("post-promote create: {e}"))?;
        if status != 201 {
            return Err(format!("post-promote create: status {status}"));
        }
        let new_id = Json::parse(&String::from_utf8_lossy(&body))
            .ok()
            .and_then(|d| d.get("session")?.as_i64())
            .ok_or("post-promote create: no session id")?;
        if ids.iter().any(|&(id, _)| new_id <= id) {
            return Err(format!("session ids must not be reused: got {new_id}"));
        }

        println!("failover-check: ok (promote-to-first-read {failover_ms}ms)");
        Ok(())
    })();

    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

/// Builds the `POST /sessions/{id}/migrate` JSON body.
fn migrate_request(action: &str, schema: Option<&str>, force: bool) -> Vec<u8> {
    let mut out = String::new();
    out.push_str("{\"action\":\"");
    out.push_str(action);
    out.push('"');
    if let Some(sdl) = schema {
        out.push_str(",\"schema\":");
        pg_server::http::push_json_string(&mut out, sdl);
    }
    if force {
        out.push_str(",\"force\":true");
    }
    out.push('}');
    out.into_bytes()
}

/// Like [`canonical_report`], but also strips the `engine` member, so a
/// session report (always `incremental`) compares against the one-shot
/// `/validate` oracles of the other engines.
fn canonical_engineless(body: &[u8]) -> Result<String, String> {
    let doc = Json::parse(&String::from_utf8_lossy(body)).map_err(|e| format!("bad JSON: {e}"))?;
    let canonical = match doc {
        Json::Object(members) => Json::Object(
            members
                .into_iter()
                .filter(|(name, _)| name != "metrics" && name != "engine")
                .collect(),
        ),
        other => other,
    };
    Ok(canonical.to_string())
}

/// The migration check (`--migrate-check <pgschema-binary>`): a live
/// dual-schema window across real processes. Plans a breaking and a
/// compatible candidate, opens a breaking window, applies deltas
/// through it, SIGKILLs the leader mid-window and requires recovery to
/// re-open the window (commit still refused), force-commits and checks
/// the post-commit report against all four one-shot engines, then runs
/// a clean compatible commit and a begin/abort cycle — with a follower
/// tailing the whole history, required to finish byte-identical to the
/// leader and to answer migrate writes with `421`.
fn run_migrate_check(server_bin: &str) -> Result<(), String> {
    let breaking_sdl = SCHEMA_SDL.replace("endTime: Time!", "endTime: Time! @required");
    let compatible_sdl = SCHEMA_SDL.replace(
        "nicknames: [String!]!",
        "nicknames: [String!]!\n    note: String",
    );

    let scratch = std::env::temp_dir().join(format!("pgload-migrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).map_err(|e| format!("cannot create {scratch:?}: {e}"))?;

    let pick_port = || -> Result<u16, String> {
        TcpListener::bind("127.0.0.1:0")
            .and_then(|l| l.local_addr())
            .map(|a| a.port())
            .map_err(|e| format!("cannot pick a port: {e}"))
    };
    let leader_addr = format!("127.0.0.1:{}", pick_port()?);
    let follower_addr = format!("127.0.0.1:{}", pick_port()?);

    let spawn =
        |addr: &str, dir: &str, follow: Option<&str>| -> Result<std::process::Child, String> {
            let mut cmd = std::process::Command::new(server_bin);
            cmd.args([
                "serve",
                "--addr",
                addr,
                "--cores",
                "2",
                "--log-format",
                "off",
                "--fsync",
                "always",
                "--data-dir",
            ])
            .arg(scratch.join(dir));
            if let Some(leader) = follow {
                cmd.args(["--follow", leader]);
            }
            cmd.stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .map_err(|e| format!("cannot spawn {server_bin}: {e}"))
        };
    let wait_ready = |addr: &str| -> Result<Client, String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(mut client) = Client::connect(addr) {
                if let Ok((200, _)) = client.request("GET", "/healthz", b"") {
                    return Ok(client);
                }
            }
            if Instant::now() >= deadline {
                return Err(format!("daemon on {addr} not ready within 10s"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    };

    let mut leader_child: Option<std::process::Child> = None;
    let mut follower_child: Option<std::process::Child> = None;
    let result = (|| -> Result<(), String> {
        leader_child = Some(spawn(&leader_addr, "leader", None)?);
        let mut leader = wait_ready(&leader_addr)?;

        let (status, body) = leader
            .request("POST", sessions_target(), envelope(4).as_bytes())
            .map_err(|e| format!("create: {e}"))?;
        if status != 201 {
            return Err(format!("create: status {status}"));
        }
        let id = Json::parse(&String::from_utf8_lossy(&body))
            .ok()
            .and_then(|d| d.get("session")?.as_i64())
            .ok_or("create: no session id")?;
        let migrate = format!("/sessions/{id}/migrate");

        follower_child = Some(spawn(&follower_addr, "follower", Some(&leader_addr))?);
        let mut follower = wait_ready(&follower_addr)?;

        // A caught-up barrier against the leader's own end sequence (the
        // follower's lag gauges freeze between polls).
        let wait_caught_up = |leader: &mut Client, follower: &mut Client| -> Result<(), String> {
            let (status, headers, _) = leader
                .request_full("GET", "/wal/tail?from=1", b"")
                .map_err(|e| format!("leader tail: {e}"))?;
            if status != 200 {
                return Err(format!("leader tail: status {status}"));
            }
            let leader_last = headers
                .iter()
                .find(|(k, _)| k == "x-wal-end-seq")
                .and_then(|(_, v)| v.parse::<u64>().ok())
                .ok_or("leader tail: no x-wal-end-seq header")?
                .saturating_sub(1);
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let caught_up = metric_value(follower, "pgschemad_replication_last_applied_seq")
                    .map(|seq| seq >= leader_last)
                    .unwrap_or(false);
                if caught_up {
                    return Ok(());
                }
                if Instant::now() >= deadline {
                    return Err(format!(
                        "follower did not reach leader seq {leader_last} within 10s"
                    ));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        };

        // Plans — read-only previews, no window opened.
        let (status, body) = leader
            .request(
                "POST",
                &migrate,
                &migrate_request("plan", Some(&breaking_sdl), false),
            )
            .map_err(|e| format!("plan breaking: {e}"))?;
        if status != 200 {
            return Err(format!("plan breaking: status {status}"));
        }
        let plan = Json::parse(&String::from_utf8_lossy(&body))
            .ok()
            .and_then(|d| d.get("plan").cloned())
            .ok_or("plan breaking: no plan member")?;
        if plan.get("compatible") != Some(&Json::Bool(false)) {
            return Err("plan breaking: `endTime @required` must preview as breaking".into());
        }
        if plan
            .get("violations_added")
            .and_then(Json::as_array)
            .is_none_or(|v| v.is_empty())
        {
            return Err("plan breaking: expected a non-empty violation preview".into());
        }
        let (status, body) = leader
            .request(
                "POST",
                &migrate,
                &migrate_request("plan", Some(&compatible_sdl), false),
            )
            .map_err(|e| format!("plan compatible: {e}"))?;
        let compatible_plan = Json::parse(&String::from_utf8_lossy(&body))
            .ok()
            .and_then(|d| d.get("plan")?.get("compatible").cloned());
        if status != 200 || compatible_plan != Some(Json::Bool(true)) {
            return Err("plan compatible: optional `note` must preview as compatible".into());
        }
        if metric_value(&mut leader, "pgschemad_migration_windows_open") != Ok(0) {
            return Err("plans must not open migration windows".into());
        }

        // Open a breaking window and run delta traffic through it.
        let (status, _) = leader
            .request(
                "POST",
                &migrate,
                &migrate_request("begin", Some(&breaking_sdl), false),
            )
            .map_err(|e| format!("begin: {e}"))?;
        if status != 200 {
            return Err(format!("begin: status {status}"));
        }
        if metric_value(&mut leader, "pgschemad_migration_windows_open") != Ok(1) {
            return Err("begin: expected one open migration window".into());
        }
        let graph = sample_graph(4);
        let user = user_ids(&graph)[0];
        for d in 0..2u64 {
            let delta = json::delta_to_json(&toggle_delta(user, d));
            let (status, _) = leader
                .request("POST", &format!("/sessions/{id}/deltas"), delta.as_bytes())
                .map_err(|e| format!("mid-window delta: {e}"))?;
            if status != 200 {
                return Err(format!("mid-window delta: status {status}"));
            }
        }
        // Mid-window, reads still serve the old schema: the follower's
        // replicated report must conform.
        wait_caught_up(&mut leader, &mut follower)?;
        let (status, body) = follower
            .request("GET", &format!("/sessions/{id}/report"), b"")
            .map_err(|e| format!("mid-window follower report: {e}"))?;
        if status != 200 {
            return Err(format!("mid-window follower report: status {status}"));
        }
        let doc = Json::parse(&String::from_utf8_lossy(&body))
            .map_err(|e| format!("mid-window follower report: bad JSON: {e}"))?;
        if doc.get("conforms") != Some(&Json::Bool(true)) {
            return Err("mid-window follower report must still use the old schema".into());
        }

        // The breaking window has regressions (sessions miss `endTime`),
        // so a plain commit is refused.
        let (status, _) = leader
            .request("POST", &migrate, &migrate_request("commit", None, false))
            .map_err(|e| format!("commit: {e}"))?;
        if status != 409 {
            return Err(format!(
                "commit with regressions: expected 409, got {status}"
            ));
        }

        // SIGKILL mid-window; the WAL-logged Begin must re-open it.
        let child = leader_child.as_mut().expect("leader spawned");
        child.kill().map_err(|e| format!("kill leader: {e}"))?;
        let _ = child.wait();
        leader_child = Some(spawn(&leader_addr, "leader", None)?);
        let mut leader = wait_ready(&leader_addr)?;
        if metric_value(&mut leader, "pgschemad_migration_windows_open") != Ok(1) {
            return Err("recovery must re-open the migration window".into());
        }
        let (status, _) = leader
            .request("POST", &migrate, &migrate_request("commit", None, false))
            .map_err(|e| format!("post-recovery commit: {e}"))?;
        if status != 409 {
            return Err(format!(
                "post-recovery commit: regressions survive recovery, expected 409, got {status}"
            ));
        }

        // Force the swap and check the session's report against the
        // four one-shot engine oracles on the session's own graph.
        let (status, _) = leader
            .request("POST", &migrate, &migrate_request("commit", None, true))
            .map_err(|e| format!("force commit: {e}"))?;
        if status != 200 {
            return Err(format!("force commit: status {status}"));
        }
        let (status, session_report) = leader
            .request("GET", &format!("/sessions/{id}/report"), b"")
            .map_err(|e| format!("post-commit report: {e}"))?;
        if status != 200 {
            return Err(format!("post-commit report: status {status}"));
        }
        let doc = Json::parse(&String::from_utf8_lossy(&session_report))
            .map_err(|e| format!("post-commit report: bad JSON: {e}"))?;
        if doc.get("conforms") != Some(&Json::Bool(false)) {
            return Err("post-commit report must be non-conforming under the new schema".into());
        }
        let (status, graph_json) = leader
            .request("GET", &format!("/sessions/{id}/graph"), b"")
            .map_err(|e| format!("post-commit graph: {e}"))?;
        if status != 200 {
            return Err(format!("post-commit graph: status {status}"));
        }
        let mut oneshot = String::new();
        oneshot.push_str("{\"schema\":");
        pg_server::http::push_json_string(&mut oneshot, &breaking_sdl);
        oneshot.push_str(",\"graph\":");
        oneshot.push_str(&String::from_utf8_lossy(&graph_json));
        oneshot.push('}');
        let session_canonical = canonical_engineless(&session_report)?;
        for engine in ["naive", "indexed", "parallel", "incremental"] {
            let (status, body) = leader
                .request(
                    "POST",
                    &format!("/validate?engine={engine}"),
                    oneshot.as_bytes(),
                )
                .map_err(|e| format!("oracle({engine}): {e}"))?;
            if status != 200 {
                return Err(format!("oracle({engine}): status {status}"));
            }
            if canonical_engineless(&body)? != session_canonical {
                return Err(format!(
                    "oracle({engine}): post-commit session report diverges from \
                     a from-scratch validation under the new schema"
                ));
            }
        }

        // A compatible window commits cleanly, and abort closes without
        // swapping.
        let (status, _) = leader
            .request(
                "POST",
                &migrate,
                &migrate_request("begin", Some(&compatible_sdl), false),
            )
            .map_err(|e| format!("compatible begin: {e}"))?;
        if status != 200 {
            return Err(format!("compatible begin: status {status}"));
        }
        let (status, body) = leader
            .request("POST", &migrate, &migrate_request("commit", None, false))
            .map_err(|e| format!("compatible commit: {e}"))?;
        if status != 200 {
            return Err(format!("compatible commit: status {status}"));
        }
        let doc = Json::parse(&String::from_utf8_lossy(&body))
            .map_err(|e| format!("compatible commit: bad JSON: {e}"))?;
        if doc.get("committed") != Some(&Json::Bool(true)) {
            return Err("compatible commit: expected committed:true".into());
        }
        let (status, _) = leader
            .request(
                "POST",
                &migrate,
                &migrate_request("begin", Some(&breaking_sdl), false),
            )
            .map_err(|e| format!("abort begin: {e}"))?;
        if status != 200 {
            return Err(format!("abort begin: status {status}"));
        }
        let (status, _) = leader
            .request("POST", &migrate, &migrate_request("abort", None, false))
            .map_err(|e| format!("abort: {e}"))?;
        if status != 200 {
            return Err(format!("abort: status {status}"));
        }
        if metric_value(&mut leader, "pgschemad_migration_windows_open") != Ok(0) {
            return Err("abort must close the migration window".into());
        }

        // The follower replays the whole history — kills, commits,
        // aborts — and must finish byte-identical, while refusing
        // migrate writes itself.
        wait_caught_up(&mut leader, &mut follower)?;
        let (status, leader_report) = leader
            .request("GET", &format!("/sessions/{id}/report"), b"")
            .map_err(|e| format!("final leader report: {e}"))?;
        if status != 200 {
            return Err(format!("final leader report: status {status}"));
        }
        let (status, follower_report) = follower
            .request("GET", &format!("/sessions/{id}/report"), b"")
            .map_err(|e| format!("final follower report: {e}"))?;
        if status != 200 {
            return Err(format!("final follower report: status {status}"));
        }
        if canonical_report(&leader_report)? != canonical_report(&follower_report)? {
            return Err("follower report diverges from the leader after the migration".into());
        }
        let (status, _) = follower
            .request(
                "POST",
                &migrate,
                &migrate_request("begin", Some(&compatible_sdl), false),
            )
            .map_err(|e| format!("follower migrate: {e}"))?;
        if status != 421 {
            return Err(format!("follower migrate: expected 421, got {status}"));
        }

        println!("migrate-check: ok");
        Ok(())
    })();

    for child in [&mut leader_child, &mut follower_child]
        .into_iter()
        .flatten()
    {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

fn usage() -> ! {
    eprintln!(
        "usage: pgload --addr HOST:PORT [--mode oneshot|session|mixed] \
         [--connections N] [--duration SECS] [--users N] \
         [--engine naive|indexed|parallel|incremental] \
         [--lang sdl|pgschema] \
         [--rate REQS_PER_SEC] [--cluster HOST:PORT,HOST:PORT,...] \
         [--hold CONNECTIONS] [--smoke] \
         [--restart-check PGSCHEMA_BIN] [--failover-check PGSCHEMA_BIN] \
         [--migrate-check PGSCHEMA_BIN]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut mode = Mode::Oneshot;
    let mut connections = 8usize;
    let mut duration = 10u64;
    let mut users = 4usize;
    let mut engine = "indexed".to_owned();
    let mut rate: Option<f64> = None;
    let mut cluster: Option<Ring> = None;
    let mut hold: Option<usize> = None;
    let mut smoke = false;
    let mut restart_check: Option<String> = None;
    let mut failover_check: Option<String> = None;
    let mut migrate_check: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--addr" => addr = value(&mut i),
            "--mode" => {
                mode = match value(&mut i).as_str() {
                    "oneshot" => Mode::Oneshot,
                    "session" => Mode::Session,
                    "mixed" => Mode::Mixed,
                    _ => usage(),
                }
            }
            "--connections" => connections = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--duration" => duration = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--users" => users = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--engine" => engine = value(&mut i),
            "--lang" => {
                let lang: pg_pgschema::SchemaLanguage = match value(&mut i).parse() {
                    Ok(lang) => lang,
                    Err(e) => {
                        eprintln!("pgload: --lang: {e}");
                        usage();
                    }
                };
                USE_PGSCHEMA.store(
                    lang == pg_pgschema::SchemaLanguage::PgSchema,
                    Ordering::Relaxed,
                );
            }
            "--rate" => {
                let r: f64 = value(&mut i).parse().unwrap_or_else(|_| usage());
                if r <= 0.0 || !r.is_finite() {
                    usage();
                }
                rate = Some(r);
            }
            "--cluster" => {
                let nodes: Vec<String> = value(&mut i)
                    .split(',')
                    .map(|n| n.trim().to_owned())
                    .filter(|n| !n.is_empty())
                    .collect();
                if nodes.is_empty() {
                    usage();
                }
                cluster = Some(Ring::new(nodes));
            }
            "--hold" => hold = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--smoke" => smoke = true,
            "--restart-check" => restart_check = Some(value(&mut i)),
            "--failover-check" => failover_check = Some(value(&mut i)),
            "--migrate-check" => migrate_check = Some(value(&mut i)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    if let Some(server_bin) = restart_check {
        if let Err(message) = run_restart_check(&server_bin) {
            eprintln!("restart-check: FAIL: {message}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(server_bin) = failover_check {
        if let Err(message) = run_failover_check(&server_bin) {
            eprintln!("failover-check: FAIL: {message}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(server_bin) = migrate_check {
        if let Err(message) = run_migrate_check(&server_bin) {
            eprintln!("migrate-check: FAIL: {message}");
            std::process::exit(1);
        }
        return;
    }
    if smoke {
        if let Err(message) = run_smoke(&addr) {
            eprintln!("smoke: FAIL: {message}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(count) = hold {
        if let Err(message) = run_hold(&addr, count, duration) {
            eprintln!("hold: FAIL: {message}");
            std::process::exit(1);
        }
        return;
    }
    run_load(
        &addr,
        cluster.as_ref(),
        mode,
        connections,
        duration,
        users,
        &engine,
        rate,
    );
}
