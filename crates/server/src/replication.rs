//! The follower side of WAL-shipping replication.
//!
//! A follower is an ordinary durable server whose WAL is written by one
//! extra thread — the one in this module — instead of by request
//! handlers. The loop polls the leader's `GET /wal/tail?from=<seq>`
//! endpoint from the local store's `tail_cursor`, appends the returned
//! frames verbatim ([`pg_store::Store::append_replicated`] verifies CRCs
//! and sequence contiguity) and applies each decoded record to the live
//! session registry. Because frames are copied byte-for-byte, a
//! follower's log is a physical prefix of the leader's — after a
//! promotion the surviving log needs no rewriting.
//!
//! The protocol is polling, not push: each poll is one bounded
//! chunked-transfer response, so the leader keeps no per-follower state
//! beyond the TCP connection, and a follower that goes away costs the
//! leader nothing. When caught up the loop sleeps
//! [`CAUGHT_UP_POLL`] between polls; when the leader is unreachable it
//! reconnects with exponential backoff from [`BACKOFF_START`] capped at
//! [`BACKOFF_MAX`], resuming from the last durable sequence — duplicate
//! delivery after a reconnect is harmless because both the store append
//! and the registry apply are seq-gated.
//!
//! Promotion (`POST /promote` or SIGHUP) is handled here too: the loop
//! syncs the store, flips the process role to leader and exits. The
//! normative protocol description lives in `docs/replication.md`.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::http::read_response;
use crate::metrics::{
    REPL_STATE_CONNECTING, REPL_STATE_NONE, REPL_STATE_STALLED, REPL_STATE_TAILING,
};
use crate::server::{Ctx, LogFormat};
use crate::signal;

/// Poll cadence while caught up with the leader.
const CAUGHT_UP_POLL: Duration = Duration::from_millis(50);
/// First reconnect delay after losing the leader.
const BACKOFF_START: Duration = Duration::from_millis(100);
/// Reconnect delay cap.
const BACKOFF_MAX: Duration = Duration::from_secs(5);
/// Socket connect/read/write timeout for leader traffic.
const IO_TIMEOUT: Duration = Duration::from_secs(1);
/// Granularity at which sleeps re-check the shutdown and promotion
/// flags, keeping both responsive even mid-backoff.
const SLEEP_SLICE: Duration = Duration::from_millis(50);

/// Fetches the leader's bootstrap snapshot (`GET /wal/snapshot`).
/// Called from [`crate::Server::bind`] before the local store exists.
pub(crate) fn fetch_snapshot(leader: &str) -> io::Result<Vec<u8>> {
    let mut stream = connect(leader)?;
    let request =
        format!("GET /wal/snapshot HTTP/1.1\r\nhost: {leader}\r\nconnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut buf = Vec::new();
    let (status, _, body) = read_response(&mut stream, &mut buf)?;
    if status != 200 {
        return Err(io::Error::other(format!(
            "leader {leader} refused the snapshot request with status {status}: {}",
            String::from_utf8_lossy(&body)
        )));
    }
    Ok(body)
}

fn connect(leader: &str) -> io::Result<TcpStream> {
    let addr = leader
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::other(format!("leader address {leader} did not resolve")))?;
    let stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    Ok(stream)
}

/// Sleeps `total` in [`SLEEP_SLICE`] slices; returns `true` if shutdown
/// or promotion was requested while sleeping.
fn sleep_interruptible(ctx: &Ctx, total: Duration) -> bool {
    let mut remaining = total;
    while remaining > Duration::ZERO {
        if should_stop(ctx) || promotion_requested(ctx) {
            return true;
        }
        let slice = remaining.min(SLEEP_SLICE);
        std::thread::sleep(slice);
        remaining -= slice;
    }
    should_stop(ctx) || promotion_requested(ctx)
}

fn should_stop(ctx: &Ctx) -> bool {
    ctx.shutdown.load(Ordering::Relaxed) || signal::requested()
}

fn promotion_requested(ctx: &Ctx) -> bool {
    ctx.promote.load(Ordering::Relaxed) || signal::promote_requested()
}

fn log(ctx: &Ctx, message: &str) {
    if ctx.log_format != LogFormat::Off {
        eprintln!("replication: {message}");
    }
}

/// The follower thread: tails the leader until shutdown or promotion.
pub(crate) fn run_follower(ctx: Arc<Ctx>) {
    let leader = ctx.follow.clone().expect("follower has a leader address");
    let store = match ctx.registry.store() {
        Some(store) => Arc::clone(store),
        None => {
            // `Server::bind` rejects `--follow` without `--data-dir`.
            log(&ctx, "follower started without a store; not replicating");
            return;
        }
    };
    let repl = &ctx.metrics.replication;
    // Everything below the recovered cursor is already reflected
    // locally (snapshot bootstrap or an earlier run of this follower);
    // the gauge must say so, or a freshly bootstrapped follower that
    // has nothing left to fetch looks like one that never replicated.
    repl.last_applied_seq
        .store(store.tail_cursor().saturating_sub(1), Ordering::Relaxed);
    let mut backoff = BACKOFF_START;
    loop {
        if should_stop(&ctx) {
            break;
        }
        if promotion_requested(&ctx) {
            promote(&ctx, &store);
            return;
        }
        repl.state.store(REPL_STATE_CONNECTING, Ordering::Relaxed);
        repl.reconnects_total.fetch_add(1, Ordering::Relaxed);
        let mut stream = match connect(&leader) {
            Ok(stream) => stream,
            Err(e) => {
                repl.state.store(REPL_STATE_STALLED, Ordering::Relaxed);
                log(
                    &ctx,
                    &format!("leader {leader} unreachable: {e}; retrying in {backoff:?}"),
                );
                if sleep_interruptible(&ctx, backoff) {
                    continue; // re-enter the loop head to stop or promote
                }
                backoff = (backoff * 2).min(BACKOFF_MAX);
                continue;
            }
        };
        backoff = BACKOFF_START;
        let mut buf = Vec::new();
        // One connection, many polls: tail until an error forces a
        // reconnect or a flag ends the loop.
        loop {
            if should_stop(&ctx) {
                return;
            }
            if promotion_requested(&ctx) {
                promote(&ctx, &store);
                return;
            }
            let from = store.tail_cursor();
            let request = format!("GET /wal/tail?from={from} HTTP/1.1\r\nhost: {leader}\r\n\r\n");
            let parts = stream
                .write_all(request.as_bytes())
                .and_then(|()| read_response(&mut stream, &mut buf));
            let (status, headers, body) = match parts {
                Ok(parts) => parts,
                Err(e) => {
                    repl.state.store(REPL_STATE_STALLED, Ordering::Relaxed);
                    log(&ctx, &format!("lost the leader at {leader}: {e}"));
                    break; // reconnect with backoff
                }
            };
            match status {
                200 => {}
                410 => {
                    // The leader compacted past our cursor. Local state
                    // can only fall further behind; re-bootstrapping
                    // would mean discarding this data dir, which is an
                    // operator decision, not an automatic one.
                    repl.state.store(REPL_STATE_STALLED, Ordering::Relaxed);
                    log(
                        &ctx,
                        &format!(
                            "leader compacted past our cursor {from} ({}); \
                             wipe the data dir and restart to re-bootstrap",
                            String::from_utf8_lossy(&body).trim()
                        ),
                    );
                    if sleep_interruptible(&ctx, BACKOFF_MAX) {
                        continue;
                    }
                    continue;
                }
                other => {
                    repl.state.store(REPL_STATE_STALLED, Ordering::Relaxed);
                    log(&ctx, &format!("leader answered /wal/tail with {other}"));
                    break;
                }
            }
            let batch = match store.append_replicated(&body) {
                Ok(batch) => batch,
                Err(e) => {
                    // A sequence gap means this store diverged from the
                    // leader (e.g. it was once a leader itself and took
                    // writes the leader never saw). Retrying cannot
                    // help; stall loudly.
                    repl.state.store(REPL_STATE_STALLED, Ordering::Relaxed);
                    log(&ctx, &format!("refusing leader frames: {e}"));
                    if sleep_interruptible(&ctx, BACKOFF_MAX) {
                        continue;
                    }
                    continue;
                }
            };
            if let Some(reason) = &batch.torn {
                // A frame failed verification mid-batch (truncated or
                // corrupt on the wire). The valid prefix was appended;
                // the next poll re-requests from the new cursor.
                log(&ctx, &format!("partial batch from leader: {reason}"));
            }
            for (seq, record) in batch.records {
                ctx.registry.apply_replicated(seq, record);
                repl.records_applied_total.fetch_add(1, Ordering::Relaxed);
                repl.last_applied_seq.store(seq, Ordering::Relaxed);
            }
            let end_seq = header_u64(&headers, "x-wal-end-seq").unwrap_or(0);
            let remaining = header_u64(&headers, "x-wal-remaining-bytes").unwrap_or(0);
            repl.lag_records.store(
                end_seq.saturating_sub(store.tail_cursor()),
                Ordering::Relaxed,
            );
            repl.lag_bytes.store(remaining, Ordering::Relaxed);
            repl.state.store(REPL_STATE_TAILING, Ordering::Relaxed);
            let caught_up = store.tail_cursor() >= end_seq;
            if caught_up && sleep_interruptible(&ctx, CAUGHT_UP_POLL) {
                continue;
            }
        }
        if sleep_interruptible(&ctx, backoff) {
            continue;
        }
        backoff = (backoff * 2).min(BACKOFF_MAX);
    }
}

/// Promotes this follower to leader: make everything replicated so far
/// durable, then flip the role so the router starts accepting writes.
/// New appends continue the leader's sequence numbering from the local
/// `tail_cursor`.
fn promote(ctx: &Ctx, store: &pg_store::Store) {
    if let Err(e) = store.sync() {
        log(ctx, &format!("sync before promotion failed: {e}"));
    }
    let repl = &ctx.metrics.replication;
    repl.state.store(REPL_STATE_NONE, Ordering::Relaxed);
    repl.lag_records.store(0, Ordering::Relaxed);
    repl.lag_bytes.store(0, Ordering::Relaxed);
    ctx.role_follower.store(false, Ordering::Relaxed);
    log(
        ctx,
        &format!(
            "promoted to leader at seq {} (was following {})",
            store.tail_cursor(),
            ctx.follow.as_deref().unwrap_or("?")
        ),
    );
}

fn header_u64(headers: &[(String, String)], name: &str) -> Option<u64> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_lookup_parses_numbers() {
        let headers = vec![
            ("x-wal-end-seq".to_owned(), "17".to_owned()),
            ("x-wal-remaining-bytes".to_owned(), "bogus".to_owned()),
        ];
        assert_eq!(header_u64(&headers, "x-wal-end-seq"), Some(17));
        assert_eq!(header_u64(&headers, "x-wal-remaining-bytes"), None);
        assert_eq!(header_u64(&headers, "absent"), None);
    }
}
