//! docs/replication.md is the *normative* protocol spec: its frame
//! layout, record kinds, bounds and file naming tables are parsed here
//! and compared against the implementation's constants
//! (`pg_store::wire`). Drift in either direction — code changed without
//! the spec, or spec edited away from the code — fails the build.

use pg_store::wire;

fn spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/replication.md");
    std::fs::read_to_string(path).expect("docs/replication.md exists")
}

/// The rows of the first markdown table following the `heading` line:
/// each row is its `|`-separated cells, trimmed, header and `|---|`
/// separator rows excluded.
fn table_after<'a>(text: &'a str, heading: &str) -> Vec<Vec<&'a str>> {
    let mut lines = text.lines();
    lines
        .by_ref()
        .find(|l| l.trim() == heading)
        .unwrap_or_else(|| panic!("spec has a `{heading}` heading"));
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in lines {
        let line = line.trim();
        if line.starts_with('|') {
            in_table = true;
            let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
            // Skip the |---|---| separator row.
            if cells.iter().all(|c| c.chars().all(|ch| ch == '-')) {
                continue;
            }
            rows.push(cells);
        } else if in_table {
            break;
        }
    }
    assert!(
        rows.len() > 1,
        "no table found under `{heading}` in the spec"
    );
    rows.remove(0); // header row
    rows
}

fn field_row<'a>(rows: &'a [Vec<&'a str>], field: &str) -> &'a Vec<&'a str> {
    rows.iter()
        .find(|r| r.get(2) == Some(&field))
        .unwrap_or_else(|| panic!("spec frame table has a `{field}` row"))
}

#[test]
fn frame_layout_table_matches_wire_constants() {
    let text = spec_text();
    let rows = table_after(&text, "## Frame layout");

    let check = |field: &str, offset: usize, size: usize| {
        let row = field_row(&rows, field);
        assert_eq!(
            row[0].parse::<usize>().ok(),
            Some(offset),
            "spec offset of `{field}`"
        );
        assert_eq!(
            row[1].parse::<usize>().ok(),
            Some(size),
            "spec size of `{field}`"
        );
    };
    check("payload_len", wire::FRAME_LEN_OFFSET, wire::FRAME_LEN_BYTES);
    check("crc32", wire::FRAME_CRC_OFFSET, wire::FRAME_CRC_BYTES);
    check("seq", wire::FRAME_SEQ_OFFSET, wire::FRAME_SEQ_BYTES);
    check("kind", wire::FRAME_KIND_OFFSET, wire::FRAME_KIND_BYTES);

    let body = field_row(&rows, "body");
    assert_eq!(
        body[0].parse::<usize>().ok(),
        Some(wire::FRAME_BODY_OFFSET),
        "spec offset of `body`"
    );
    // The body row's size is the expression `payload_len − N` where N
    // is seq + kind — the minimum payload.
    assert_eq!(
        body[1],
        format!("payload_len − {}", wire::MIN_PAYLOAD_BYTES),
        "spec body size expression"
    );

    // The seq row states where numbering starts.
    assert!(
        field_row(&rows, "seq")[3].contains("first seq is 1"),
        "spec states the first sequence number"
    );
}

#[test]
fn payload_bounds_match_wire_constants() {
    let text = spec_text();
    let rows = table_after(&text, "## Frame layout");
    // The bounds table is the second table in the section; re-scan from
    // the section start past the first table.
    let section = text.split("## Frame layout").nth(1).unwrap();
    let bounds: Vec<(String, u64)> = section
        .lines()
        .filter(|l| l.trim_start().starts_with('|'))
        .filter_map(|l| {
            let cells: Vec<&str> = l
                .trim()
                .trim_matches('|')
                .split('|')
                .map(str::trim)
                .collect();
            Some((cells.first()?.to_string(), cells.get(1)?.parse().ok()?))
        })
        .collect();
    let lookup = |name: &str| -> u64 {
        bounds
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("spec bounds table has `{name}`"))
    };
    assert_eq!(lookup("MIN_PAYLOAD_BYTES"), wire::MIN_PAYLOAD_BYTES as u64);
    assert_eq!(lookup("MAX_PAYLOAD_BYTES"), wire::MAX_PAYLOAD_BYTES as u64);
    // And the frame table's minimum is consistent with itself.
    assert_eq!(
        rows.len(),
        5,
        "frame table lists exactly the five frame fields"
    );
}

#[test]
fn record_kind_table_matches_wire_constants() {
    let text = spec_text();
    let rows = table_after(&text, "## Record kinds");
    let kind_of = |name: &str| -> u8 {
        rows.iter()
            .find(|r| r.get(1) == Some(&name))
            .and_then(|r| r[0].parse().ok())
            .unwrap_or_else(|| panic!("spec kinds table has `{name}`"))
    };
    assert_eq!(kind_of("Create"), wire::KIND_CREATE);
    assert_eq!(kind_of("Delta"), wire::KIND_DELTA);
    assert_eq!(kind_of("Delete"), wire::KIND_DELETE);
    assert_eq!(kind_of("SchemaChange"), wire::KIND_SCHEMA);
    assert_eq!(rows.len(), 4, "spec lists exactly four record kinds");
    assert_eq!(
        wire::KIND_MAX,
        wire::KIND_SCHEMA,
        "SchemaChange is the newest kind the spec documents"
    );
}

#[test]
fn schema_change_body_table_matches_the_record_codec() {
    let text = spec_text();
    let rows = table_after(&text, "### SchemaChange body");
    let check = |field: &str, offset: usize| {
        let row = rows
            .iter()
            .find(|r| r.get(2) == Some(&field))
            .unwrap_or_else(|| panic!("SchemaChange body table has a `{field}` row"));
        assert_eq!(
            row[0].parse::<usize>().ok(),
            Some(offset),
            "spec offset of SchemaChange `{field}`"
        );
    };
    // The codec packs [session u64][phase u8][sdl_len u32][sdl];
    // the offsets below are fixed by those widths.
    check("session", 0);
    check("phase", 8);
    check("sdl_len", 9);
    check("sdl", 13);

    // The phase byte values in the spec match MigrationPhase's wire
    // values (Begin/Commit/Abort survive an encode/decode round-trip
    // in record.rs tests; here we pin the documented numerals).
    let phase_row = rows.iter().find(|r| r.get(2) == Some(&"phase")).unwrap();
    for needle in ["1 = Begin", "2 = Commit", "3 = Abort"] {
        assert!(
            phase_row[3].contains(needle),
            "spec phase encoding names `{needle}`"
        );
    }
}

#[test]
fn language_tag_rule_matches_the_pgschema_pragma() {
    let text = spec_text();
    // The spec's language-tag paragraph must quote the exact pragma
    // prefix the PG-Schema frontend writes into lowered SDL, so the
    // replayed bytes and the documented bytes cannot drift apart.
    assert!(
        text.contains(pg_pgschema::PRAGMA_PREFIX),
        "spec quotes the schema-language pragma prefix `{}`",
        pg_pgschema::PRAGMA_PREFIX
    );
    assert!(
        text.contains("# schema-language: pgschema strict|loose"),
        "spec spells out the pragma's value space"
    );
    // And the quoted shape really is what the frontend emits and
    // re-derives: pragma_line → pragma_of round-trips for both modes.
    for mode in [pg_pgschema::TypeMode::Strict, pg_pgschema::TypeMode::Loose] {
        let line = pg_pgschema::pragma_line(mode);
        assert!(line.starts_with(pg_pgschema::PRAGMA_PREFIX));
        assert_eq!(
            pg_pgschema::pragma_of(&line),
            Some((pg_pgschema::SchemaLanguage::PgSchema, mode)),
            "pragma round-trip for {mode:?}"
        );
    }
    // An untagged (plain SDL) body carries no pragma.
    assert_eq!(pg_pgschema::pragma_of("type A { x: Int }"), None);
}

#[test]
fn unknown_kind_rule_is_documented() {
    let text = spec_text();
    // The forward-compat rule (never truncate at an unknown kind) must
    // quote the implementation's error message so operators can grep
    // their way from a log line back to this spec.
    assert!(
        text.contains("unknown record kind N (newer writer?)"),
        "spec quotes the unknown-kind error shape"
    );
    assert!(
        text.contains("### Unknown kinds (forward compatibility)"),
        "spec has the forward-compatibility subsection"
    );
}

#[test]
fn snapshot_container_table_matches_wire_constants() {
    let text = spec_text();
    let rows = table_after(&text, "## Snapshot format");

    let check = |field: &str, offset: usize, size: usize| {
        let row = field_row(&rows, field);
        assert_eq!(
            row[0].parse::<usize>().ok(),
            Some(offset),
            "spec offset of snapshot `{field}`"
        );
        assert_eq!(
            row[1].parse::<usize>().ok(),
            Some(size),
            "spec size of snapshot `{field}`"
        );
    };
    check("magic", 0, wire::SNAPSHOT_MAGIC_V2.len());
    check("base_seq", 4, 8);
    check("next_session_id", 12, 8);
    check("count", 20, 4);
    assert_eq!(
        field_row(&rows, "sessions")[0].parse::<usize>().ok(),
        Some(24),
        "session entries start right after the container header"
    );

    // The magic row names both the current and the legacy magic.
    let magic_v2 = String::from_utf8(wire::SNAPSHOT_MAGIC_V2.to_vec()).unwrap();
    let magic_v1 = String::from_utf8(wire::SNAPSHOT_MAGIC.to_vec()).unwrap();
    let notes = field_row(&rows, "magic")[3];
    assert!(
        notes.contains(&format!("`{magic_v2}`")) && notes.contains(&format!("`{magic_v1}`")),
        "spec magic row names `{magic_v2}` and legacy `{magic_v1}`: {notes}"
    );

    // The alignment guarantee is stated with the frame-header width
    // that makes payload- and file-relative alignment coincide.
    assert_eq!(wire::FRAME_HEADER_BYTES % wire::SNAPSHOT_GRAPH_ALIGN, 0);
    assert!(
        text.contains("8-byte *file* offset"),
        "spec states the file-offset alignment of embedded images"
    );
}

#[test]
fn embedded_graph_image_table_matches_pgcs_constants() {
    let text = spec_text();
    let rows = table_after(&text, "### Embedded graph images");
    let value_of = |field: &str| -> &str {
        rows.iter()
            .find(|r| r.first() == Some(&field))
            .map(|r| r[1])
            .unwrap_or_else(|| panic!("embedded-image table has `{field}`"))
    };
    let magic = String::from_utf8(wire::PGCS_MAGIC.to_vec()).unwrap();
    assert_eq!(value_of("magic").trim_matches('`'), magic);
    assert_eq!(
        value_of("version").parse::<u32>().ok(),
        Some(wire::PGCS_VERSION)
    );
    assert_eq!(
        value_of("header length").parse::<usize>().ok(),
        Some(wire::PGCS_HEADER_LEN)
    );
    assert_eq!(
        value_of("section count").parse::<usize>().ok(),
        Some(wire::PGCS_SECTION_COUNT)
    );
    assert_eq!(
        value_of("alignment").parse::<usize>().ok(),
        Some(wire::SNAPSHOT_GRAPH_ALIGN)
    );
}

#[test]
fn snapshot_version_rule_is_documented() {
    let text = spec_text();
    // The reader rule quotes the implementation's error message so an
    // operator can grep a refused bootstrap back to this spec.
    assert!(
        text.contains("unsupported snapshot version"),
        "spec quotes the unsupported-version error shape"
    );
    assert!(
        text.contains("### Version handling"),
        "spec has the snapshot version-handling subsection"
    );
    // The corruption rule (fall back a generation) and the version rule
    // (refuse, mutate nothing) are stated as distinct classes.
    assert!(
        text.contains("falls back\n  to the next older generation"),
        "spec states the corruption fallback rule"
    );
}

#[test]
fn file_naming_matches_wire_constants() {
    let text = spec_text();
    let rows = table_after(&text, "## Files and naming");
    let pattern_of = |file: &str| -> &str {
        rows.iter()
            .find(|r| r.first() == Some(&file))
            .map(|r| r[1].trim_matches('`'))
            .unwrap_or_else(|| panic!("spec files table has `{file}`"))
    };
    assert_eq!(
        pattern_of("WAL segment"),
        format!(
            "{}{{first_seq:0{}}}{}",
            wire::SEGMENT_PREFIX,
            wire::SEGMENT_SEQ_DIGITS,
            wire::SEGMENT_SUFFIX
        )
    );
    assert_eq!(
        pattern_of("snapshot"),
        format!(
            "{}{{generation:0{}}}{}",
            wire::SNAPSHOT_PREFIX,
            wire::SNAPSHOT_GENERATION_DIGITS,
            wire::SNAPSHOT_SUFFIX
        )
    );
    // The snapshot magic is stated in prose right below the table.
    let magic = String::from_utf8(wire::SNAPSHOT_MAGIC.to_vec()).unwrap();
    assert!(
        text.contains(&format!("`{magic}`")),
        "spec names the snapshot magic {magic}"
    );
}
