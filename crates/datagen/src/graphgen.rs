//! Conforming random graph generation.
//!
//! [`GraphGen`] builds Property Graphs that strongly satisfy a given
//! schema by construction-plus-repair:
//!
//! 1. create `nodes_per_type` nodes per object type, filling required
//!    attributes (and key fields with per-node-unique values);
//! 2. add relationship edges source-by-source, respecting non-list
//!    cardinality, `@distinct`, `@noLoops` and `@uniqueForTarget` (a
//!    global used-target set per constrained field);
//! 3. repair pass for `@requiredForTarget`: give every obligated target
//!    an incoming edge from a legal source.
//!
//! The result is validated; [`GraphGen::generate_conforming`] retries
//! with fresh sub-seeds if a rare repair dead-end slips through.

use gql_schema::{BuiltinScalar, ScalarInfo, TypeId, WrappedType};
use pg_schema::{PgSchema, RelationshipDef};
use pgraph::{NodeId, PropertyGraph, Value};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::{HashMap, HashSet};

/// Parameters for [`GraphGen`].
#[derive(Debug, Clone, Copy)]
pub struct GraphGenParams {
    /// Nodes created per object type.
    pub nodes_per_type: usize,
    /// Maximum edges per (node, list-relationship).
    pub max_fanout: usize,
    /// Probability of filling an optional attribute.
    pub p_optional_attr: f64,
    /// Probability of an optional (non-required) relationship edge.
    pub p_optional_edge: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphGenParams {
    fn default() -> Self {
        GraphGenParams {
            nodes_per_type: 10,
            max_fanout: 3,
            p_optional_attr: 0.5,
            p_optional_edge: 0.5,
            seed: 0,
        }
    }
}

/// The conforming-graph generator.
pub struct GraphGen<'s> {
    schema: &'s PgSchema,
    params: GraphGenParams,
}

impl<'s> GraphGen<'s> {
    /// Creates a generator for `schema`.
    pub fn new(schema: &'s PgSchema, params: GraphGenParams) -> Self {
        GraphGen { schema, params }
    }

    /// Generates one graph (best effort; see
    /// [`GraphGen::generate_conforming`] for the validating variant).
    pub fn generate(&self) -> PropertyGraph {
        self.generate_seeded(self.params.seed)
    }

    /// Generates a graph and validates it, retrying with derived seeds.
    /// Returns `None` if `attempts` runs out — in practice only for
    /// schemas whose obligations are globally unsatisfiable.
    pub fn generate_conforming(&self, attempts: usize) -> Option<PropertyGraph> {
        for i in 0..attempts {
            let g = self.generate_seeded(self.params.seed.wrapping_add(i as u64));
            if pg_schema::strongly_satisfies(&g, self.schema) {
                return Some(g);
            }
        }
        None
    }

    fn generate_seeded(&self, seed: u64) -> PropertyGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = self.schema.schema();
        let mut g = PropertyGraph::new();
        let mut uniq = 0usize;

        // 1. Nodes + attributes.
        let mut by_type: HashMap<TypeId, Vec<NodeId>> = HashMap::new();
        let object_types: Vec<TypeId> = s.object_types().collect();
        for &t in &object_types {
            for _ in 0..self.params.nodes_per_type {
                let id = g.add_node(s.type_name(t).to_owned());
                by_type.entry(t).or_default().push(id);
                self.fill_attributes(&mut g, id, t, &mut uniq, &mut rng);
            }
        }

        // Effective directive flags per (source type, field): union over
        // all sites whose type covers the source type.
        let eff = |t: TypeId, rel: &RelationshipDef| -> RelFlags {
            let mut flags = RelFlags {
                distinct: rel.distinct,
                no_loops: rel.no_loops,
                unique_for_target: rel.unique_for_target,
            };
            for site in self.schema.constraint_sites() {
                if site.rel.name == rel.name && gql_schema::subtype::named_subtype(s, t, site.site)
                {
                    flags.distinct |= site.rel.distinct;
                    flags.no_loops |= site.rel.no_loops;
                    flags.unique_for_target |= site.rel.unique_for_target;
                }
            }
            flags
        };

        // 2. Source-driven edges.
        let mut used_targets: HashMap<String, HashSet<NodeId>> = HashMap::new();
        for &t in &object_types {
            let rels: Vec<RelationshipDef> = self.schema.relationships(t).to_vec();
            for rel in &rels {
                let flags = eff(t, rel);
                let targets = self.target_pool(&by_type, rel);
                for &v in by_type.get(&t).map(Vec::as_slice).unwrap_or(&[]) {
                    let wants_edges = rel.required || rng.gen_bool(self.params.p_optional_edge);
                    let want = match (wants_edges, rel.multi) {
                        (false, _) => 0,
                        (true, false) => 1,
                        (true, true) => rng.gen_range(1..=self.params.max_fanout),
                    };
                    self.add_edges(
                        &mut g,
                        v,
                        rel,
                        &flags,
                        want,
                        &targets,
                        &mut used_targets,
                        &mut uniq,
                        &mut rng,
                    );
                }
            }
        }

        // 3. Repair @requiredForTarget obligations.
        for site in self.schema.constraint_sites().to_vec() {
            let rel = &site.rel;
            if !rel.required_for_target {
                continue;
            }
            let obligated: Vec<NodeId> = g
                .nodes()
                .filter(|n| self.schema.label_subtype_wrapped(n.label(), &rel.ty))
                .map(|n| n.id)
                .collect();
            for w in obligated {
                let has = g.in_edges(w).any(|e| {
                    e.label() == rel.name
                        && self
                            .schema
                            .label_subtype(g.node_label(e.source()).unwrap_or(""), site.site)
                });
                if has {
                    continue;
                }
                // Pick a legal source below the site type.
                let sources: Vec<NodeId> = g
                    .nodes()
                    .filter(|n| self.schema.label_subtype(n.label(), site.site))
                    .map(|n| n.id)
                    .collect();
                for &v in &sources {
                    if v == w && rel.no_loops {
                        continue;
                    }
                    let src_label = g.node_label(v).unwrap().to_owned();
                    let Some(v_rel) = self.schema.relationship(&src_label, &rel.name) else {
                        continue;
                    };
                    // Respect the source's own cardinality.
                    if !v_rel.multi && g.out_edges(v).any(|e| e.label() == rel.name) {
                        continue;
                    }
                    let e = g.add_edge(v, w, rel.name.clone()).expect("nodes exist");
                    self.fill_edge_props(&mut g, e, v_rel, &mut uniq);
                    break;
                }
            }
        }
        g
    }

    fn target_pool(
        &self,
        by_type: &HashMap<TypeId, Vec<NodeId>>,
        rel: &RelationshipDef,
    ) -> Vec<NodeId> {
        let s = self.schema.schema();
        let mut out = Vec::new();
        for (&t, nodes) in by_type {
            if gql_schema::subtype::named_subtype(s, t, rel.target_base) {
                out.extend_from_slice(nodes);
            }
        }
        out.sort();
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn add_edges(
        &self,
        g: &mut PropertyGraph,
        v: NodeId,
        rel: &RelationshipDef,
        flags: &RelFlags,
        want: usize,
        targets: &[NodeId],
        used_targets: &mut HashMap<String, HashSet<NodeId>>,
        uniq: &mut usize,
        rng: &mut StdRng,
    ) {
        let mut chosen: Vec<NodeId> = Vec::new();
        let mut pool: Vec<NodeId> = targets.to_vec();
        pool.shuffle(rng);
        for w in pool {
            if chosen.len() >= want {
                break;
            }
            if flags.no_loops && w == v {
                continue;
            }
            if flags.distinct && chosen.contains(&w) {
                continue;
            }
            if flags.unique_for_target
                && used_targets
                    .get(&rel.name)
                    .is_some_and(|set| set.contains(&w))
            {
                continue;
            }
            chosen.push(w);
            if flags.unique_for_target {
                used_targets.entry(rel.name.clone()).or_default().insert(w);
            }
        }
        for w in chosen {
            let e = g.add_edge(v, w, rel.name.clone()).expect("nodes exist");
            self.fill_edge_props(g, e, rel, uniq);
        }
    }

    fn fill_edge_props(
        &self,
        g: &mut PropertyGraph,
        e: pgraph::EdgeId,
        rel: &RelationshipDef,
        uniq: &mut usize,
    ) {
        for ep in &rel.edge_props {
            if ep.mandatory {
                *uniq += 1;
                g.set_edge_property(e, ep.name.clone(), self.value_for(&ep.ty, *uniq));
            }
        }
    }

    fn fill_attributes(
        &self,
        g: &mut PropertyGraph,
        id: NodeId,
        t: TypeId,
        uniq: &mut usize,
        rng: &mut StdRng,
    ) {
        let s = self.schema.schema();
        // Required attributes from every covering type.
        let owners: Vec<TypeId> = s
            .object_types()
            .chain(s.interface_types())
            .filter(|&o| gql_schema::subtype::named_subtype(s, t, o))
            .collect();
        let mut required: HashSet<String> = HashSet::new();
        for &o in &owners {
            for attr in self.schema.attributes(o) {
                if attr.required {
                    required.insert(attr.name.clone());
                }
            }
        }
        // Key fields are always filled (uniquely).
        for key in self.schema.keys() {
            if gql_schema::subtype::named_subtype(s, t, key.site) {
                required.extend(key.fields.iter().cloned());
            }
        }
        for attr in self.schema.attributes(t).to_vec() {
            let fill = required.contains(&attr.name) || rng.gen_bool(self.params.p_optional_attr);
            if fill {
                *uniq += 1;
                g.set_node_property(id, attr.name.clone(), self.value_for(&attr.ty, *uniq));
            }
        }
    }

    fn value_for(&self, ty: &WrappedType, uniq: usize) -> Value {
        let s = self.schema.schema();
        let scalar = match s.scalar_info(ty.base) {
            Some(ScalarInfo::Builtin(b)) => match b {
                BuiltinScalar::Int => Value::Int((uniq as i64) % (i32::MAX as i64)),
                BuiltinScalar::Float => Value::Float(uniq as f64 * 0.5),
                BuiltinScalar::String => Value::String(format!("s{uniq}")),
                BuiltinScalar::Boolean => Value::Bool(uniq.is_multiple_of(2)),
                BuiltinScalar::Id => Value::Id(format!("id{uniq}")),
            },
            Some(ScalarInfo::Enum(symbols)) if !symbols.is_empty() => {
                Value::Enum(symbols[uniq % symbols.len()].clone())
            }
            _ => Value::String(format!("custom{uniq}")),
        };
        if ty.is_list() {
            Value::List(vec![scalar])
        } else {
            scalar
        }
    }
}

struct RelFlags {
    distinct: bool,
    no_loops: bool,
    unique_for_target: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemagen::{social_schema, SchemaGen, SchemaGenParams};

    #[test]
    fn social_graphs_conform() {
        let schema = PgSchema::parse(social_schema()).unwrap();
        for seed in 0..5 {
            let gen = GraphGen::new(
                &schema,
                GraphGenParams {
                    seed,
                    nodes_per_type: 20,
                    ..Default::default()
                },
            );
            let g = gen.generate_conforming(3).expect("social graph generable");
            assert_eq!(g.node_count(), 60);
            assert!(g.edge_count() > 0);
        }
    }

    #[test]
    fn benchmarkable_random_schemas_generate_first_try() {
        for seed in 0..10 {
            let sdl = SchemaGen::new(SchemaGenParams::benchmarkable(5, seed)).generate();
            let schema = PgSchema::parse(&sdl).unwrap();
            let gen = GraphGen::new(
                &schema,
                GraphGenParams {
                    seed,
                    nodes_per_type: 8,
                    ..Default::default()
                },
            );
            let g = gen.generate();
            let report = pg_schema::validate(&g, &schema, &Default::default());
            assert!(report.conforms(), "seed {seed}:\n{report}\n{sdl}");
        }
    }

    #[test]
    fn generation_is_reproducible_and_scales() {
        let schema = PgSchema::parse(social_schema()).unwrap();
        let p = GraphGenParams {
            nodes_per_type: 50,
            ..Default::default()
        };
        let a = GraphGen::new(&schema, p).generate();
        let b = GraphGen::new(&schema, p).generate();
        assert_eq!(a, b);
        assert_eq!(a.node_count(), 150);
    }

    #[test]
    fn required_for_target_schemas_are_repaired() {
        let schema = PgSchema::parse(
            r#"
            type Publisher { published: [Book] @requiredForTarget }
            type Book { title: String! @required }
            "#,
        )
        .unwrap();
        let gen = GraphGen::new(
            &schema,
            GraphGenParams {
                nodes_per_type: 6,
                ..Default::default()
            },
        );
        let g = gen.generate_conforming(5).expect("repairable");
        // Every book got a publisher.
        for b in g.nodes().filter(|n| n.label() == "Book") {
            assert!(g.in_edges(b.id).any(|e| e.label() == "published"));
        }
    }
}
