//! Bounded finite-model search.
//!
//! The paper's satisfiability notion quantifies over Property Graphs,
//! which are finite. [`find_model`] decides, for a given size `k`, whether
//! a strongly-satisfying graph with exactly `k` nodes and a node of the
//! queried type exists — by encoding the question propositionally and
//! handing it to the `dpll` solver — and, if so, **constructs the
//! witness**.
//!
//! The encoding covers exactly the rules that constrain graph *structure*:
//! SS1/SS4 (typed nodes, justified edges), WS3 (target types), WS4
//! (non-list cardinality), DS2 (`@noLoops`), DS3 (`@uniqueForTarget`),
//! DS4 (`@requiredForTarget`), DS6 (required edges). The remaining rules
//! never affect satisfiability (paper, proof of Theorem 3): `@distinct`
//! holds in any simple graph (and any multigraph model can be collapsed
//! to a simple one), and all property rules (WS1/WS2/DS5/DS7/SS2/SS3) are
//! satisfied by the witness builder, which fills required properties with
//! fresh values — mirroring the paper's assumption that scalar value
//! spaces are infinite. (For *finite* value spaces — `Boolean`, enums —
//! keyed types with more nodes than values are a documented corner the
//! builder cannot fix; the built witness is validated by callers in
//! tests.)

use std::collections::{BTreeMap, BTreeSet};

use dpll::{Cnf, Lit};
use gql_schema::{BuiltinScalar, ScalarInfo, TypeId, WrappedType};
use pg_schema::PgSchema;
use pgraph::{PropertyGraph, Value};

/// Options for the finite-model search (exposed for the ablation
/// benchmark in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct FiniteSearchOptions {
    /// Emit the node-renaming symmetry-breaking clauses (non-decreasing
    /// type indices). Disabling this is exponentially slower on UNSAT
    /// instances — the ablation of DESIGN.md.
    pub symmetry_breaking: bool,
}

impl Default for FiniteSearchOptions {
    fn default() -> Self {
        FiniteSearchOptions {
            symmetry_breaking: true,
        }
    }
}

/// Searches for a strongly-satisfying Property Graph with exactly `k`
/// nodes containing at least one node labelled `ot_name`.
pub fn find_model(schema: &PgSchema, ot_name: &str, k: usize) -> Option<PropertyGraph> {
    find_model_with_options(schema, ot_name, k, &FiniteSearchOptions::default())
}

/// [`find_model`] with explicit search options.
pub fn find_model_with_options(
    schema: &PgSchema,
    ot_name: &str,
    k: usize,
    options: &FiniteSearchOptions,
) -> Option<PropertyGraph> {
    let enc = Encoding::build(schema, ot_name, k, options)?;
    // CDCL is the production solver; the plain DPLL baseline remains
    // available for the solver-ablation experiment.
    let model = dpll::solve_cdcl(&enc.cnf)?;
    Some(enc.decode(schema, &model))
}

struct Encoding {
    cnf: Cnf,
    k: usize,
    object_types: Vec<TypeId>,
    field_names: Vec<String>,
    /// var(type) = v * |OT| + t
    type_base: usize,
    /// var(edge) = edge_base + ((v * k) + w) * |F| + f
    edge_base: usize,
}

impl Encoding {
    fn type_var(&self, v: usize, t: usize) -> usize {
        self.type_base + v * self.object_types.len() + t
    }

    fn edge_var(&self, v: usize, f: usize, w: usize) -> usize {
        self.edge_base + (v * self.k + w) * self.field_names.len() + f
    }

    fn build(
        schema: &PgSchema,
        ot_name: &str,
        k: usize,
        options: &FiniteSearchOptions,
    ) -> Option<Encoding> {
        let s = schema.schema();
        let queried = schema.label_type(ot_name)?;
        if !s.is_object(queried) {
            return None;
        }
        let object_types: Vec<TypeId> = s.object_types().collect();
        let owners: Vec<TypeId> = s.object_types().chain(s.interface_types()).collect();
        let mut field_set: BTreeSet<String> = BTreeSet::new();
        for &t in &owners {
            for rel in schema.relationships(t) {
                field_set.insert(rel.name.clone());
            }
        }
        let field_names: Vec<String> = field_set.into_iter().collect();
        let field_ix: BTreeMap<&str, usize> = field_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();

        let n_ot = object_types.len();
        let n_f = field_names.len().max(1);
        let type_base = 0;
        let edge_base = k * n_ot;
        let base_vars = edge_base + k * k * field_names.len();

        // Auxiliary vars for `edge(v,f,w) ∧ source-below-site`, one block
        // per constraint site needing them (DS3/DS4).
        let mut next_var = base_vars;
        let mut enc = Encoding {
            cnf: Cnf::new(base_vars),
            k,
            object_types: object_types.clone(),
            field_names: field_names.clone(),
            type_base,
            edge_base,
        };
        let mut clauses: Vec<Vec<Lit>> = Vec::new();

        // Each node has exactly one object type.
        for v in 0..k {
            clauses.push((0..n_ot).map(|t| Lit::pos(enc.type_var(v, t))).collect());
            for t1 in 0..n_ot {
                for t2 in (t1 + 1)..n_ot {
                    clauses.push(vec![
                        Lit::neg(enc.type_var(v, t1)),
                        Lit::neg(enc.type_var(v, t2)),
                    ]);
                }
            }
        }
        // Node 0 is the queried type.
        let queried_ix = object_types.iter().position(|&t| t == queried)?;
        clauses.push(vec![Lit::pos(enc.type_var(0, queried_ix))]);

        // Symmetry breaking: nodes 1..k are interchangeable, so demand
        // non-decreasing type indices — any model can be permuted into
        // this form. Collapses the k! node-renaming symmetry that
        // otherwise drowns DPLL on UNSAT instances.
        if options.symmetry_breaking {
            for v in 1..k.saturating_sub(1) {
                for t1 in 0..n_ot {
                    for t2 in 0..t1 {
                        clauses.push(vec![
                            Lit::neg(enc.type_var(v, t1)),
                            Lit::neg(enc.type_var(v + 1, t2)),
                        ]);
                    }
                }
            }
        }

        // Per-object-type relationship constraints.
        // Precompute, per (object type, field): Some(rel) if declared.
        let rel_of = |t: TypeId, f: &str| schema.relationships(t).iter().find(|r| r.name == f);

        for (t_ix, &t) in object_types.iter().enumerate() {
            for (f_ix, f) in field_names.iter().enumerate() {
                match rel_of(t, f) {
                    None => {
                        // SS4: a t-node has no f-edges.
                        for v in 0..k {
                            for w in 0..k {
                                clauses.push(vec![
                                    Lit::neg(enc.type_var(v, t_ix)),
                                    Lit::neg(enc.edge_var(v, f_ix, w)),
                                ]);
                            }
                        }
                    }
                    Some(rel) => {
                        // WS3: targets are below basetype.
                        let target_ok: Vec<usize> = object_types
                            .iter()
                            .enumerate()
                            .filter(|(_, &ot2)| {
                                gql_schema::subtype::named_subtype(s, ot2, rel.target_base)
                            })
                            .map(|(i, _)| i)
                            .collect();
                        for v in 0..k {
                            for w in 0..k {
                                let mut c = vec![
                                    Lit::neg(enc.type_var(v, t_ix)),
                                    Lit::neg(enc.edge_var(v, f_ix, w)),
                                ];
                                c.extend(
                                    target_ok
                                        .iter()
                                        .map(|&s_ix| Lit::pos(enc.type_var(w, s_ix))),
                                );
                                clauses.push(c);
                            }
                        }
                        // WS4: non-list → at most one f-edge.
                        if !rel.multi {
                            for v in 0..k {
                                for w1 in 0..k {
                                    for w2 in (w1 + 1)..k {
                                        clauses.push(vec![
                                            Lit::neg(enc.type_var(v, t_ix)),
                                            Lit::neg(enc.edge_var(v, f_ix, w1)),
                                            Lit::neg(enc.edge_var(v, f_ix, w2)),
                                        ]);
                                    }
                                }
                            }
                        }
                        // DS6: required → at least one f-edge.
                        if rel.required {
                            for v in 0..k {
                                let mut c = vec![Lit::neg(enc.type_var(v, t_ix))];
                                c.extend((0..k).map(|w| Lit::pos(enc.edge_var(v, f_ix, w))));
                                clauses.push(c);
                            }
                        }
                    }
                }
            }
        }

        // Constraint sites (DS2, DS3, DS4) — sources range over object
        // types below the site type.
        for site in schema.constraint_sites() {
            let rel = &site.rel;
            let Some(&f_ix) = field_ix.get(rel.name.as_str()) else {
                continue;
            };
            let below_site: Vec<usize> = object_types
                .iter()
                .enumerate()
                .filter(|(_, &ot2)| gql_schema::subtype::named_subtype(s, ot2, site.site))
                .map(|(i, _)| i)
                .collect();
            if rel.no_loops {
                for v in 0..k {
                    for &t_ix in &below_site {
                        clauses.push(vec![
                            Lit::neg(enc.type_var(v, t_ix)),
                            Lit::neg(enc.edge_var(v, f_ix, v)),
                        ]);
                    }
                }
            }
            if rel.unique_for_target || rel.required_for_target {
                // aux(v, w) ↔ edge(v, f, w) ∧ type(v) ⊑ site.
                let aux_base = next_var;
                next_var += k * k;
                let aux = |v: usize, w: usize| aux_base + v * k + w;
                for v in 0..k {
                    for w in 0..k {
                        // aux → edge
                        clauses.push(vec![
                            Lit::neg(aux(v, w)),
                            Lit::pos(enc.edge_var(v, f_ix, w)),
                        ]);
                        // aux → ⋁ type(v) below site
                        let mut c = vec![Lit::neg(aux(v, w))];
                        c.extend(below_site.iter().map(|&t| Lit::pos(enc.type_var(v, t))));
                        clauses.push(c);
                        // edge ∧ type → aux
                        for &t in &below_site {
                            clauses.push(vec![
                                Lit::neg(enc.edge_var(v, f_ix, w)),
                                Lit::neg(enc.type_var(v, t)),
                                Lit::pos(aux(v, w)),
                            ]);
                        }
                    }
                }
                // Targets below the field type.
                let target_below: Vec<usize> = object_types
                    .iter()
                    .enumerate()
                    .filter(|(_, &ot2)| {
                        gql_schema::subtype::wrapped_subtype(s, &WrappedType::bare(ot2), &rel.ty)
                    })
                    .map(|(i, _)| i)
                    .collect();
                if rel.unique_for_target {
                    for w in 0..k {
                        for v1 in 0..k {
                            for v2 in (v1 + 1)..k {
                                clauses.push(vec![Lit::neg(aux(v1, w)), Lit::neg(aux(v2, w))]);
                            }
                        }
                    }
                }
                if rel.required_for_target {
                    for w in 0..k {
                        for &s_ix in &target_below {
                            let mut c = vec![Lit::neg(enc.type_var(w, s_ix))];
                            c.extend((0..k).map(|v| Lit::pos(aux(v, w))));
                            clauses.push(c);
                        }
                    }
                }
            }
        }

        // Rebuild the CNF with the final variable count.
        let mut cnf = Cnf::new(next_var.max(base_vars).max(k * n_ot + k * k * n_f));
        for c in clauses {
            cnf.add_clause(c);
        }
        enc.cnf = cnf;
        Some(enc)
    }

    /// Decodes a propositional model into a Property Graph and fills the
    /// property-level obligations (DS5 required properties, DS7 keys,
    /// §3.5 mandatory edge properties) with fresh conforming values.
    fn decode(&self, schema: &PgSchema, model: &[bool]) -> PropertyGraph {
        let s = schema.schema();
        let mut g = PropertyGraph::with_capacity(self.k, self.k * self.field_names.len());
        let mut node_ids = Vec::with_capacity(self.k);
        let mut uniq = 0usize;
        for v in 0..self.k {
            let t_ix = (0..self.object_types.len())
                .find(|&t| model[self.type_var(v, t)])
                .expect("exactly-one-type clause");
            let t = self.object_types[t_ix];
            let id = g.add_node(s.type_name(t).to_owned());
            node_ids.push(id);
            // Fill required attributes — from every supertype site.
            for owner in s.object_types().chain(s.interface_types()) {
                if !gql_schema::subtype::named_subtype(s, t, owner) {
                    continue;
                }
                for attr in schema.attributes(owner) {
                    if !attr.required {
                        continue;
                    }
                    // Generate against the node's own field type (WS1
                    // checks against λ(v)'s declaration).
                    let ty = schema
                        .attribute(s.type_name(t), &attr.name)
                        .map(|a| a.ty)
                        .unwrap_or(attr.ty);
                    uniq += 1;
                    g.set_node_property(id, attr.name.clone(), fresh_value(s, &ty, uniq));
                }
            }
            // Fill key fields (unique per node) — sites whose type covers t.
            for key in schema.keys() {
                if !gql_schema::subtype::named_subtype(s, t, key.site) {
                    continue;
                }
                for fname in &key.fields {
                    if g.node_property(id, fname).is_some() {
                        // Already set as a required attribute; overwrite
                        // with a fresh (still unique) value is fine, skip.
                        continue;
                    }
                    if let Some(attr) = schema.attribute(s.type_name(t), fname) {
                        uniq += 1;
                        g.set_node_property(id, fname.clone(), fresh_value(s, &attr.ty, uniq));
                    }
                }
            }
        }
        for v in 0..self.k {
            for (f_ix, f) in self.field_names.iter().enumerate() {
                for w in 0..self.k {
                    if !model[self.edge_var(v, f_ix, w)] {
                        continue;
                    }
                    let e = g
                        .add_edge(node_ids[v], node_ids[w], f.clone())
                        .expect("nodes exist");
                    // Mandatory edge properties (§3.5).
                    let src_label = s.type_name(
                        self.object_types[(0..self.object_types.len())
                            .find(|&t| model[self.type_var(v, t)])
                            .unwrap()],
                    );
                    if let Some(rel) = schema.relationship(src_label, f) {
                        for ep in &rel.edge_props {
                            if ep.mandatory {
                                uniq += 1;
                                g.set_edge_property(
                                    e,
                                    ep.name.clone(),
                                    fresh_value(s, &ep.ty, uniq),
                                );
                            }
                        }
                    }
                }
            }
        }
        g
    }
}

/// Generates a fresh value conforming to `valuesW(ty)` (non-null), using
/// `n` as a uniqueness seed. For list types a singleton list is produced.
fn fresh_value(s: &gql_schema::Schema, ty: &WrappedType, n: usize) -> Value {
    let scalar = scalar_seed(s, ty.base, n);
    if ty.is_list() {
        Value::List(vec![scalar])
    } else {
        scalar
    }
}

fn scalar_seed(s: &gql_schema::Schema, base: TypeId, n: usize) -> Value {
    match s.scalar_info(base) {
        Some(ScalarInfo::Builtin(b)) => match b {
            BuiltinScalar::Int => Value::Int((n as i64) % (i32::MAX as i64)),
            BuiltinScalar::Float => Value::Float(n as f64),
            BuiltinScalar::String => Value::String(format!("v{n}")),
            // Finite value space — uniqueness impossible beyond 2 nodes;
            // mirrors the paper's infinite-value-space assumption.
            BuiltinScalar::Boolean => Value::Bool(n.is_multiple_of(2)),
            BuiltinScalar::Id => Value::Id(format!("id{n}")),
        },
        Some(ScalarInfo::Enum(symbols)) => symbols
            .get(n % symbols.len().max(1))
            .map(|sym| Value::Enum(sym.clone()))
            .unwrap_or(Value::Null),
        Some(ScalarInfo::Custom) => Value::String(format!("custom{n}")),
        None => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_schema::strongly_satisfies;

    fn pg(src: &str) -> PgSchema {
        PgSchema::parse(src).unwrap()
    }

    fn assert_witness(schema: &PgSchema, ty: &str, k: usize) -> PropertyGraph {
        let g =
            find_model(schema, ty, k).unwrap_or_else(|| panic!("no model of size {k} for {ty}"));
        assert!(
            strongly_satisfies(&g, schema),
            "witness does not strongly satisfy:\n{}",
            pg_schema::validate(&g, schema, &Default::default())
        );
        assert!(g.nodes().any(|n| n.label() == ty));
        g
    }

    #[test]
    fn single_free_type_has_singleton_model() {
        let s = pg("type A { x: Int }");
        let g = assert_witness(&s, "A", 1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn required_properties_are_filled() {
        let s = pg(
            r#"type A @key(fields: ["k"]) { x: Int! @required k: String! tags: [String!]! @required }"#,
        );
        let g = assert_witness(&s, "A", 1);
        let n = g.nodes().next().unwrap();
        assert!(n.property("x").is_some());
        assert!(matches!(n.property("tags"), Some(Value::List(items)) if !items.is_empty()));
    }

    #[test]
    fn required_edge_forces_second_node_or_loop() {
        let s = pg(r#"
            type A { toB: B @required }
            type B { x: Int }
            "#);
        assert!(find_model(&s, "A", 1).is_none()); // a lone A can't point at a B
        let g = assert_witness(&s, "A", 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_referential_type_can_loop_unless_noloops() {
        let s = pg("type A { next: A @required }");
        let g = assert_witness(&s, "A", 1);
        assert_eq!(g.edge_count(), 1); // self-loop
        let s = pg("type A { next: [A] @required @noloops }");
        assert!(find_model(&s, "A", 1).is_none());
        assert_witness(&s, "A", 2); // two nodes pointing at each other
    }

    #[test]
    fn mandatory_edge_properties_are_filled() {
        let s = pg(r#"
            type A { toB(w: Float! note: String): B @required }
            type B { x: Int }
            "#);
        let g = assert_witness(&s, "A", 2);
        let e = g.edges().next().unwrap();
        assert!(e.property("w").is_some());
        assert!(e.property("note").is_none());
    }

    #[test]
    fn required_for_target_needs_a_source() {
        let s = pg(r#"
            type Publisher { published: [Book] @requiredForTarget }
            type Book { title: String! @required }
            "#);
        // A Book alone is impossible; Book + Publisher works.
        assert!(find_model(&s, "Book", 1).is_none());
        assert_witness(&s, "Book", 2);
        // A Publisher alone is fine (no Books to constrain).
        assert_witness(&s, "Publisher", 1);
    }

    #[test]
    fn unique_for_target_limits_incoming() {
        // Diagram (a) / Example 6.1 (consistent variant): OT1 needs
        // incoming from both OT2 and OT3, but ≤1 incoming from IT nodes.
        let s = pg(r#"
            type OT1 { }
            interface IT { hasOT1: [OT1] @uniqueForTarget }
            type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
            type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
            "#);
        for k in 1..=5 {
            assert!(find_model(&s, "OT1", k).is_none(), "OT1 sat at size {k}?");
        }
        // OT2 alone is satisfiable (no OT1 node to constrain).
        assert_witness(&s, "OT2", 1);
    }

    #[test]
    fn non_list_cardinality_is_enforced() {
        // A must point at B, C requires incoming from A… but A's field is
        // non-list so one A cannot serve two different targets; sat needs
        // one A per B.
        let s = pg(r#"
            type A { toB: B @required }
            type B { x: Int }
            "#);
        let g = assert_witness(&s, "A", 2);
        let a_nodes: Vec<_> = g.nodes().filter(|n| n.label() == "A").collect();
        for a in a_nodes {
            assert!(g.out_edges(a.id).count() <= 1);
        }
    }

    #[test]
    fn queried_type_must_be_an_object_type() {
        let s = pg("interface I { x: Int } type A implements I { x: Int }");
        assert!(find_model(&s, "I", 1).is_none());
        assert!(find_model(&s, "Ghost", 1).is_none());
        assert!(find_model(&s, "Int", 1).is_none());
    }

    #[test]
    fn union_targets_work() {
        let s = pg(r#"
            type Person { favoriteFood: Food @required }
            union Food = Pizza | Pasta
            type Pizza { n: Int }
            type Pasta { n: Int }
            "#);
        let g = assert_witness(&s, "Person", 2);
        let food = g
            .edges()
            .next()
            .map(|e| g.node_label(e.target()).unwrap().to_owned())
            .unwrap();
        assert!(food == "Pizza" || food == "Pasta");
    }
}
