//! Integration tests: open/append/recover round-trips, compaction, and
//! the torn-tail / bit-flip recovery matrix over generated WALs.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use pg_store::{FsyncPolicy, Recovered, Store};
use pgraph::{GraphDelta, NodeId, PropertyGraph, Value};
use rand::prelude::*;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("pg-store-tests")
        .join(format!("{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

const SDL: &str = "type User { login: String! @required }";

fn seed_graph() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let u = g.add_node("User");
    g.set_node_property(u, "login", Value::from("alice"));
    g
}

/// In-test oracle mirroring the registry's bookkeeping: apply the same
/// events to plain graphs and compare with what recovery reconstructs.
#[derive(Default)]
struct Oracle {
    sessions: HashMap<u64, (String, PropertyGraph, u64)>,
}

impl Oracle {
    fn create(&mut self, id: u64, sdl: &str, graph: &PropertyGraph) {
        self.sessions.insert(id, (sdl.to_owned(), graph.clone(), 0));
    }
    fn delta(&mut self, id: u64, delta: &GraphDelta) {
        let (_, graph, applied) = self.sessions.get_mut(&id).unwrap();
        if delta.apply_to(graph).is_ok() {
            *applied += 1;
        }
    }
    fn delete(&mut self, id: u64) {
        self.sessions.remove(&id);
    }
    fn assert_matches(&self, recovered: &Recovered) {
        assert_eq!(recovered.sessions.len(), self.sessions.len());
        for session in &recovered.sessions {
            let (sdl, graph, applied) = self
                .sessions
                .get(&session.id)
                .unwrap_or_else(|| panic!("unexpected session {}", session.id));
            assert_eq!(&session.schema_sdl, sdl);
            assert_eq!(&session.graph, graph, "graph of session {}", session.id);
            assert_eq!(session.deltas_applied, *applied);
        }
    }
}

#[test]
fn empty_dir_opens_clean() {
    let dir = test_dir("empty");
    let (store, recovered) = Store::open(&dir, FsyncPolicy::Always).unwrap();
    assert!(recovered.sessions.is_empty());
    assert_eq!(recovered.next_session_id, 1);
    assert!(recovered.info.truncated.is_none());
    assert_eq!(store.stats().appends, 0);
}

#[test]
fn appends_recover_across_reopen() {
    let dir = test_dir("reopen");
    let mut oracle = Oracle::default();
    {
        let (store, _) = Store::open(&dir, FsyncPolicy::Always).unwrap();
        let g = seed_graph();
        store.append_create(1, SDL, &g).unwrap();
        oracle.create(1, SDL, &g);
        let u = NodeId::from_index(0);
        let d1 = GraphDelta::new().set_node_property(u, "login", Value::Int(3));
        store.append_delta(1, &d1).unwrap();
        oracle.delta(1, &d1);
        // A delta that fails mid-way: first op applies, second errors.
        let bad = GraphDelta::new()
            .add_node("User")
            .remove_node(NodeId::from_index(99));
        store.append_delta(1, &bad).unwrap();
        oracle.delta(1, &bad);
        store.append_create(2, SDL, &PropertyGraph::new()).unwrap();
        oracle.create(2, SDL, &PropertyGraph::new());
        store.append_delete(2).unwrap();
        oracle.delete(2);
    }
    let (_, recovered) = Store::open(&dir, FsyncPolicy::Always).unwrap();
    oracle.assert_matches(&recovered);
    assert_eq!(recovered.next_session_id, 3);
    assert_eq!(recovered.info.records_replayed, 5);
    assert!(recovered.info.truncated.is_none());
    // Sequence numbers continue where they left off.
    let (store, _) = Store::open(&dir, FsyncPolicy::Always).unwrap();
    assert_eq!(store.append_delete(1).unwrap(), 6);
}

#[test]
fn compaction_supersedes_segments_and_preserves_state() {
    let dir = test_dir("compact");
    let mut oracle = Oracle::default();
    let (store, _) = Store::open(&dir, FsyncPolicy::Always).unwrap();
    let g = seed_graph();
    store.append_create(1, SDL, &g).unwrap();
    oracle.create(1, SDL, &g);
    let u = NodeId::from_index(0);
    let mut tracked = g.clone();
    let mut applied = 0u64;
    let mut last_seq = 1u64;
    for i in 0..10 {
        let delta = GraphDelta::new().set_node_property(u, "login", Value::Int(i));
        last_seq = store.append_delta(1, &delta).unwrap();
        oracle.delta(1, &delta);
        delta.apply_to(&mut tracked).unwrap();
        applied += 1;
    }

    let mut compaction = store.try_begin_compaction().unwrap().expect("not busy");
    // A second compaction is refused while one is in flight.
    assert!(store.try_begin_compaction().unwrap().is_none());
    compaction.add_session(1, last_seq, applied, SDL, &tracked, None);
    let outcome = compaction.finish(2).unwrap();
    assert_eq!(outcome.sessions, 1);
    assert_eq!(outcome.base_seq, 11);
    assert_eq!(store.stats().snapshots, 1);
    // The flag is released after finish.
    drop(store.try_begin_compaction().unwrap().expect("released"));

    // Post-compaction deltas land in the fresh segment.
    let (store2, recovered) = {
        let delta = GraphDelta::new().set_node_property(u, "login", Value::from("bob"));
        store.append_delta(1, &delta).unwrap();
        oracle.delta(1, &delta);
        drop(store);
        Store::open(&dir, FsyncPolicy::Always).unwrap()
    };
    oracle.assert_matches(&recovered);
    assert_eq!(recovered.info.snapshot_generation, Some(1));
    assert_eq!(recovered.info.records_replayed, 1);
    drop(store2);

    // Exactly one snapshot and one live segment remain on disk.
    let report = pg_store::scan(&dir).unwrap();
    assert_eq!(report.snapshots.len(), 1);
    assert!(report.snapshots[0].valid);
    assert_eq!(report.segments.len(), 1);
    assert_eq!(report.segments[0].records, (0, 1, 0, 0));
}

/// Drives a store to a known state, returning the expected per-prefix
/// oracles: `oracles[k]` is the state after the first `k` records.
fn build_wal(dir: &Path, records: usize) -> (Vec<Oracle>, Vec<u64>) {
    let (store, _) = Store::open(dir, FsyncPolicy::Always).unwrap();
    let mut oracles = vec![Oracle::default()];
    let mut boundaries = vec![0u64];
    let u = NodeId::from_index(0);
    for i in 0..records {
        let prev = oracles.last().unwrap();
        let mut next = Oracle {
            sessions: prev.sessions.clone(),
        };
        match i % 5 {
            0 => {
                let id = (i / 5) as u64 + 1;
                let g = seed_graph();
                store.append_create(id, SDL, &g).unwrap();
                next.create(id, SDL, &g);
            }
            4 if i / 5 % 2 == 1 => {
                let id = (i / 5) as u64 + 1;
                store.append_delete(id).unwrap();
                next.delete(id);
            }
            step => {
                let id = (i / 5) as u64 + 1;
                let delta = GraphDelta::new()
                    .set_node_property(u, "login", Value::Int(step as i64))
                    .add_node("User");
                store.append_delta(id, &delta).unwrap();
                next.delta(id, &delta);
            }
        }
        oracles.push(next);
        boundaries.push(fs::metadata(segment_of(dir)).unwrap().len());
    }
    (oracles, boundaries)
}

fn segment_of(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    assert_eq!(segments.len(), 1, "matrix tests run on a single segment");
    segments.pop().unwrap()
}

#[test]
fn torn_tail_matrix_recovers_longest_valid_prefix() {
    let src = test_dir("torn-src");
    let (oracles, boundaries) = build_wal(&src, 14);
    let total = *boundaries.last().unwrap();
    let work = test_dir("torn-work");
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    // Every frame boundary, plus random mid-frame offsets.
    let mut cuts: Vec<u64> = boundaries.clone();
    for _ in 0..40 {
        cuts.push(rng.gen_range(0..total));
    }
    for cut in cuts {
        copy_dir(&src, &work);
        let segment = segment_of(&work);
        let file = fs::OpenOptions::new().write(true).open(&segment).unwrap();
        file.set_len(cut).unwrap();
        drop(file);
        let (_, recovered) = Store::open(&work, FsyncPolicy::Always).unwrap();
        // The expected state is the longest record prefix within the cut.
        let prefix = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        oracles[prefix].assert_matches(&recovered);
        if boundaries[prefix] != cut {
            let torn = recovered.info.truncated.expect("mid-frame cut reported");
            assert_eq!(torn.offset, boundaries[prefix]);
        }
        // After truncation the store must accept appends again and the
        // repaired log must reopen cleanly.
        assert_eq!(
            fs::metadata(segment_of(&work)).unwrap().len(),
            boundaries[prefix]
        );
        let (_, reopened) = Store::open(&work, FsyncPolicy::Always).unwrap();
        assert!(reopened.info.truncated.is_none());
        oracles[prefix].assert_matches(&reopened);
    }
}

#[test]
fn bit_flip_matrix_never_accepts_corrupt_records() {
    let src = test_dir("flip-src");
    let (oracles, boundaries) = build_wal(&src, 14);
    let total = *boundaries.last().unwrap();
    let work = test_dir("flip-work");
    let mut rng = StdRng::seed_from_u64(0xB17F11B);
    for _ in 0..60 {
        let offset = rng.gen_range(0..total) as usize;
        let bit = rng.gen_range(0..8u32);
        copy_dir(&src, &work);
        let segment = segment_of(&work);
        let mut bytes = fs::read(&segment).unwrap();
        bytes[offset] ^= 1 << bit;
        fs::write(&segment, &bytes).unwrap();
        let (_, recovered) = Store::open(&work, FsyncPolicy::Always).unwrap();
        // The flip damages exactly one frame; recovery must keep every
        // record before it and reject it and everything after.
        let prefix = boundaries.iter().filter(|&&b| b <= offset as u64).count() - 1;
        oracles[prefix].assert_matches(&recovered);
        let torn = recovered.info.truncated.expect("flip detected");
        assert_eq!(torn.offset, boundaries[prefix]);
    }
}

#[test]
fn interval_and_never_policies_survive_clean_reopen() {
    for (name, policy) in [
        (
            "interval",
            FsyncPolicy::Interval(std::time::Duration::from_millis(5)),
        ),
        ("never", FsyncPolicy::Never),
    ] {
        let dir = test_dir(&format!("policy-{name}"));
        let mut oracle = Oracle::default();
        {
            let (store, _) = Store::open(&dir, policy).unwrap();
            let g = seed_graph();
            store.append_create(1, SDL, &g).unwrap();
            oracle.create(1, SDL, &g);
            store.sync().unwrap();
        }
        let (_, recovered) = Store::open(&dir, policy).unwrap();
        oracle.assert_matches(&recovered);
    }
}

#[test]
fn fsync_policy_parses() {
    assert_eq!("always".parse(), Ok(FsyncPolicy::Always));
    assert_eq!("never".parse(), Ok(FsyncPolicy::Never));
    assert_eq!(
        "interval".parse(),
        Ok(FsyncPolicy::Interval(std::time::Duration::from_millis(100)))
    );
    assert_eq!(
        "interval:250".parse(),
        Ok(FsyncPolicy::Interval(std::time::Duration::from_millis(250)))
    );
    let err = "sometimes".parse::<FsyncPolicy>().unwrap_err();
    assert_eq!(
        err.to_string(),
        "unknown fsync policy `sometimes` (expected always|interval[:millis]|never)"
    );
    assert!("interval:x".parse::<FsyncPolicy>().is_err());
}

#[test]
fn scan_reports_torn_tail_without_mutating() {
    let dir = test_dir("scan");
    build_wal(&dir, 6);
    let segment = segment_of(&dir);
    let clean_len = fs::metadata(&segment).unwrap().len();
    let file = fs::OpenOptions::new().write(true).open(&segment).unwrap();
    file.set_len(clean_len - 3).unwrap();
    drop(file);
    let report = pg_store::scan(&dir).unwrap();
    assert_eq!(report.segments.len(), 1);
    let info = &report.segments[0];
    assert!(info.torn.is_some());
    assert!(info.valid_bytes < info.bytes);
    // Scanning must not repair anything.
    assert_eq!(fs::metadata(&segment).unwrap().len(), clean_len - 3);
}
