//! The rule-kernel layer: each of the paper's fifteen rules, implemented
//! exactly once.
//!
//! The paper defines one set of semantics — [`Rule::WS1`]–[`Rule::WS4`]
//! (Definition 5.1), [`Rule::DS1`]–[`Rule::DS7`] (Definition 5.2) and
//! [`Rule::SS1`]–[`Rule::SS4`] (Definition 5.3) — while the crate ships
//! several execution strategies for it. This module separates the two
//! concerns:
//!
//! * a **kernel** is the single implementation of one rule, written
//!   against an abstract evaluation [`Scope`] and a result [`Sink`]
//!   (modules [`weak`], [`directives`], [`strong`], one per family);
//! * an **engine** is a *planner*: it decides which kernels to run over
//!   which scope and merges the results. `indexed.rs`, `parallel.rs` and
//!   `incremental.rs` contain only this planning/scoping logic;
//!   `naive.rs` deliberately stays outside the layer as the independent
//!   oracle the kernels are property-tested against
//!   (`tests/engine_agreement.rs`).
//!
//! # Scope
//!
//! A [`Scope`] bundles the graph, schema, [`GraphIndex`] and label list
//! with an evaluation *domain* — which slice of the graph the kernels
//! should derive violations for:
//!
//! * **full** — the whole graph (the serial indexed engine, and the
//!   seeding pass of an incremental session); benchmark E2 runs kernels
//!   under this scope;
//! * **shard** — one contiguous id-range shard of the parallel engine;
//!   element scans walk the shard's own live elements and group-keyed
//!   kernels process exactly the groups whose key element the shard
//!   owns, so every violation is derived by exactly one worker (E2p);
//! * **dirty** — the dirty region computed from a
//!   [`GraphDelta`](pgraph::GraphDelta) closure by the incremental
//!   engine: a set of dirty nodes plus the live edges incident to them,
//!   evaluated over a partial index of that region (E2i).
//!
//! Kernels never ask which variant they run under: element scans iterate
//! [`Scope::nodes`]/[`Scope::edges`], group-keyed kernels filter shared
//! index groups through [`Scope::owns`]. That one predicate is what
//! makes the same kernel body correct in all three plans.
//!
//! # Sink
//!
//! A [`Sink`] is the uniform write side: kernels push [`Violation`]s
//! through it. It centralises
//!
//! * `max_violations` early-exit ([`Sink::at_limit`] short-circuits both
//!   within and between kernels),
//! * per-rule observability — wall time, elements examined and
//!   violations per kernel, recorded as [`RuleMetrics`] when metrics
//!   are requested and zero-cost (a dead branch per element) when not,
//! * deterministic ordering: kernels themselves emit in a
//!   domain-dependent order, so every planner canonicalises its merged
//!   report (sort by the derived `Ord` on [`Violation`] = (rule, anchor
//!   element id, payload), then dedup) before it reaches the caller —
//!   [`validate`](crate::validate) and
//!   [`IncrementalEngine::report`](crate::IncrementalEngine::report)
//!   both guarantee this canonical order, which is why reports from all
//!   four engines compare byte-identically.
//!
//! # DS7 and the three plans
//!
//! `@key` (DS7) is the one rule whose violations pair *two* elements, so
//! its kernel is split into a tuple-collect and a pair-emit phase
//! (see [`directives`]). [`Ds7Plan`] selects how the planner composes
//! them: inline (collect + emit in one go), map (collect only; the
//! parallel engine reduces the shard-local tables after join), or
//! recheck (the incremental engine's persistent [`KeyTable`]s are
//! updated for the dirty nodes and only affected pairs re-emitted).

pub(crate) mod directives;
pub(crate) mod strong;
pub(crate) mod weak;

use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use pgraph::index::GraphIndex;
use pgraph::shard::GraphShard;
use pgraph::{EdgeId, EdgeRef, NodeId, NodeRef, PropertyGraph, Value};

use crate::pgschema::PgSchema;
use crate::report::{Rule, RuleMetrics, ValidationReport, Violation};
use crate::ValidationOptions;

pub(crate) use directives::KeyTable;

/// The slice of the graph a kernel invocation derives violations for.
enum Domain<'a, 'g> {
    /// The whole graph.
    Full,
    /// One contiguous id-range shard (parallel engine).
    Shard(&'a GraphShard<'g>),
    /// The dirty region of a delta: dirty nodes plus their incident live
    /// edges (incremental engine).
    Dirty {
        nodes: &'a BTreeSet<NodeId>,
        edges: &'a BTreeSet<EdgeId>,
    },
}

/// Everything a rule kernel reads: graph, schema, index, the labels
/// present, and the evaluation domain. See the module docs for the three
/// domain variants and how the planners instantiate them.
pub(crate) struct Scope<'a, 'g> {
    /// The graph under validation (always the *whole* graph — domains
    /// restrict which elements are scanned, not what lookups can see).
    pub(crate) g: &'g PropertyGraph,
    /// The schema validated against.
    pub(crate) s: &'a PgSchema,
    /// Label/adjacency/parallel-edge groups: full for the full and shard
    /// domains, partial (covering the dirty region) for the dirty one.
    pub(crate) ix: &'a GraphIndex,
    /// The node labels present in `ix`, resolved once by the planner.
    pub(crate) labels: &'a [String],
    domain: Domain<'a, 'g>,
}

impl<'a, 'g> Scope<'a, 'g> {
    /// Whole-graph scope (indexed engine, incremental seeding).
    pub(crate) fn full(
        g: &'g PropertyGraph,
        s: &'a PgSchema,
        ix: &'a GraphIndex,
        labels: &'a [String],
    ) -> Self {
        Scope {
            g,
            s,
            ix,
            labels,
            domain: Domain::Full,
        }
    }

    /// One worker's shard of the parallel engine.
    pub(crate) fn shard(
        g: &'g PropertyGraph,
        s: &'a PgSchema,
        ix: &'a GraphIndex,
        labels: &'a [String],
        shard: &'a GraphShard<'g>,
    ) -> Self {
        Scope {
            g,
            s,
            ix,
            labels,
            domain: Domain::Shard(shard),
        }
    }

    /// The dirty region of the incremental engine: `nodes` is the dirty
    /// node closure, `edges` the live edges incident to it, and `ix` a
    /// partial index over exactly that region.
    pub(crate) fn dirty(
        g: &'g PropertyGraph,
        s: &'a PgSchema,
        ix: &'a GraphIndex,
        labels: &'a [String],
        nodes: &'a BTreeSet<NodeId>,
        edges: &'a BTreeSet<EdgeId>,
    ) -> Self {
        Scope {
            g,
            s,
            ix,
            labels,
            domain: Domain::Dirty { nodes, edges },
        }
    }

    /// Does this scope own the given node? Group-keyed kernels process
    /// exactly the index groups whose key element is owned, which is
    /// what makes shard/dirty evaluation partition-exact.
    #[inline]
    pub(crate) fn owns(&self, n: NodeId) -> bool {
        match &self.domain {
            Domain::Full => true,
            Domain::Shard(shard) => shard.owns_node(n),
            Domain::Dirty { nodes, .. } => nodes.contains(&n),
        }
    }

    /// The live nodes of the domain, in ascending id order.
    pub(crate) fn nodes(&self) -> Box<dyn Iterator<Item = NodeRef<'g>> + '_> {
        match &self.domain {
            Domain::Full => Box::new(self.g.nodes()),
            Domain::Shard(shard) => Box::new(shard.nodes()),
            Domain::Dirty { nodes, .. } => Box::new(nodes.iter().filter_map(|&v| self.g.node(v))),
        }
    }

    /// The live edges of the domain, in ascending id order.
    pub(crate) fn edges(&self) -> Box<dyn Iterator<Item = EdgeRef<'g>> + '_> {
        match &self.domain {
            Domain::Full => Box::new(self.g.edges()),
            Domain::Shard(shard) => Box::new(shard.edges()),
            Domain::Dirty { edges, .. } => Box::new(edges.iter().filter_map(|&e| self.g.edge(e))),
        }
    }

    /// The dirty node set — `Some` only under the dirty domain. DS7's
    /// recheck plan uses this to move exactly the dirty nodes between
    /// key groups.
    pub(crate) fn dirty_nodes(&self) -> Option<&BTreeSet<NodeId>> {
        match &self.domain {
            Domain::Dirty { nodes, .. } => Some(nodes),
            _ => None,
        }
    }
}

/// Per-rule instrumentation accumulated by a [`Sink`], handed back to
/// the planner by [`Sink::finish`].
pub(crate) struct SinkOutput {
    /// One entry per kernel that ran, in execution order.
    pub(crate) rules: Vec<RuleMetrics>,
    /// Node visits summed over all kernels.
    pub(crate) nodes_scanned: u64,
    /// Edge visits summed over all kernels.
    pub(crate) edges_scanned: u64,
}

struct SinkMetrics {
    rules: Vec<RuleMetrics>,
    nodes_scanned: u64,
    edges_scanned: u64,
    /// Elements examined by the kernel currently running.
    current: u64,
}

/// The uniform write side of every kernel: violations, `max_violations`
/// early-exit and per-rule metrics flow through here. See module docs.
pub(crate) struct Sink<'r> {
    report: &'r mut ValidationReport,
    metrics: Option<SinkMetrics>,
}

impl<'r> Sink<'r> {
    /// Wraps a report; with `collect` set, per-rule [`RuleMetrics`] are
    /// recorded around every [`rule`](Self::rule) invocation.
    pub(crate) fn new(report: &'r mut ValidationReport, collect: bool) -> Self {
        Sink {
            report,
            metrics: collect.then(|| SinkMetrics {
                rules: Vec::with_capacity(Rule::ALL.len()),
                nodes_scanned: 0,
                edges_scanned: 0,
                current: 0,
            }),
        }
    }

    /// Emits one violation (dropped, marking the report truncated, once
    /// the limit is reached).
    #[inline]
    pub(crate) fn push(&mut self, v: Violation) {
        self.report.push(v);
    }

    /// True once `max_violations` is reached — kernels return early and
    /// [`rule`](Self::rule) skips kernels entirely.
    #[inline]
    pub(crate) fn at_limit(&self) -> bool {
        self.report.at_limit()
    }

    /// Counts one node visit for the running kernel.
    #[inline]
    pub(crate) fn node_visited(&mut self) {
        if let Some(m) = &mut self.metrics {
            m.current += 1;
            m.nodes_scanned += 1;
        }
    }

    /// Counts one edge visit for the running kernel.
    #[inline]
    pub(crate) fn edge_visited(&mut self) {
        if let Some(m) = &mut self.metrics {
            m.current += 1;
            m.edges_scanned += 1;
        }
    }

    /// Counts one index-group (or per-site bucket entry) visit for the
    /// running kernel.
    #[inline]
    pub(crate) fn group_visited(&mut self) {
        if let Some(m) = &mut self.metrics {
            m.current += 1;
        }
    }

    /// Runs one kernel, timing it and attributing elements/violations to
    /// `rule` when metrics are collected. Skipped entirely once the
    /// violation limit is reached.
    pub(crate) fn rule(&mut self, rule: Rule, kernel: impl FnOnce(&mut Self)) {
        if self.at_limit() {
            return;
        }
        if self.metrics.is_none() {
            kernel(self);
            return;
        }
        if let Some(m) = &mut self.metrics {
            m.current = 0;
        }
        let before = self.report.len();
        let start = Instant::now();
        kernel(self);
        let nanos = start.elapsed().as_nanos() as u64;
        let violations = self.report.len() - before;
        if let Some(m) = &mut self.metrics {
            m.rules.push(RuleMetrics {
                rule,
                nanos,
                elements_scanned: m.current,
                violations,
            });
        }
    }

    /// Ends the sink, releasing the report borrow and handing the
    /// per-rule metrics (if collected) to the planner.
    pub(crate) fn finish(self) -> Option<SinkOutput> {
        self.metrics.map(|m| SinkOutput {
            rules: m.rules,
            nodes_scanned: m.nodes_scanned,
            edges_scanned: m.edges_scanned,
        })
    }
}

/// How a planner executes DS7 (`@key`) — the one rule whose collect and
/// emit phases engines compose differently. See module docs.
pub(crate) enum Ds7Plan<'p> {
    /// Collect and emit in one pass (serial full-graph engines).
    Inline,
    /// Map phase only: one shard-local tuple table per key is pushed for
    /// the caller's cross-shard reduce (parallel engine).
    Map(&'p mut Vec<HashMap<Vec<Option<Value>>, Vec<NodeId>>>),
    /// Move the scope's dirty nodes between the persistent per-key
    /// tables and re-emit exactly the pairs they participate in
    /// (incremental engine). Requires a dirty scope.
    Recheck(&'p mut [KeyTable]),
}

/// Runs every enabled kernel over `scope` in rule order (WS1–WS4,
/// DS1–DS7, SS1–SS4), with `max_violations` early-exit between and
/// within kernels. This is the entire rule schedule; the engines differ
/// only in the scope they build and the [`Ds7Plan`] they pass.
pub(crate) fn run(
    scope: &Scope<'_, '_>,
    options: &ValidationOptions,
    sink: &mut Sink<'_>,
    ds7: Ds7Plan<'_>,
) {
    if options.weak {
        weak::ws1(scope, sink);
        weak::ws2(scope, sink);
        weak::ws3(scope, sink);
        weak::ws4(scope, sink);
    }
    if options.directives {
        directives::ds1(scope, sink);
        directives::ds2(scope, sink);
        directives::ds3(scope, sink);
        directives::ds4(scope, sink);
        directives::ds5(scope, sink);
        directives::ds6(scope, sink);
        match ds7 {
            Ds7Plan::Inline => directives::ds7(scope, sink),
            Ds7Plan::Map(tables) => directives::ds7_map(scope, sink, tables),
            Ds7Plan::Recheck(tables) => directives::ds7_recheck(scope, sink, tables),
        }
    }
    if options.strong {
        strong::ss1(scope, sink);
        strong::ss2(scope, sink);
        strong::ss3(scope, sink);
        strong::ss4(scope, sink);
    }
}
