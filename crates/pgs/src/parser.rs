//! Recursive-descent parser for the supported PG-Schema subset.
//!
//! The grammar (satellite constructs the lowering pass rejects are still
//! *parsed* here so their errors can carry precise spans):
//!
//! ```text
//! document   := CREATE GRAPH TYPE Name (STRICT | LOOSE)? '{' elements '}'
//! elements   := (element ','?)*
//! element    := ABSTRACT? nodeType | edgeType | keyConstraint
//! nodeType   := '(' OPEN? labels props? OPEN? ')'
//! labels     := ':'? Name ('&' Name)*
//! props      := '{' (prop ','?)* '}'
//! prop       := OPTIONAL? Name Name ARRAY?
//! edgeType   := endpoint '-' '[' ':'? Name props? ']' '->' endpoint clause*
//! endpoint   := '(' ':' Name ')'
//! clause     := OUTGOING card | INCOMING card | DISTINCT | NO LOOPS
//! card       := Int '..' (Int | '*')
//! keyConstraint := FOR '(' Name ':' Name ')' KEY keyRef (',' keyRef)*
//! keyRef     := Name '.' Name
//! ```
//!
//! Keywords are uppercase, as in the PG-Schema paper; identifiers follow
//! the SDL name grammar so labels and property names translate 1:1.

use crate::ast::{Cardinality, EdgeType, GraphType, KeyConstraint, NodeType, PropDef, TypeMode};
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::Lexer;
use crate::token::{Pos, Span, Token, TokenKind};

/// Parses PG-Schema source into a [`GraphType`].
pub fn parse(source: &str) -> Result<GraphType, ParseError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser { tokens, at: 0 }.document()
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.at < self.tokens.len() - 1 {
            self.at += 1;
        }
        t
    }

    fn pos(&self) -> Pos {
        self.peek().span.start
    }

    fn unexpected(&self, expected: impl Into<String>) -> ParseError {
        ParseError::new(
            ParseErrorKind::Unexpected {
                expected: expected.into(),
                found: self.peek().kind.describe(),
            },
            self.pos(),
        )
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(kind.describe()))
        }
    }

    /// Consumes a name token with any spelling.
    fn name(&mut self, expected: &str) -> Result<(String, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Name(_) => {
                let t = self.bump();
                let TokenKind::Name(n) = t.kind else {
                    unreachable!()
                };
                Ok((n, t.span))
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    /// Consumes the exact keyword `kw` (uppercase spelling).
    fn keyword(&mut self, kw: &str) -> Result<Token, ParseError> {
        if self.at_keyword(kw) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(format!("`{kw}`")))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Name(n) if n == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn document(&mut self) -> Result<GraphType, ParseError> {
        let head = self.pos();
        self.keyword("CREATE")?;
        self.keyword("GRAPH")?;
        self.keyword("TYPE")?;
        let (name, _) = self.name("a graph type name")?;
        let mode = if self.eat_keyword("STRICT") {
            TypeMode::Strict
        } else if self.eat_keyword("LOOSE") {
            TypeMode::Loose
        } else {
            TypeMode::Strict
        };
        self.expect(TokenKind::BraceL)?;
        let mut gt = GraphType {
            name,
            mode,
            nodes: Vec::new(),
            edges: Vec::new(),
            keys: Vec::new(),
            span: Span::at(head),
        };
        while !self.eat(TokenKind::BraceR) {
            self.element(&mut gt)?;
            self.eat(TokenKind::Comma);
        }
        self.expect(TokenKind::Eof)?;
        Ok(gt)
    }

    fn element(&mut self, gt: &mut GraphType) -> Result<(), ParseError> {
        let start = self.pos();
        if self.at_keyword("FOR") {
            gt.keys.push(self.key_constraint()?);
            return Ok(());
        }
        let is_abstract = self.eat_keyword("ABSTRACT");
        if self.peek().kind != TokenKind::ParenL {
            return Err(
                self.unexpected("a node type `(`, an edge type `(:`, or a key constraint `FOR`")
            );
        }
        // Both node and edge types start with '(' — an edge endpoint is
        // `(:Name)` followed by `-[`. Disambiguate by scanning for the
        // closing paren and checking what follows.
        if !is_abstract && self.looks_like_edge() {
            gt.edges.push(self.edge_type()?);
        } else {
            gt.nodes.push(self.node_type(is_abstract, start)?);
        }
        Ok(())
    }

    /// True if the upcoming `( ... )` group is an edge endpoint, i.e. its
    /// matching close paren is immediately followed by `-`.
    fn looks_like_edge(&self) -> bool {
        let mut depth = 0usize;
        for (i, t) in self.tokens[self.at..].iter().enumerate() {
            match t.kind {
                TokenKind::ParenL => depth += 1,
                TokenKind::ParenR => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return matches!(
                            self.tokens.get(self.at + i + 1).map(|t| &t.kind),
                            Some(TokenKind::Dash | TokenKind::Arrow)
                        );
                    }
                }
                TokenKind::Eof => return false,
                _ => {}
            }
        }
        false
    }

    fn node_type(&mut self, is_abstract: bool, start: Pos) -> Result<NodeType, ParseError> {
        self.expect(TokenKind::ParenL)?;
        let mut open = self.eat_keyword("OPEN");
        self.eat(TokenKind::Colon);
        let (first, _) = self.name("a node label")?;
        let mut labels = vec![first];
        while self.eat(TokenKind::Amp) {
            let (l, _) = self.name("a label conjunct")?;
            labels.push(l);
        }
        open |= self.eat_keyword("OPEN");
        let props = if self.peek().kind == TokenKind::BraceL {
            self.props()?
        } else {
            Vec::new()
        };
        open |= self.eat_keyword("OPEN");
        self.expect(TokenKind::ParenR)?;
        Ok(NodeType {
            is_abstract,
            open,
            labels,
            props,
            span: Span::at(start),
        })
    }

    fn props(&mut self) -> Result<Vec<PropDef>, ParseError> {
        self.expect(TokenKind::BraceL)?;
        let mut out = Vec::new();
        while !self.eat(TokenKind::BraceR) {
            let start = self.pos();
            let optional = self.eat_keyword("OPTIONAL");
            let (name, _) = self.name("a property name")?;
            let (ty, _) = self.name("a property type")?;
            let array = self.eat_keyword("ARRAY");
            out.push(PropDef {
                optional,
                name,
                ty,
                array,
                span: Span::at(start),
            });
            self.eat(TokenKind::Comma);
        }
        Ok(out)
    }

    fn endpoint(&mut self) -> Result<String, ParseError> {
        self.expect(TokenKind::ParenL)?;
        self.expect(TokenKind::Colon)?;
        let (label, _) = self.name("an endpoint label")?;
        self.expect(TokenKind::ParenR)?;
        Ok(label)
    }

    fn edge_type(&mut self) -> Result<EdgeType, ParseError> {
        let start = self.pos();
        let source = self.endpoint()?;
        self.expect(TokenKind::Dash)?;
        self.expect(TokenKind::BracketL)?;
        self.eat(TokenKind::Colon);
        let (label, _) = self.name("an edge label")?;
        let props = if self.peek().kind == TokenKind::BraceL {
            self.props()?
        } else {
            Vec::new()
        };
        self.expect(TokenKind::BracketR)?;
        self.expect(TokenKind::Arrow)?;
        let target = self.endpoint()?;

        let mut edge = EdgeType {
            source,
            label,
            target,
            props,
            outgoing: None,
            incoming: None,
            distinct: false,
            no_loops: false,
            span: Span::at(start),
        };
        loop {
            if self.at_keyword("OUTGOING") {
                self.bump();
                edge.outgoing = Some(self.cardinality()?);
            } else if self.at_keyword("INCOMING") {
                self.bump();
                edge.incoming = Some(self.cardinality()?);
            } else if self.eat_keyword("DISTINCT") {
                edge.distinct = true;
            } else if self.at_keyword("NO") {
                self.bump();
                self.keyword("LOOPS")?;
                edge.no_loops = true;
            } else {
                break;
            }
        }
        Ok(edge)
    }

    fn cardinality(&mut self) -> Result<Cardinality, ParseError> {
        let start = self.pos();
        let min = match self.peek().kind {
            TokenKind::Int(n) => {
                self.bump();
                n
            }
            _ => return Err(self.unexpected("a cardinality lower bound")),
        };
        self.expect(TokenKind::DotDot)?;
        let max = match self.peek().kind {
            TokenKind::Int(n) => {
                self.bump();
                Some(n)
            }
            TokenKind::Star => {
                self.bump();
                None
            }
            _ => return Err(self.unexpected("a cardinality upper bound or `*`")),
        };
        Ok(Cardinality {
            min,
            max,
            span: Span {
                start,
                end: self.pos(),
            },
        })
    }

    fn key_constraint(&mut self) -> Result<KeyConstraint, ParseError> {
        let start = self.pos();
        self.keyword("FOR")?;
        self.expect(TokenKind::ParenL)?;
        let (var, _) = self.name("a key variable")?;
        self.expect(TokenKind::Colon)?;
        let (label, _) = self.name("a node label")?;
        self.expect(TokenKind::ParenR)?;
        self.keyword("KEY")?;
        let mut fields = vec![self.key_ref(&var)?];
        while self.eat(TokenKind::Comma) {
            fields.push(self.key_ref(&var)?);
        }
        Ok(KeyConstraint {
            var,
            label,
            fields,
            span: Span::at(start),
        })
    }

    fn key_ref(&mut self, var: &str) -> Result<String, ParseError> {
        let (v, span) = self.name("the key variable")?;
        if v != var {
            return Err(ParseError::new(
                ParseErrorKind::Invalid(format!(
                    "key reference uses `{v}` but the constraint binds `{var}`"
                )),
                span.start,
            ));
        }
        self.expect(TokenKind::Dot)?;
        let (field, _) = self.name("a property name")?;
        Ok(field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_graph_type() {
        let gt = parse(
            "CREATE GRAPH TYPE Social STRICT {\n\
               ABSTRACT (Message { body STRING, OPTIONAL score INT }),\n\
               (Person { name STRING, OPTIONAL nick STRING ARRAY }),\n\
               (: Message & Post),\n\
               (:Person)-[:follows { since INT, OPTIONAL note STRING }]->(:Person)\n\
                   OUTGOING 0..* DISTINCT NO LOOPS,\n\
               (:Person)-[:wrote]->(:Post) INCOMING 1..1,\n\
               FOR (p : Person) KEY p.name\n\
             }",
        )
        .unwrap();
        assert_eq!(gt.name, "Social");
        assert_eq!(gt.mode, TypeMode::Strict);
        assert_eq!(gt.nodes.len(), 3);
        assert!(gt.nodes[0].is_abstract);
        assert_eq!(gt.nodes[2].labels, vec!["Message", "Post"]);
        assert_eq!(gt.edges.len(), 2);
        let follows = &gt.edges[0];
        assert!(follows.distinct && follows.no_loops);
        assert_eq!(follows.props.len(), 2);
        assert!(follows.props[1].optional);
        let wrote = &gt.edges[1];
        assert_eq!(
            wrote.incoming,
            Some(Cardinality {
                min: 1,
                max: Some(1),
                span: wrote.incoming.unwrap().span,
            })
        );
        assert_eq!(gt.keys.len(), 1);
        assert_eq!(gt.keys[0].fields, vec!["name"]);
    }

    #[test]
    fn mode_defaults_to_strict_and_loose_parses() {
        assert_eq!(
            parse("CREATE GRAPH TYPE G {}").unwrap().mode,
            TypeMode::Strict
        );
        assert_eq!(
            parse("CREATE GRAPH TYPE G LOOSE {}").unwrap().mode,
            TypeMode::Loose
        );
    }

    #[test]
    fn commas_between_elements_are_optional() {
        let gt = parse("CREATE GRAPH TYPE G { (A) (B) (:A)-[:r]->(:B) }").unwrap();
        assert_eq!(gt.nodes.len(), 2);
        assert_eq!(gt.edges.len(), 1);
    }

    #[test]
    fn open_marker_is_parsed() {
        let gt = parse("CREATE GRAPH TYPE G { (A OPEN) }").unwrap();
        assert!(gt.nodes[0].open);
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("CREATE GRAPH TYPE G {\n  (Person { name })\n}").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::Unexpected { .. }));
    }

    #[test]
    fn key_variable_mismatch_is_reported() {
        let err =
            parse("CREATE GRAPH TYPE G { (A { x STRING }), FOR (a : A) KEY b.x }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Invalid(_)));
    }

    #[test]
    fn truncated_input_reports_eof() {
        let err = parse("CREATE GRAPH TYPE G {").unwrap_err();
        assert!(err.to_string().contains("end of input"), "{err}");
    }
}
