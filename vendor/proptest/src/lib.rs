//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements the subset of proptest the workspace's property
//! tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_flat_map`, `prop_recursive` and `boxed`;
//! * strategies for integer ranges, `&str` regex-subset patterns,
//!   tuples, [`Just`](strategy::Just), unions (`prop_oneof!`),
//!   [`collection::vec`], [`option::of`] and [`arbitrary::any`];
//! * the [`proptest!`] macro plus [`prop_assert!`] / [`prop_assert_eq!`],
//!   with a deterministic per-test-case RNG.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its exact inputs (all
//!   generated values are `Debug`) but is not minimised.
//! * **Deterministic seeds.** Case `i` of test `t` always sees the same
//!   input stream, so failures reproduce without a persistence file.
//! * The string-pattern language covers the subset used here: literal
//!   characters, escapes, character classes with ranges, `\PC`
//!   (any non-control char) and `{m}` / `{m,n}` repetition.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules, as in `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// The property-test entry macro.
///
/// Supports an optional leading `#![proptest_config(expr)]`, then any
/// number of `#[test] fn name(arg in strategy, ...) { body }` items
/// (attributes and doc comments are passed through verbatim, so each
/// item keeps its own `#[test]` marker).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = { $crate::test_runner::Config::default() };
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = { $cfg:expr }; ) => {};
    (cfg = { $cfg:expr };
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), &$arg
                        ));)+
                        s
                    };
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => ::std::result::Result::Ok(()),
                        ::std::result::Result::Err(e) =>
                            ::std::result::Result::Err((e, __inputs)),
                    }
                },
            );
        }
        $crate::__proptest_items! { cfg = { $cfg }; $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n{}",
                    l, r, format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: {:?}",
            l
        );
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
