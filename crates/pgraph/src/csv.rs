//! CSV bulk import, in the style of graph-database loaders (Neo4j's
//! `neo4j-admin import`, TigerGraph's loading jobs — the systems §2.1 of
//! the paper surveys).
//!
//! Two files describe a graph:
//!
//! * **nodes CSV** — header `id:ID,label:LABEL,name:String,age:Int,…`;
//!   every row is one node. `id:ID` (row identifier for edge references)
//!   and `label:LABEL` are mandatory columns; every other column is a
//!   property with a type suffix.
//! * **edges CSV** — header
//!   `source:START_ID,target:END_ID,label:TYPE,weight:Float,…`.
//!
//! Supported property types: `Int`, `Float`, `String`, `Boolean`, `ID`,
//! `Enum`, and list variants `[T]` (elements separated by `;`). Empty
//! cells mean "property absent". Quoted fields follow RFC-4180 (`""`
//! escapes a quote).

use std::collections::HashMap;
use std::fmt;

use crate::{NodeId, PropertyGraph, Value};

/// A CSV import failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header is missing a mandatory column.
    MissingColumn(&'static str),
    /// A column header lacks the `name:Type` shape or uses an unknown type.
    BadHeader(String),
    /// A data row has more cells than the header.
    RowTooLong {
        /// 1-based line number.
        line: usize,
    },
    /// A cell could not be parsed at the column's declared type.
    BadCell {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: String,
        /// Cell contents.
        cell: String,
    },
    /// An edge row references an unknown node id.
    UnknownNode {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        id: String,
    },
    /// Two node rows share an id.
    DuplicateNodeId(String),
    /// A quoted field never closed.
    UnterminatedQuote {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::MissingColumn(c) => write!(f, "missing mandatory column `{c}`"),
            CsvError::BadHeader(h) => write!(f, "bad header column `{h}`"),
            CsvError::RowTooLong { line } => write!(f, "line {line}: more cells than headers"),
            CsvError::BadCell { line, column, cell } => {
                write!(
                    f,
                    "line {line}: cell {cell:?} does not parse for column `{column}`"
                )
            }
            CsvError::UnknownNode { line, id } => {
                write!(f, "line {line}: unknown node id {id:?}")
            }
            CsvError::DuplicateNodeId(id) => write!(f, "duplicate node id {id:?}"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColType {
    Id,
    Label,
    StartId,
    EndId,
    EdgeType,
    Prop(PropType),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PropType {
    Int,
    Float,
    String,
    Boolean,
    IdVal,
    Enum,
    List(InnerType),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InnerType {
    Int,
    Float,
    String,
    Boolean,
    IdVal,
    Enum,
}

struct Column {
    name: String,
    ty: ColType,
}

fn parse_header(line: &str, edges: bool) -> Result<Vec<Column>, CsvError> {
    // In a nodes file, the FIRST `:ID` column is the row identifier;
    // later `:ID` columns are ordinary ID-typed properties.
    let mut id_seen = false;
    split_row(line, 1)?
        .into_iter()
        .map(|cell| {
            let (name, ty) = cell
                .rsplit_once(':')
                .ok_or_else(|| CsvError::BadHeader(cell.clone()))?;
            let ty = match ty {
                "ID" if !edges && !id_seen => {
                    id_seen = true;
                    ColType::Id
                }
                "LABEL" => ColType::Label,
                "START_ID" => ColType::StartId,
                "END_ID" => ColType::EndId,
                "TYPE" => ColType::EdgeType,
                other => ColType::Prop(
                    parse_prop_type(other).ok_or_else(|| CsvError::BadHeader(cell.clone()))?,
                ),
            };
            Ok(Column {
                name: name.to_owned(),
                ty,
            })
        })
        .collect()
}

fn parse_prop_type(t: &str) -> Option<PropType> {
    let inner = |t: &str| match t {
        "Int" => Some(InnerType::Int),
        "Float" => Some(InnerType::Float),
        "String" => Some(InnerType::String),
        "Boolean" => Some(InnerType::Boolean),
        "ID" => Some(InnerType::IdVal),
        "Enum" => Some(InnerType::Enum),
        _ => None,
    };
    if let Some(stripped) = t.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        return inner(stripped).map(PropType::List);
    }
    Some(match t {
        "Int" => PropType::Int,
        "Float" => PropType::Float,
        "String" => PropType::String,
        "Boolean" => PropType::Boolean,
        "ID" => PropType::IdVal,
        "Enum" => PropType::Enum,
        _ => return None,
    })
}

fn parse_scalar(cell: &str, ty: InnerType) -> Option<Value> {
    Some(match ty {
        InnerType::Int => Value::Int(cell.trim().parse().ok()?),
        InnerType::Float => Value::Float(cell.trim().parse().ok()?),
        InnerType::String => Value::String(cell.to_owned()),
        InnerType::Boolean => match cell.trim() {
            "true" | "TRUE" | "1" => Value::Bool(true),
            "false" | "FALSE" | "0" => Value::Bool(false),
            _ => return None,
        },
        InnerType::IdVal => Value::Id(cell.trim().to_owned()),
        InnerType::Enum => Value::Enum(cell.trim().to_owned()),
    })
}

fn parse_cell(cell: &str, ty: PropType) -> Option<Value> {
    match ty {
        PropType::Int => parse_scalar(cell, InnerType::Int),
        PropType::Float => parse_scalar(cell, InnerType::Float),
        PropType::String => parse_scalar(cell, InnerType::String),
        PropType::Boolean => parse_scalar(cell, InnerType::Boolean),
        PropType::IdVal => parse_scalar(cell, InnerType::IdVal),
        PropType::Enum => parse_scalar(cell, InnerType::Enum),
        PropType::List(inner) => {
            if cell.is_empty() {
                return Some(Value::List(Vec::new()));
            }
            cell.split(';')
                .map(|item| parse_scalar(item, inner))
                .collect::<Option<Vec<Value>>>()
                .map(Value::List)
        }
    }
}

/// Splits one CSV row (RFC-4180 quoting).
fn split_row(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => cur.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => cells.push(std::mem::take(&mut cur)),
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: line_no });
    }
    cells.push(cur);
    Ok(cells)
}

/// Loads a graph from nodes CSV and edges CSV texts.
pub fn from_csv(nodes_csv: &str, edges_csv: &str) -> Result<PropertyGraph, CsvError> {
    let mut g = PropertyGraph::new();
    let mut by_row_id: HashMap<String, NodeId> = HashMap::new();

    let mut node_lines = nodes_csv.lines().enumerate();
    let header = loop {
        match node_lines.next() {
            None => return Err(CsvError::MissingColumn("id:ID")),
            Some((_, l)) if l.trim().is_empty() => continue,
            Some((_, l)) => break parse_header(l, false)?,
        }
    };
    if !header.iter().any(|c| c.ty == ColType::Id) {
        return Err(CsvError::MissingColumn("id:ID"));
    }
    if !header.iter().any(|c| c.ty == ColType::Label) {
        return Err(CsvError::MissingColumn("label:LABEL"));
    }
    for (ix, line) in node_lines {
        let line_no = ix + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cells = split_row(line, line_no)?;
        if cells.len() > header.len() {
            return Err(CsvError::RowTooLong { line: line_no });
        }
        let mut row_id = None;
        let mut label = None;
        let mut props: Vec<(String, Value)> = Vec::new();
        for (col, cell) in header.iter().zip(&cells) {
            match col.ty {
                ColType::Id => row_id = Some(cell.clone()),
                ColType::Label => label = Some(cell.clone()),
                ColType::Prop(pty) => {
                    if cell.is_empty() {
                        continue;
                    }
                    let v = parse_cell(cell, pty).ok_or_else(|| CsvError::BadCell {
                        line: line_no,
                        column: col.name.clone(),
                        cell: cell.clone(),
                    })?;
                    props.push((col.name.clone(), v));
                }
                _ => {
                    return Err(CsvError::BadHeader(format!(
                        "{}: edge column in nodes file",
                        col.name
                    )))
                }
            }
        }
        let row_id = row_id.filter(|r| !r.is_empty()).ok_or(CsvError::BadCell {
            line: line_no,
            column: "id".to_owned(),
            cell: String::new(),
        })?;
        let label = label.unwrap_or_default();
        if by_row_id.contains_key(&row_id) {
            return Err(CsvError::DuplicateNodeId(row_id));
        }
        let node = g.add_node(label);
        for (k, v) in props {
            g.set_node_property(node, k, v);
        }
        by_row_id.insert(row_id, node);
    }

    let mut edge_lines = edges_csv.lines().enumerate();
    let header = loop {
        match edge_lines.next() {
            None => return Ok(g), // no edges file content: nodes only
            Some((_, l)) if l.trim().is_empty() => continue,
            Some((_, l)) => break parse_header(l, true)?,
        }
    };
    for required in [ColType::StartId, ColType::EndId, ColType::EdgeType] {
        if !header.iter().any(|c| c.ty == required) {
            return Err(CsvError::MissingColumn(match required {
                ColType::StartId => "source:START_ID",
                ColType::EndId => "target:END_ID",
                _ => "label:TYPE",
            }));
        }
    }
    for (ix, line) in edge_lines {
        let line_no = ix + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cells = split_row(line, line_no)?;
        if cells.len() > header.len() {
            return Err(CsvError::RowTooLong { line: line_no });
        }
        let mut src = None;
        let mut dst = None;
        let mut label = None;
        let mut props: Vec<(String, Value)> = Vec::new();
        for (col, cell) in header.iter().zip(&cells) {
            match col.ty {
                ColType::StartId => src = Some(cell.clone()),
                ColType::EndId => dst = Some(cell.clone()),
                ColType::EdgeType => label = Some(cell.clone()),
                ColType::Prop(pty) => {
                    if cell.is_empty() {
                        continue;
                    }
                    let v = parse_cell(cell, pty).ok_or_else(|| CsvError::BadCell {
                        line: line_no,
                        column: col.name.clone(),
                        cell: cell.clone(),
                    })?;
                    props.push((col.name.clone(), v));
                }
                ColType::Id | ColType::Label => {
                    return Err(CsvError::BadHeader(format!(
                        "{}: node column in edges file",
                        col.name
                    )))
                }
            }
        }
        let resolve = |id: Option<String>| -> Result<NodeId, CsvError> {
            let id = id.unwrap_or_default();
            by_row_id
                .get(&id)
                .copied()
                .ok_or(CsvError::UnknownNode { line: line_no, id })
        };
        let src = resolve(src)?;
        let dst = resolve(dst)?;
        let e = g
            .add_edge(src, dst, label.unwrap_or_default())
            .expect("resolved endpoints exist");
        for (k, v) in props {
            g.set_edge_property(e, k, v);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES: &str = "\
id:ID,label:LABEL,login:String,age:Int,nicknames:[String]
u1,User,alice,30,al;lice
u2,User,bob,25,
p1,Post,,,
";

    const EDGES: &str = "\
source:START_ID,target:END_ID,label:TYPE,certainty:Float
u1,u2,follows,0.9
u1,p1,authored,
";

    #[test]
    fn loads_nodes_and_edges() {
        let g = from_csv(NODES, EDGES).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let alice = g
            .nodes()
            .find(|n| n.property("login") == Some(&Value::from("alice")))
            .unwrap();
        assert_eq!(alice.label(), "User");
        assert_eq!(alice.property("age"), Some(&Value::Int(30)));
        assert_eq!(
            alice.property("nicknames"),
            Some(&Value::from(vec!["al", "lice"]))
        );
        let follows = g.edges().find(|e| e.label() == "follows").unwrap();
        assert_eq!(follows.property("certainty"), Some(&Value::Float(0.9)));
        let authored = g.edges().find(|e| e.label() == "authored").unwrap();
        assert_eq!(authored.property("certainty"), None); // empty cell
    }

    #[test]
    fn empty_cells_mean_absent_properties() {
        let g = from_csv(NODES, "").unwrap();
        let bob = g
            .nodes()
            .find(|n| n.property("login") == Some(&Value::from("bob")))
            .unwrap();
        assert_eq!(bob.property("nicknames"), None);
        let post = g.nodes().find(|n| n.label() == "Post").unwrap();
        assert_eq!(post.property_count(), 0);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let nodes =
            "id:ID,label:LABEL,bio:String\nu1,User,\"likes, among others, \"\"graphs\"\"\"\n";
        let g = from_csv(nodes, "").unwrap();
        let u = g.nodes().next().unwrap();
        assert_eq!(
            u.property("bio"),
            Some(&Value::from("likes, among others, \"graphs\""))
        );
    }

    #[test]
    fn errors_are_reported_with_lines() {
        assert_eq!(
            from_csv("label:LABEL\nUser\n", "").unwrap_err(),
            CsvError::MissingColumn("id:ID")
        );
        assert!(matches!(
            from_csv("id:ID,label:LABEL,age:Int\nu1,User,abc\n", ""),
            Err(CsvError::BadCell { line: 2, .. })
        ));
        assert!(matches!(
            from_csv(
                NODES,
                "source:START_ID,target:END_ID,label:TYPE\nu1,ghost,x\n"
            ),
            Err(CsvError::UnknownNode { line: 2, .. })
        ));
        assert_eq!(
            from_csv("id:ID,label:LABEL\nu1,User\nu1,User\n", "").unwrap_err(),
            CsvError::DuplicateNodeId("u1".into())
        );
        assert!(matches!(
            from_csv("id:ID,label:LABEL,x:Complex\n", ""),
            Err(CsvError::BadHeader(_))
        ));
        assert!(matches!(
            from_csv("id:ID,label:LABEL\nu1,\"User\n", ""),
            Err(CsvError::UnterminatedQuote { line: 2 })
        ));
    }

    #[test]
    fn boolean_and_enum_and_id_cells() {
        let nodes = "id:ID,label:LABEL,ok:Boolean,unit:Enum,ref:ID\nu1,T,true,METER,x-9\n";
        let g = from_csv(nodes, "").unwrap();
        let n = g.nodes().next().unwrap();
        assert_eq!(n.property("ok"), Some(&Value::Bool(true)));
        assert_eq!(n.property("unit"), Some(&Value::Enum("METER".into())));
        assert_eq!(n.property("ref"), Some(&Value::Id("x-9".into())));
    }

    #[test]
    fn csv_import_then_validate_roundtrip() {
        // End-to-end: CSV → graph → JSON → graph.
        let g = from_csv(NODES, EDGES).unwrap();
        let back = crate::json::from_json(&crate::json::to_json(&g)).unwrap();
        assert_eq!(g, back);
    }
}
