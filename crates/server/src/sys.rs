//! Thin std-only FFI over the Linux readiness APIs the reactor needs:
//! `epoll(7)`, `eventfd(2)` and `writev(2)`.
//!
//! Same philosophy as [`crate::signal`]: the workspace takes no
//! dependencies, so instead of the `libc` crate these are direct
//! `extern "C"` declarations of the handful of symbols used, wrapped in
//! safe RAII types ([`Epoll`], [`EventFd`]) that own their file
//! descriptors. Everything returns `io::Result`, translating `-1` via
//! `io::Error::last_os_error()`.

use std::io;
use std::os::fd::RawFd;

/// `EPOLLIN` — the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT` — the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR` — error condition (always reported, no need to register).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP` — hang-up (always reported, no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP` — peer shut down the writing half of the connection.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`.
///
/// On x86-64 glibc declares it `__attribute__((packed))` (12 bytes, the
/// 64-bit data field unaligned) because that is the kernel ABI there; on
/// other architectures it is naturally aligned. Getting this wrong makes
/// `epoll_wait` scribble events at the wrong offsets, so the layout is
/// selected per-arch and the size is asserted in the tests below.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token carried back with each event (the reactor
    /// stores the connection's fd here).
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event, for sizing the `epoll_wait` output buffer.
    pub fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

#[repr(C)]
struct IoVec {
    base: *const u8,
    len: usize,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance. Dropping closes the descriptor.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    /// Registers `fd` for the `events` readiness mask, tagging its
    /// notifications with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the readiness mask of an already registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Blocks up to `timeout_ms` for readiness, filling `events` from the
    /// front; returns how many fired. A signal interrupting the wait
    /// (`EINTR` — e.g. SIGTERM hitting this thread) reports as zero
    /// events so the caller re-checks its shutdown flag.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// An owned nonblocking `eventfd`, used to wake a core's `epoll_wait`
/// from another thread (new connection in the inbox, migration, or
/// shutdown). Dropping closes the descriptor.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw descriptor, for registering with [`Epoll::add`].
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Wakes the owning core by adding 1 to the counter. Best-effort: a
    /// counter at `u64::MAX - 1` would block, but the reader always
    /// drains to zero, so in practice this never fails.
    pub fn signal(&self) {
        let one = 1u64.to_ne_bytes();
        unsafe { write(self.fd, one.as_ptr(), one.len()) };
    }

    /// Resets the counter to zero, consuming all pending wakes.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// Scatter-gather write: submits every buffer in `bufs` (minus the first
/// `skip` bytes, which a previous partial write already sent) in one
/// `writev` syscall. Returns how many bytes the kernel took; the caller
/// advances its queue and retries on the next `EPOLLOUT`.
pub fn write_vectored(fd: RawFd, bufs: &[Vec<u8>], skip: usize) -> io::Result<usize> {
    const MAX_IOV: usize = 64;
    let mut iov: [IoVec; MAX_IOV] = std::array::from_fn(|_| IoVec {
        base: std::ptr::null(),
        len: 0,
    });
    let mut count = 0;
    for (i, buf) in bufs.iter().take(MAX_IOV).enumerate() {
        let skip = if i == 0 { skip } else { 0 };
        iov[count] = IoVec {
            base: buf[skip..].as_ptr(),
            len: buf.len() - skip,
        };
        count += 1;
    }
    let n = unsafe { writev(fd, iov.as_ptr(), count as i32) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn epoll_event_matches_kernel_abi() {
        // Packed 12-byte layout — the x86-64 kernel ABI. A 16-byte
        // (aligned) layout here would corrupt every second event.
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
    }

    #[test]
    fn eventfd_wakes_epoll() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing signalled yet: the wait times out empty.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        efd.signal();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 7);
        assert_ne!({ ev.events } & EPOLLIN, 0);

        // Level-triggered: still readable until drained.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn writev_flushes_queued_buffers_with_skip() {
        use std::io::Read;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = std::net::TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();

        let bufs = vec![b"xxhello ".to_vec(), b"world".to_vec()];
        let fd = {
            use std::os::fd::AsRawFd;
            tx.as_raw_fd()
        };
        let sent = write_vectored(fd, &bufs, 2).unwrap();
        assert_eq!(sent, 11);
        let mut got = [0u8; 11];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello world");
    }
}
