//! A fluent bulk-construction API.
//!
//! [`GraphBuilder`] lets tests, examples and generators describe graphs by
//! *names* instead of ids, so fixture code reads like the figures in the
//! paper:
//!
//! ```
//! use pgraph::{GraphBuilder, Value};
//!
//! let g = GraphBuilder::new()
//!     .node("alice", "User")
//!     .prop("alice", "login", "alice")
//!     .node("s1", "UserSession")
//!     .edge("s1", "alice", "user")
//!     .build()
//!     .unwrap();
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.edge_count(), 1);
//! let _ = Value::Null; // silence unused import in doctest
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::{EdgeId, NodeId, PropertyGraph, Value};

/// Errors raised when a builder script is internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two `node` calls used the same name.
    DuplicateNode(String),
    /// A `prop`/`edge` call referred to a node name never declared.
    UnknownNode(String),
    /// An `edge_prop` call referred to an edge index that does not exist.
    UnknownEdge(usize),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateNode(n) => write!(f, "duplicate node name {n:?}"),
            BuildError::UnknownNode(n) => write!(f, "unknown node name {n:?}"),
            BuildError::UnknownEdge(i) => write!(f, "unknown edge #{i}"),
        }
    }
}

impl std::error::Error for BuildError {}

enum Op {
    Node {
        name: String,
        label: String,
    },
    NodeProp {
        name: String,
        key: String,
        value: Value,
    },
    Edge {
        src: String,
        dst: String,
        label: String,
    },
    EdgeProp {
        edge: usize,
        key: String,
        value: Value,
    },
}

/// Collects a graph description and materialises it with [`build`].
///
/// [`build`]: GraphBuilder::build
#[derive(Default)]
pub struct GraphBuilder {
    ops: Vec<Op>,
    edge_count: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a node with a unique `name` and a label.
    pub fn node(mut self, name: impl Into<String>, label: impl Into<String>) -> Self {
        self.ops.push(Op::Node {
            name: name.into(),
            label: label.into(),
        });
        self
    }

    /// Sets a property on a previously declared node.
    pub fn prop(
        mut self,
        name: impl Into<String>,
        key: impl Into<String>,
        value: impl Into<Value>,
    ) -> Self {
        self.ops.push(Op::NodeProp {
            name: name.into(),
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Declares an edge between two named nodes. Edges are numbered in
    /// declaration order for use with [`edge_prop`].
    ///
    /// [`edge_prop`]: GraphBuilder::edge_prop
    pub fn edge(
        mut self,
        src: impl Into<String>,
        dst: impl Into<String>,
        label: impl Into<String>,
    ) -> Self {
        self.ops.push(Op::Edge {
            src: src.into(),
            dst: dst.into(),
            label: label.into(),
        });
        self.edge_count += 1;
        self
    }

    /// Sets a property on the most recently declared edge.
    pub fn edge_prop(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        let edge = self.edge_count.saturating_sub(1);
        self.ops.push(Op::EdgeProp {
            edge,
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Sets a property on the `i`-th declared edge (0-based).
    pub fn nth_edge_prop(
        mut self,
        i: usize,
        key: impl Into<String>,
        value: impl Into<Value>,
    ) -> Self {
        self.ops.push(Op::EdgeProp {
            edge: i,
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Materialises the graph, resolving names to ids.
    pub fn build(self) -> Result<PropertyGraph, BuildError> {
        let mut g = PropertyGraph::new();
        let mut names: HashMap<String, NodeId> = HashMap::new();
        let mut edges: Vec<EdgeId> = Vec::with_capacity(self.edge_count);
        // First pass: create all nodes so that forward edge references work.
        for op in &self.ops {
            if let Op::Node { name, label } = op {
                if names.contains_key(name) {
                    return Err(BuildError::DuplicateNode(name.clone()));
                }
                let id = g.add_node(label.clone());
                names.insert(name.clone(), id);
            }
        }
        for op in self.ops {
            match op {
                Op::Node { .. } => {}
                Op::NodeProp { name, key, value } => {
                    let id = *names
                        .get(&name)
                        .ok_or_else(|| BuildError::UnknownNode(name.clone()))?;
                    g.set_node_property(id, key, value);
                }
                Op::Edge { src, dst, label } => {
                    let s = *names
                        .get(&src)
                        .ok_or_else(|| BuildError::UnknownNode(src.clone()))?;
                    let d = *names
                        .get(&dst)
                        .ok_or_else(|| BuildError::UnknownNode(dst.clone()))?;
                    let e = g.add_edge(s, d, label).expect("endpoints exist");
                    edges.push(e);
                }
                Op::EdgeProp { edge, key, value } => {
                    let id = *edges.get(edge).ok_or(BuildError::UnknownEdge(edge))?;
                    g.set_edge_property(id, key, value);
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_named_graph() {
        let g = GraphBuilder::new()
            .node("a", "A")
            .node("b", "B")
            .edge("a", "b", "rel")
            .edge_prop("weight", 3i64)
            .prop("a", "name", "first")
            .build()
            .unwrap();
        assert_eq!(g.node_count(), 2);
        let e = g.edges().next().unwrap();
        assert_eq!(e.property("weight"), Some(&Value::Int(3)));
        let a = g.nodes().find(|n| n.label() == "A").unwrap();
        assert_eq!(a.property("name"), Some(&Value::from("first")));
    }

    #[test]
    fn forward_edge_references_work() {
        let g = GraphBuilder::new()
            .edge("x", "y", "rel")
            .node("x", "X")
            .node("y", "Y")
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = GraphBuilder::new()
            .node("a", "A")
            .node("a", "A2")
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::DuplicateNode("a".into()));
    }

    #[test]
    fn unknown_names_rejected() {
        let err = GraphBuilder::new()
            .node("a", "A")
            .edge("a", "ghost", "rel")
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownNode("ghost".into()));
        let err = GraphBuilder::new()
            .prop("ghost", "k", 1i64)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownNode("ghost".into()));
    }

    #[test]
    fn nth_edge_prop_targets_specific_edge() {
        let g = GraphBuilder::new()
            .node("a", "A")
            .node("b", "B")
            .edge("a", "b", "e0")
            .edge("a", "b", "e1")
            .nth_edge_prop(0, "k", 1i64)
            .build()
            .unwrap();
        let first = g.edges().find(|e| e.label() == "e0").unwrap();
        let second = g.edges().find(|e| e.label() == "e1").unwrap();
        assert_eq!(first.property("k"), Some(&Value::Int(1)));
        assert_eq!(second.property("k"), None);
    }

    #[test]
    fn edge_prop_without_edge_is_rejected() {
        let err = GraphBuilder::new()
            .node("a", "A")
            .edge_prop("k", 1i64)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownEdge(0));
    }
}
