//! # pg-store — durable sessions for pg-schemad
//!
//! A write-ahead log plus snapshots for the server's validation
//! sessions, std-only like the rest of the workspace. The unit of
//! durability is the [`StoreRecord`]: session created (schema SDL +
//! initial graph), delta applied, session deleted. Records are framed
//! with a length prefix and a CRC-32 over the payload, carry strictly
//! monotonic sequence numbers, and are appended to segment files named
//! after their first sequence number. Snapshots capture every live
//! session in full and are written to a temp file then atomically
//! renamed, so a crash never leaves a half-snapshot with a valid name.
//!
//! Recovery ([`Store::open`]) memory-maps the newest snapshot that
//! passes its checksum and replays the WAL tail on top, truncating at
//! the first torn or corrupt frame — see [`recover`](self) internals
//! and DESIGN §Store for the exact invariants. Current-format (`PGS2`)
//! snapshots embed each graph as a verbatim `PGCS` columnar image, so
//! recovery validates headers and CRCs but deserializes **nothing**:
//! sessions come back as [`LazyGraph`]s pointing into the mapped file
//! and materialize only when touched. Compaction
//! ([`Store::try_begin_compaction`]) rotates the log, snapshots the
//! sessions the caller feeds it, and deletes the superseded segments.
//!
//! What fsync costs is the caller's choice per [`FsyncPolicy`]:
//! `always` syncs before every acknowledgement (no acknowledged write is
//! ever lost), `interval` bounds the loss window by time, `never` leaves
//! flushing entirely to the OS.
//!
//! Replication reads the same log: [`Store::read_tail`] serves raw
//! frames to followers, [`Store::append_replicated`] ingests them on the
//! follower with leader sequence numbers preserved (so the follower's
//! WAL is byte-identical to the leader's shipped prefix), and
//! [`Store::begin_handoff`] / [`install_snapshot`] bootstrap an empty
//! follower from a snapshot. The wire format is specified normatively in
//! `docs/replication.md`; its constants live in [`wire`] and the spec's
//! tables are tested against them.
//!
//! ```no_run
//! use pg_store::{FsyncPolicy, Store};
//!
//! let (store, recovered) = Store::open("/var/lib/pgschema", FsyncPolicy::Always)?;
//! println!("recovered {} sessions", recovered.sessions.len());
//! let seq = store.append_delete(42)?;
//! assert!(seq >= 1);
//! # Ok::<(), std::io::Error>(())
//! ```

// `deny` rather than `forbid`: the `mmap` module opts back in for its
// two audited `mmap(2)`/`munmap(2)` calls; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod crc32;
mod files;
mod lazy;
mod mmap;
mod record;
mod recover;
mod scan;
mod snapshot;
pub mod wire;

pub use lazy::{GraphPayload, LazyGraph};
pub use record::{MigrationPhase, StoreRecord};
pub use scan::{scan, ScanReport, SegmentInfo, SnapshotInfo};
pub use snapshot::{GraphDesc, SnapshotDesc};

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pgraph::{GraphDelta, PropertyGraph};

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` before every append acknowledges — an acknowledged
    /// write survives any crash.
    Always,
    /// Sync at most once per interval (checked on append): bounded loss
    /// window, near-`Never` throughput.
    Interval(Duration),
    /// Never sync explicitly; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// The accepted spellings of [`FromStr`](std::str::FromStr).
    pub const NAMES: &'static [&'static str] = &["always", "interval[:millis]", "never"];
}

/// Parses the `--fsync` flag: `always`, `never`, `interval` (100 ms
/// default) or `interval:<millis>`. The error lists the accepted
/// spellings.
impl std::str::FromStr for FsyncPolicy {
    type Err = pgraph::ParseEnumError;

    fn from_str(name: &str) -> Result<FsyncPolicy, Self::Err> {
        let unknown = || pgraph::ParseEnumError::new("fsync policy", name, FsyncPolicy::NAMES);
        match name {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::Interval(Duration::from_millis(100))),
            _ => {
                let millis: u64 = name
                    .strip_prefix("interval:")
                    .and_then(|m| m.parse().ok())
                    .ok_or_else(unknown)?;
                Ok(FsyncPolicy::Interval(Duration::from_millis(millis)))
            }
        }
    }
}

/// One session as reconstructed by recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredSession {
    /// The session id.
    pub id: u64,
    /// The schema's SDL source (the caller re-parses it).
    pub schema_sdl: String,
    /// The graph with every recovered delta applied. Recovered from a
    /// current-format (`PGS2`) snapshot with no WAL records to replay,
    /// this is still a zero-copy [`LazyGraph::is_mapped`] view into the
    /// memory-mapped snapshot file; it materializes on first use.
    pub graph: LazyGraph,
    /// How many deltas applied successfully over the session's life.
    pub deltas_applied: u64,
    /// Sequence number of the last record reflected in `graph`.
    pub last_seq: u64,
    /// The candidate schema SDL of an open migration window (a
    /// `SchemaChange(begin)` with no commit/abort yet), if any.
    pub pending_migration: Option<String>,
}

/// A torn or corrupt WAL tail found (and removed) during recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct TornTail {
    /// The segment that was truncated.
    pub segment: PathBuf,
    /// The byte offset it was truncated to.
    pub offset: u64,
    /// Human-readable cause (CRC mismatch, torn payload, …).
    pub reason: String,
    /// Later segments that were discarded wholesale.
    pub segments_dropped: usize,
}

/// Diagnostics of one recovery pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryInfo {
    /// Generation of the snapshot that seeded recovery, if any.
    pub snapshot_generation: Option<u64>,
    /// Newer snapshots that failed their checksum and were ignored.
    pub snapshots_skipped: usize,
    /// WAL records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Records skipped as already covered by the snapshot (or aimed at
    /// sessions that no longer exist).
    pub records_skipped: u64,
    /// The torn tail, when one was found.
    pub truncated: Option<TornTail>,
}

/// Everything [`Store::open`] reconstructed from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Live sessions, ascending by id.
    pub sessions: Vec<RecoveredSession>,
    /// The next session id to hand out (ids are never reused).
    pub next_session_id: u64,
    /// How recovery went.
    pub info: RecoveryInfo,
}

/// A point-in-time copy of the store's counters (`/metrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended since open.
    pub appends: u64,
    /// Explicit fsyncs issued since open.
    pub fsyncs: u64,
    /// Bytes appended since open.
    pub appended_bytes: u64,
    /// Snapshots written since open.
    pub snapshots: u64,
    /// Current bytes across live WAL segments (the compaction trigger).
    pub wal_size_bytes: u64,
}

struct Wal {
    file: File,
    /// Live segments in replay order; the last is the append target.
    segments: Vec<(u64, PathBuf)>,
    /// First sequence number of the append segment.
    current_first_seq: u64,
    next_seq: u64,
    /// One past the last record physically in the WAL — the replication
    /// cursor. Equals `next_seq` on a node that appends its own records;
    /// lags behind it on a follower bootstrapped from a snapshot whose
    /// sessions were captured past the snapshot's `base_seq`
    /// ([`Store::append_replicated`] closes the gap).
    tail_cursor: u64,
    snapshot_generation: u64,
    last_sync: Instant,
    dirty: bool,
}

/// The write-ahead log + snapshot store. All methods take `&self`; the
/// WAL is serialised by an internal mutex, counters are atomics.
pub struct Store {
    dir: PathBuf,
    fsync: FsyncPolicy,
    wal: Mutex<Wal>,
    compacting: AtomicBool,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    appended_bytes: AtomicU64,
    snapshots: AtomicU64,
    wal_bytes: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store directory, running recovery:
    /// newest valid snapshot + WAL tail replay, torn tails truncated.
    pub fn open(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> io::Result<(Store, Recovered)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let (recovered, position) = recover::recover(&dir)?;
        let mut segments = position.segments;
        let mut live_bytes = position.live_bytes;
        let (current_first_seq, file) = match segments.last() {
            Some((first_seq, path)) => (*first_seq, OpenOptions::new().append(true).open(path)?),
            None => {
                // Name the fresh segment after the replication cursor,
                // not `next_seq`: on a snapshot-bootstrapped follower the
                // first frames appended here are the leader's records
                // from `base_seq + 1` on.
                let first_seq = position.tail_cursor;
                let path = files::segment_path(&dir, first_seq);
                let file = OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(&path)?;
                files::sync_dir(&dir);
                segments.push((first_seq, path));
                live_bytes = 0;
                (first_seq, file)
            }
        };
        let store = Store {
            fsync,
            wal: Mutex::new(Wal {
                file,
                segments,
                current_first_seq,
                next_seq: position.next_seq,
                tail_cursor: position.tail_cursor,
                snapshot_generation: position.snapshot_generation,
                last_sync: Instant::now(),
                dirty: false,
            }),
            compacting: AtomicBool::new(false),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            appended_bytes: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(live_bytes),
            dir,
        };
        Ok((store, recovered))
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Logs a session creation; returns the record's sequence number
    /// once it is durable per the fsync policy.
    pub fn append_create(
        &self,
        session: u64,
        schema_sdl: &str,
        graph: &PropertyGraph,
    ) -> io::Result<u64> {
        self.append(&StoreRecord::Create {
            session,
            schema_sdl: schema_sdl.to_owned(),
            graph: graph.clone(),
        })
    }

    /// Logs a delta applied to a session.
    pub fn append_delta(&self, session: u64, delta: &GraphDelta) -> io::Result<u64> {
        self.append(&StoreRecord::Delta {
            session,
            delta: delta.clone(),
        })
    }

    /// Logs a session deletion.
    pub fn append_delete(&self, session: u64) -> io::Result<u64> {
        self.append(&StoreRecord::Delete { session })
    }

    /// Logs a schema-migration phase transition on a session. Pass the
    /// candidate schema's SDL for [`MigrationPhase::Begin`]; commit and
    /// abort carry no SDL (recovery resolves the pending one).
    pub fn append_schema_change(
        &self,
        session: u64,
        phase: MigrationPhase,
        schema_sdl: &str,
    ) -> io::Result<u64> {
        self.append(&StoreRecord::SchemaChange {
            session,
            phase,
            schema_sdl: schema_sdl.to_owned(),
        })
    }

    fn append(&self, record: &StoreRecord) -> io::Result<u64> {
        let mut wal = self.wal.lock().unwrap();
        let seq = wal.next_seq;
        let frame = record::encode_frame(seq, record);
        wal.file.write_all(&frame)?;
        wal.next_seq += 1;
        wal.tail_cursor = wal.next_seq;
        wal.dirty = true;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.appended_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.wal_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        let sync_now = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(every) => wal.last_sync.elapsed() >= every,
            FsyncPolicy::Never => false,
        };
        if sync_now {
            wal.file.sync_data()?;
            wal.dirty = false;
            wal.last_sync = Instant::now();
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(seq)
    }

    /// Forces any buffered appends to stable storage regardless of
    /// policy (graceful-shutdown path).
    pub fn sync(&self) -> io::Result<()> {
        let mut wal = self.wal.lock().unwrap();
        if wal.dirty {
            wal.file.sync_data()?;
            wal.dirty = false;
            wal.last_sync = Instant::now();
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            appends: self.appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            appended_bytes: self.appended_bytes.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            wal_size_bytes: self.wal_bytes.load(Ordering::Relaxed),
        }
    }

    /// Bytes across live WAL segments — the size-threshold compaction
    /// trigger reads this without taking the WAL lock.
    pub fn wal_size_bytes(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }

    /// The next sequence number this store would assign to an append.
    /// `next_seq() - 1` is the newest record reflected anywhere in the
    /// store (WAL or snapshot).
    pub fn next_seq(&self) -> u64 {
        self.wal.lock().unwrap().next_seq
    }

    /// The replication cursor: one past the last record physically in
    /// the WAL. This is the `from` a follower of *this* store's leader
    /// passes to the next `read_tail` request. It equals [`next_seq`]
    /// (Self::next_seq) except on a freshly snapshot-bootstrapped
    /// follower, where sessions captured after the snapshot's `base_seq`
    /// push `next_seq` ahead of the frames actually on disk.
    pub fn tail_cursor(&self) -> u64 {
        self.wal.lock().unwrap().tail_cursor
    }

    /// Reads the suffix of the WAL starting at sequence number `from`,
    /// returning whole raw frames (verbatim disk bytes, CRC included) up
    /// to roughly `max_bytes` — the leader side of `GET /wal/tail`.
    ///
    /// Reads race benignly with concurrent appends: frames are
    /// self-delimiting and checksummed, so a partially-written frame at
    /// the tail parses as torn and is simply not included (the follower
    /// re-requests it next poll). Records are bounded by the `next_seq`
    /// sampled at entry, so a batch never runs past the position it
    /// reports. At least one frame is returned even when it alone
    /// exceeds `max_bytes`, so a single giant record cannot wedge a
    /// follower.
    pub fn read_tail(&self, from: u64, max_bytes: usize) -> io::Result<Tail> {
        let (segments, end_seq) = {
            let wal = self.wal.lock().unwrap();
            (wal.segments.clone(), wal.next_seq)
        };
        let oldest_retained = segments.first().map(|(s, _)| *s).unwrap_or(1);
        if from < oldest_retained {
            // Compaction already dropped records at or above `from`; the
            // follower must bootstrap from a snapshot instead.
            return Ok(Tail::SnapshotRequired { oldest_retained });
        }
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut next_from = from;
        let mut taken = 0usize;
        let mut remaining_bytes = 0u64;
        let mut full = false;
        for (ix, (_, path)) in segments.iter().enumerate() {
            // Skip segments that end before `from`.
            if segments.get(ix + 1).is_some_and(|(next, _)| *next <= from) {
                continue;
            }
            if full {
                remaining_bytes += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                continue;
            }
            let buf = match std::fs::read(path) {
                Ok(buf) => buf,
                // A compaction may delete the segment between listing
                // and read; the follower just retries.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let parse = record::parse_segment(&buf);
            if let Some(unknown) = &parse.unknown {
                // A valid frame of an unknown kind in the local WAL: a
                // newer writer's record that this binary cannot serve
                // faithfully — refuse rather than silently drop it from
                // the shipped stream.
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!("{}: {}", path.display(), unknown.to_error()),
                ));
            }
            for i in 0..parse.records.len() {
                let parsed = &parse.records[i];
                if parsed.seq < from || parsed.seq >= end_seq {
                    continue;
                }
                let start = parsed.offset as usize;
                let end = parse
                    .records
                    .get(i + 1)
                    .map(|r| r.offset as usize)
                    .unwrap_or(parse.valid_len as usize);
                if full || (taken + (end - start) > max_bytes && !frames.is_empty()) {
                    full = true;
                    remaining_bytes += (end - start) as u64;
                    continue;
                }
                taken += end - start;
                frames.push(buf[start..end].to_vec());
                next_from = parsed.seq + 1;
            }
        }
        Ok(Tail::Batch(TailBatch {
            frames,
            next_from,
            end_seq,
            remaining_bytes,
        }))
    }

    /// Appends a batch of raw frames shipped from a leader, preserving
    /// their sequence numbers — the follower side of the tail protocol.
    ///
    /// Every frame is re-verified (length, CRC, structural decode)
    /// before anything is written; a bad frame ends the batch without
    /// erroring (`torn` says why) and the follower re-requests from its
    /// unchanged cursor. Frames below the local [`tail_cursor`]
    /// (Self::tail_cursor) are counted as duplicates and skipped —
    /// redelivery after a reconnect is idempotent — and the first
    /// non-duplicate frame must carry exactly the cursor's sequence
    /// number: a gap means the leader no longer retains records this
    /// store needs, which is divergence, not data.
    ///
    /// The returned records are decoded copies of what was appended, in
    /// order, for the caller to apply to its live state. Fsync policy
    /// applies to the batch as a whole.
    pub fn append_replicated(&self, frames: &[u8]) -> io::Result<ReplicatedBatch> {
        let parse = record::parse_segment(frames);
        if let Some(unknown) = &parse.unknown {
            // The leader shipped a record kind this follower does not
            // implement (newer leader, older follower). Appending it
            // blind would leave live state diverged from the WAL;
            // refuse the whole batch — nothing has been written yet —
            // so the follower stalls loudly instead of truncating.
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("leader batch: {}", unknown.to_error()),
            ));
        }
        let ends: Vec<usize> = parse
            .records
            .iter()
            .skip(1)
            .map(|r| r.offset as usize)
            .chain(std::iter::once(parse.valid_len as usize))
            .collect();
        let mut wal = self.wal.lock().unwrap();
        let mut records = Vec::new();
        let mut duplicates = 0u64;
        let mut appended_bytes = 0u64;
        for (parsed, end) in parse.records.into_iter().zip(ends) {
            if parsed.seq < wal.tail_cursor {
                duplicates += 1;
                continue;
            }
            if parsed.seq != wal.tail_cursor {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "replication gap: expected seq {} next, leader sent {}",
                        wal.tail_cursor, parsed.seq
                    ),
                ));
            }
            let frame = &frames[parsed.offset as usize..end];
            wal.file.write_all(frame)?;
            wal.tail_cursor = parsed.seq + 1;
            wal.next_seq = wal.next_seq.max(parsed.seq + 1);
            wal.dirty = true;
            appended_bytes += frame.len() as u64;
            records.push((parsed.seq, parsed.record));
        }
        if !records.is_empty() {
            self.appends
                .fetch_add(records.len() as u64, Ordering::Relaxed);
            self.appended_bytes
                .fetch_add(appended_bytes, Ordering::Relaxed);
            self.wal_bytes.fetch_add(appended_bytes, Ordering::Relaxed);
            let sync_now = match self.fsync {
                FsyncPolicy::Always => true,
                FsyncPolicy::Interval(every) => wal.last_sync.elapsed() >= every,
                FsyncPolicy::Never => false,
            };
            if sync_now {
                wal.file.sync_data()?;
                wal.dirty = false;
                wal.last_sync = Instant::now();
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(ReplicatedBatch {
            records,
            duplicates,
            appended_bytes,
            torn: parse.torn,
        })
    }

    /// Starts assembling a handoff snapshot — the leader side of
    /// `GET /wal/snapshot`, used to bootstrap an empty follower. Unlike
    /// [`try_begin_compaction`](Self::try_begin_compaction) this rotates
    /// nothing and deletes nothing: `base_seq` is simply the current WAL
    /// position, and the caller feeds every live session through
    /// [`SnapshotHandoff::add_session`] exactly as during compaction
    /// (sessions captured after `base_seq` legitimately carry newer
    /// records; the receiver's per-session `last_seq` gating makes the
    /// overlap idempotent).
    pub fn begin_handoff(&self) -> SnapshotHandoff {
        let base_seq = self.wal.lock().unwrap().next_seq - 1;
        SnapshotHandoff {
            base_seq,
            sessions: Vec::new(),
        }
    }

    /// Starts a compaction, rotating the WAL to a fresh segment so that
    /// appends continue while sessions are captured. Returns `None` when
    /// another compaction is already in flight.
    ///
    /// Protocol: the rotation point `base_seq` is taken under the WAL
    /// lock; the caller then feeds every live session through
    /// [`Compaction::add_session`] (capturing each under its own lock —
    /// a session captured after the rotation may legitimately include
    /// records newer than `base_seq`, which is why each entry records
    /// its own `last_seq`); finally [`Compaction::finish`] writes the
    /// snapshot atomically and deletes the superseded segments.
    pub fn try_begin_compaction(&self) -> io::Result<Option<Compaction<'_>>> {
        if self.compacting.swap(true, Ordering::AcqRel) {
            return Ok(None);
        }
        let result = self.rotate();
        match result {
            Ok((base_seq, generation, old_segments)) => Ok(Some(Compaction {
                store: self,
                base_seq,
                generation,
                old_segments,
                sessions: Vec::new(),
            })),
            Err(e) => {
                self.compacting.store(false, Ordering::Release);
                Err(e)
            }
        }
    }

    /// Rotates to a fresh segment; returns `(base_seq, next generation,
    /// superseded segment paths)`.
    fn rotate(&self) -> io::Result<(u64, u64, Vec<PathBuf>)> {
        let mut wal = self.wal.lock().unwrap();
        // Everything already on disk is about to be superseded; no point
        // syncing it first.
        let base_seq = wal.next_seq - 1;
        let generation = wal.snapshot_generation + 1;
        let old_segments;
        if wal.next_seq == wal.current_first_seq {
            // The append segment holds no records yet — keep it as the
            // fresh segment and supersede only the older ones.
            let current = wal.segments.pop().expect("append segment exists");
            old_segments = std::mem::take(&mut wal.segments)
                .into_iter()
                .map(|(_, path)| path)
                .collect();
            wal.segments.push(current);
        } else {
            let first_seq = wal.next_seq;
            let path = files::segment_path(&self.dir, first_seq);
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)?;
            files::sync_dir(&self.dir);
            wal.file = file;
            wal.current_first_seq = first_seq;
            old_segments = std::mem::take(&mut wal.segments)
                .into_iter()
                .map(|(_, p)| p)
                .collect();
            wal.segments.push((first_seq, path));
            wal.dirty = false;
        }
        self.wal_bytes.store(0, Ordering::Relaxed);
        Ok((base_seq, generation, old_segments))
    }
}

/// An in-flight compaction; see [`Store::try_begin_compaction`].
pub struct Compaction<'a> {
    store: &'a Store,
    base_seq: u64,
    generation: u64,
    old_segments: Vec<PathBuf>,
    sessions: Vec<snapshot::SessionEntry>,
}

impl Compaction<'_> {
    /// Captures one session into the snapshot. Call with the session's
    /// own lock held so `last_seq` and `graph` are consistent.
    /// `pending_migration` is the candidate SDL of an open migration
    /// window, so compaction does not lose the window. A still-mapped
    /// [`LazyGraph`] flows through as [`GraphPayload::Pgcs`] — its bytes
    /// are embedded verbatim, never deserialized.
    pub fn add_session<'g>(
        &mut self,
        id: u64,
        last_seq: u64,
        deltas_applied: u64,
        schema_sdl: &str,
        graph: impl Into<GraphPayload<'g>>,
        pending_migration: Option<&str>,
    ) {
        self.sessions.push(snapshot::encode_session(
            id,
            last_seq,
            deltas_applied,
            schema_sdl,
            graph.into(),
            pending_migration,
        ));
    }

    /// Writes the snapshot (temp file + atomic rename + directory sync)
    /// and deletes the superseded segments and older snapshots.
    pub fn finish(self, next_session_id: u64) -> io::Result<CompactionOutcome> {
        let store = self.store;
        let payload = snapshot::assemble(self.base_seq, next_session_id, &self.sessions);
        let tmp = files::snapshot_tmp_path(&store.dir, self.generation);
        let path = files::snapshot_path(&store.dir, self.generation);
        {
            let mut file = OpenOptions::new().create_new(true).write(true).open(&tmp)?;
            file.write_all(&payload)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        files::sync_dir(&store.dir);
        // Only now is the old state superseded on disk; drop it.
        for old in &self.old_segments {
            let _ = std::fs::remove_file(old);
        }
        if let Ok(listing) = files::list_dir(&store.dir) {
            for (generation, old_snap) in listing.snapshots {
                if generation < self.generation {
                    let _ = std::fs::remove_file(old_snap);
                }
            }
        }
        files::sync_dir(&store.dir);
        store.wal.lock().unwrap().snapshot_generation = self.generation;
        store.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(CompactionOutcome {
            generation: self.generation,
            base_seq: self.base_seq,
            sessions: self.sessions.len(),
            segments_removed: self.old_segments.len(),
            snapshot_bytes: payload.len() as u64,
        })
        // Drop releases the compacting flag.
    }
}

impl Drop for Compaction<'_> {
    fn drop(&mut self) {
        self.store.compacting.store(false, Ordering::Release);
    }
}

/// What a finished compaction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Generation of the snapshot written.
    pub generation: u64,
    /// The WAL rotation point the snapshot corresponds to.
    pub base_seq: u64,
    /// Sessions captured.
    pub sessions: usize,
    /// Superseded segment files deleted.
    pub segments_removed: usize,
    /// Size of the snapshot file.
    pub snapshot_bytes: u64,
}

/// The result of one [`Store::read_tail`] call.
#[derive(Debug)]
pub enum Tail {
    /// Frames with `seq >= from` (possibly none, when the caller is
    /// caught up).
    Batch(TailBatch),
    /// `from` precedes the oldest record the WAL still retains —
    /// compaction dropped it, and the caller must bootstrap from a
    /// snapshot (`GET /wal/snapshot` upstream).
    SnapshotRequired {
        /// First sequence number the WAL can still serve.
        oldest_retained: u64,
    },
}

/// A batch of raw WAL frames read by [`Store::read_tail`].
#[derive(Debug)]
pub struct TailBatch {
    /// Whole frames in sequence order, each byte-identical to its disk
    /// representation (header, CRC and payload).
    pub frames: Vec<Vec<u8>>,
    /// The `from` of the next request: one past the last frame's
    /// sequence number, or the request's own `from` when the batch is
    /// empty.
    pub next_from: u64,
    /// The store's `next_seq` sampled at read time; `end_seq -
    /// next_from` is the caller's remaining lag in records.
    pub end_seq: u64,
    /// Bytes of valid frames past this batch still on disk — the
    /// caller's remaining lag in bytes.
    pub remaining_bytes: u64,
}

/// What [`Store::append_replicated`] did with a shipped batch.
#[derive(Debug)]
pub struct ReplicatedBatch {
    /// The records appended (leader sequence numbers preserved), decoded
    /// for the caller to apply to its live state.
    pub records: Vec<(u64, StoreRecord)>,
    /// Frames skipped because their seq was below the local cursor
    /// (redelivery after a reconnect).
    pub duplicates: u64,
    /// Raw frame bytes appended.
    pub appended_bytes: u64,
    /// Why the batch ended early, if a frame failed verification (the
    /// valid prefix is still appended).
    pub torn: Option<String>,
}

/// An in-flight handoff snapshot; see [`Store::begin_handoff`].
pub struct SnapshotHandoff {
    base_seq: u64,
    sessions: Vec<snapshot::SessionEntry>,
}

impl SnapshotHandoff {
    /// The WAL position the snapshot corresponds to: the receiver tails
    /// from `base_seq + 1`.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Captures one session. Call with the session's own lock held so
    /// `last_seq` and `graph` are consistent. An open migration
    /// window's candidate SDL travels in `pending_migration`; a
    /// still-mapped [`LazyGraph`] ships verbatim as
    /// [`GraphPayload::Pgcs`].
    pub fn add_session<'g>(
        &mut self,
        id: u64,
        last_seq: u64,
        deltas_applied: u64,
        schema_sdl: &str,
        graph: impl Into<GraphPayload<'g>>,
        pending_migration: Option<&str>,
    ) {
        self.sessions.push(snapshot::encode_session(
            id,
            last_seq,
            deltas_applied,
            schema_sdl,
            graph.into(),
            pending_migration,
        ));
    }

    /// Assembles the snapshot blob (the same CRC-framed format written
    /// to disk by compaction), ready to ship over HTTP.
    pub fn finish(self, next_session_id: u64) -> Vec<u8> {
        snapshot::assemble(self.base_seq, next_session_id, &self.sessions)
    }
}

/// Installs a handoff snapshot blob into an *empty* store directory —
/// the follower side of `GET /wal/snapshot`. The blob is fully validated
/// first, then written as snapshot generation 1 with the same temp-file +
/// atomic-rename + directory-sync dance as compaction, so a crash leaves
/// either nothing or a valid snapshot. [`Store::open`] afterwards runs
/// the ordinary recovery path over it.
///
/// Refuses (with [`io::ErrorKind::AlreadyExists`]) to touch a directory
/// that already holds segments or snapshots: bootstrapping is for new
/// followers, not for overwriting history.
pub fn install_snapshot(dir: impl Into<PathBuf>, bytes: &[u8]) -> io::Result<()> {
    let dir = dir.into();
    let backing = lazy::Backing::Heap(std::sync::Arc::new(bytes.to_vec()));
    match snapshot::decode(&backing) {
        Ok(_) => {}
        Err(snapshot::DecodeError::Unsupported(msg)) => {
            return Err(io::Error::new(io::ErrorKind::Unsupported, msg));
        }
        Err(snapshot::DecodeError::Corrupt) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot blob failed validation (torn, corrupt or malformed)",
            ));
        }
    }
    std::fs::create_dir_all(&dir)?;
    let listing = files::list_dir(&dir)?;
    if !listing.segments.is_empty() || !listing.snapshots.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "refusing to install a snapshot into a non-empty store directory",
        ));
    }
    let generation = 1;
    let tmp = files::snapshot_tmp_path(&dir, generation);
    let path = files::snapshot_path(&dir, generation);
    {
        let mut file = OpenOptions::new().create_new(true).write(true).open(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    files::sync_dir(&dir);
    Ok(())
}
