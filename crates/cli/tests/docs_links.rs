//! Cross-reference checker for the repo's documentation: every relative
//! markdown link in the tracked docs must point at a file that exists,
//! and every `#fragment` must match a heading in the target file
//! (GitHub's slug rules). Keeps docs/replication.md, docs/operations.md,
//! README and DESIGN from rotting apart as they link to each other.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// The documentation files under the checker's contract. ISSUE/PAPER/
/// SNIPPETS are scaffolding, not documentation, and stay out.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![
        root.join("README.md"),
        root.join("DESIGN.md"),
        root.join("EXPERIMENTS.md"),
        root.join("ROADMAP.md"),
    ];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files
}

/// GitHub's heading-to-anchor slug: lowercase, spaces to hyphens,
/// everything that is not alphanumeric / hyphen / underscore dropped.
fn slugify(heading: &str) -> String {
    let mut slug = String::new();
    for ch in heading.trim().chars() {
        match ch {
            ' ' => slug.push('-'),
            c if c.is_alphanumeric() || c == '-' || c == '_' => {
                slug.extend(c.to_lowercase());
            }
            _ => {}
        }
    }
    slug
}

/// The anchor set of a markdown file: one slug per ATX heading, with
/// GitHub's `-1`, `-2` suffixes for repeats. Inline code spans keep
/// their text (backticks are stripped by slugify's filter).
fn anchors(text: &str) -> HashSet<String> {
    let mut seen: Vec<String> = Vec::new();
    let mut out = HashSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let heading = line.trim_start_matches('#');
        if !heading.starts_with(' ') && !heading.is_empty() {
            continue; // #![attr] or similar, not a heading
        }
        let base = slugify(heading);
        let repeats = seen.iter().filter(|s| **s == base).count();
        seen.push(base.clone());
        if repeats == 0 {
            out.insert(base);
        } else {
            out.insert(format!("{base}-{repeats}"));
        }
    }
    out
}

/// Extracts `](target)` link targets, skipping fenced code blocks and
/// inline code spans.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Strip inline code spans so `[x](y)` inside backticks is not a
        // link.
        let mut stripped = String::new();
        let mut in_code = false;
        for ch in line.chars() {
            if ch == '`' {
                in_code = !in_code;
            } else if !in_code {
                stripped.push(ch);
            }
        }
        let bytes = stripped.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                if let Some(end) = stripped[i + 2..].find(')') {
                    targets.push(stripped[i + 2..i + 2 + end].to_string());
                    i += 2 + end;
                    continue;
                }
            }
            i += 1;
        }
    }
    targets
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = repo_root();
    let mut problems = Vec::new();
    for file in doc_files(&root) {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let dir = file.parent().unwrap().to_path_buf();
        let name = file.strip_prefix(&root).unwrap().display().to_string();
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, fragment) = match target.split_once('#') {
                Some((p, f)) => (p, Some(f.to_string())),
                None => (target.as_str(), None),
            };
            let resolved = if path_part.is_empty() {
                file.clone() // same-file `#anchor` link
            } else {
                dir.join(path_part)
            };
            if !resolved.exists() {
                problems.push(format!("{name}: broken link `{target}`"));
                continue;
            }
            if let Some(fragment) = fragment {
                if resolved.extension().is_some_and(|e| e == "md") {
                    let target_text = std::fs::read_to_string(&resolved).unwrap();
                    if !anchors(&target_text).contains(&fragment) {
                        problems.push(format!(
                            "{name}: link `{target}` points at a heading that does not exist"
                        ));
                    }
                }
            }
        }
    }
    assert!(
        problems.is_empty(),
        "broken doc links:\n{}",
        problems.join("\n")
    );
}

#[test]
fn the_replication_docs_are_cross_linked() {
    // The spec, the runbook, the README serving section and DESIGN must
    // reference each other — a reader landing on any of them finds the
    // rest.
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    assert!(
        readme.contains("docs/replication.md") && readme.contains("docs/operations.md"),
        "README links the replication spec and the runbook"
    );
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    assert!(
        design.contains("docs/replication.md"),
        "DESIGN links the replication spec"
    );
    let spec = std::fs::read_to_string(root.join("docs/replication.md")).unwrap();
    assert!(spec.contains("operations.md"), "the spec links the runbook");
    let runbook = std::fs::read_to_string(root.join("docs/operations.md")).unwrap();
    assert!(
        runbook.contains("replication.md"),
        "the runbook links the spec"
    );
}

#[test]
fn the_schema_language_docs_are_cross_linked() {
    // The second frontend spans the README overview, the DESIGN
    // lowering spec, the replication spec's language-tag rule and the
    // E5f experiment. Each must point a reader onward.
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    assert!(
        readme.contains("## Schema languages"),
        "README has the schema-languages section"
    );
    assert!(
        readme.contains("DESIGN.md#pg-schema-frontend") && readme.contains("EXPERIMENTS.md#e5f"),
        "README links the lowering spec and the E5f experiment"
    );
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    assert!(
        design.contains("## PG-Schema frontend")
            && design.contains("### Lowering table")
            && design.contains("### Unsupported-construct policy"),
        "DESIGN documents the frontend, its lowering table and the \
         out-of-fragment policy"
    );
    assert!(
        design.contains("docs/replication.md#schemachange-body"),
        "DESIGN links the SchemaChange record the pragma rides in"
    );
    let spec = std::fs::read_to_string(root.join("docs/replication.md")).unwrap();
    assert!(
        spec.contains("# schema-language:"),
        "the replication spec documents the language tag pragma"
    );
    let experiments = std::fs::read_to_string(root.join("EXPERIMENTS.md")).unwrap();
    assert!(
        experiments.contains("## E5f"),
        "EXPERIMENTS has the second-frontend table"
    );
}

#[test]
fn the_migration_docs_are_cross_linked() {
    // The migration story spans four documents: the README overview,
    // the DESIGN rationale, the runbook's rollout procedure and the
    // spec's SchemaChange record. Each must point a reader onward.
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    assert!(
        readme.contains("docs/operations.md#live-schema-migration")
            && readme.contains("docs/replication.md#schemachange-body"),
        "README links the migration runbook and the SchemaChange record layout"
    );
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    assert!(
        design.contains("## Live migration"),
        "DESIGN documents the migration subsystem"
    );
    let runbook = std::fs::read_to_string(root.join("docs/operations.md")).unwrap();
    assert!(
        runbook.contains("## Live schema migration") && runbook.contains("SchemaChange"),
        "the runbook has the migration section and names the WAL record"
    );
    let spec = std::fs::read_to_string(root.join("docs/replication.md")).unwrap();
    assert!(
        spec.contains("### SchemaChange body"),
        "the spec documents the SchemaChange body layout"
    );
}
