//! Schema → ALCQI TBox (the Theorem 3 construction).
//!
//! Following the paper's proof of Theorem 3, with each named type a
//! concept name and each relationship field name a role name:
//!
//! * union `t = t1 | … | tn` and interface `t` implemented by `t1 … tn`:
//!   `t ≡ t1 ⊔ … ⊔ tn`;
//! * a non-scalar field `f` with base type `tt` on type `t`:
//!   `∃f⁻.t ⊑ tt` (WS3, targets have the right type);
//! * if the field's type is not a list type: `t ⊑ ≤1 f.tt` (WS4);
//! * `@required` on a relationship field: `t ⊑ ∃f.tt` (DS6);
//! * `@requiredForTarget`: `tt ⊑ ∃f⁻.t` (DS4);
//! * `@uniqueForTarget`: `tt ⊑ ≤1 f⁻.t` (DS3);
//! * exactly-one-object-type: `oti ⊓ otj ⊑ ⊥` pairwise and
//!   `⊤ ⊑ ot1 ⊔ … ⊔ otn` (SS1 + single labels);
//! * additionally `⊤ ⊑ ¬it` is **not** asserted — interface/union names
//!   are derived concepts via their equivalences.
//!
//! `@distinct`, `@noLoops`, `@key` and all scalar-valued fields/arguments
//! are dropped: the paper's proof shows they never affect satisfiability
//! (parallel edges can be merged, loops unfolded, scalar values freely
//! chosen).

use gql_schema::TypeKind;
use pg_schema::PgSchema;

use crate::concept::{Concept, TBox};

/// Builds the TBox for a Property Graph schema.
pub fn translate(schema: &PgSchema) -> TBox {
    let mut tb = TBox::new();
    let s = schema.schema();

    // Intern all object/interface/union type names as concepts, in schema
    // order for determinism.
    let object_types: Vec<_> = s.object_types().collect();
    for &ot in &object_types {
        tb.concept_id(s.type_name(ot));
    }

    // Unions and interfaces: t ≡ t1 ⊔ … ⊔ tn.
    for t in s.type_ids() {
        let members: Vec<_> = match &s.type_info(t).kind {
            TypeKind::Union(ms) => ms.clone(),
            TypeKind::Interface(_) => s.implementors(t).to_vec(),
            _ => continue,
        };
        let name = tb.concept(s.type_name(t));
        let disjunction = Concept::Or(
            members
                .iter()
                .map(|&m| tb.concept(s.type_name(m)))
                .collect(),
        )
        .simplify();
        tb.add_equivalence(name, disjunction);
    }

    // Relationship-field axioms, for fields of object AND interface types.
    let field_owners: Vec<_> = s.object_types().chain(s.interface_types()).collect();
    for t in field_owners {
        let t_concept = tb.concept(s.type_name(t));
        for rel in schema.relationships(t).to_vec() {
            let role = tb.role(&rel.name);
            let tt_concept = tb.concept(s.type_name(rel.target_base));
            // Range restriction: ∃f⁻.t ⊑ tt.
            tb.add_subsumption(
                Concept::exists(role.inverted(), t_concept.clone()),
                tt_concept.clone(),
            );
            if !rel.multi {
                // t ⊑ ≤1 f.tt.
                tb.add_subsumption(
                    t_concept.clone(),
                    Concept::AtMost(1, role, Box::new(tt_concept.clone())),
                );
            }
            if rel.required {
                tb.add_subsumption(t_concept.clone(), Concept::exists(role, tt_concept.clone()));
            }
            if rel.required_for_target {
                tb.add_subsumption(
                    tt_concept.clone(),
                    Concept::exists(role.inverted(), t_concept.clone()),
                );
            }
            if rel.unique_for_target {
                tb.add_subsumption(
                    tt_concept.clone(),
                    Concept::AtMost(1, role.inverted(), Box::new(t_concept.clone())),
                );
            }
        }
    }

    // Every individual is exactly one object type.
    let ot_concepts: Vec<Concept> = object_types
        .iter()
        .map(|&ot| tb.concept(s.type_name(ot)))
        .collect();
    for (i, a) in ot_concepts.iter().enumerate() {
        for b in ot_concepts.iter().skip(i + 1) {
            tb.add_subsumption(Concept::And(vec![a.clone(), b.clone()]), Concept::Bottom);
        }
    }
    tb.add_subsumption(Concept::Top, Concept::Or(ot_concepts).simplify());

    tb
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tbox(src: &str) -> (PgSchema, TBox) {
        let s = PgSchema::parse(src).unwrap();
        let tb = translate(&s);
        (s, tb)
    }

    #[test]
    fn counts_axioms_for_simple_schema() {
        let (_, tb) = tbox(
            r#"
            type A { toB: B @required }
            type B { x: Int }
            "#,
        );
        // Axioms: range(toB), non-list ≤1, required ∃, disjoint(A,B),
        // covering. Scalar field x contributes nothing.
        assert_eq!(tb.globals.len(), 5);
        assert!(tb.find_concept("A").is_some());
        assert!(tb.find_concept("B").is_some());
        assert!(tb.find_concept("Int").is_none());
    }

    #[test]
    fn unions_and_interfaces_become_equivalences() {
        let (_, tb) = tbox(
            r#"
            union Food = Pizza | Pasta
            type Pizza { n: Int }
            type Pasta { n: Int }
            interface Edible { n: Int }
            type Bread implements Edible { n: Int }
            "#,
        );
        // Food ≡ Pizza ⊔ Pasta (2 axioms), Edible ≡ Bread (2 axioms),
        // disjointness C(3,2)=3, covering 1. No relationship fields.
        assert_eq!(tb.globals.len(), 2 + 2 + 3 + 1);
    }

    #[test]
    fn directives_map_to_inverse_role_axioms() {
        let (_, tb) = tbox(
            r#"
            type Publisher { published: [Book] @uniqueForTarget @requiredForTarget }
            type Book { title: String! }
            "#,
        );
        let rendered: Vec<String> = tb.globals.iter().map(|c| tb.render(c)).collect();
        let all = rendered.join("\n");
        // Book ⊑ ∃published⁻.Publisher  →  internalised with ¬Book.
        assert!(
            all.contains("≥1 published⁻.Publisher"),
            "missing requiredForTarget axiom in:\n{all}"
        );
        assert!(
            all.contains("≤1 published⁻.Publisher"),
            "missing uniqueForTarget axiom in:\n{all}"
        );
        // List type → no ≤1 published.Book axiom.
        assert!(!all.contains("≤1 published.Book"), "{all}");
    }

    #[test]
    fn distinct_noloops_keys_and_scalars_are_dropped() {
        let (_, tb) = tbox(
            r#"
            type A @key(fields: ["x"]) {
                x: Int @required
                rel: [A] @distinct @noloops
            }
            "#,
        );
        // rel contributes only its range axiom (no cardinality, not
        // required); plus covering (no disjointness with 1 type).
        assert_eq!(tb.globals.len(), 2);
    }

    #[test]
    fn empty_schema_translates() {
        let (_, tb) = tbox("");
        // Only the covering axiom over zero object types: ⊤ ⊑ ⊥.
        assert_eq!(tb.globals.len(), 1);
        assert_eq!(tb.globals[0], Concept::Bottom);
    }

    #[test]
    fn interface_fields_generate_axioms() {
        let (_, tb) = tbox(
            r#"
            interface IT { hasOT1: [OT1] @uniqueForTarget }
            type OT1 { }
            type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
            "#,
        );
        let all: Vec<String> = tb.globals.iter().map(|c| tb.render(c)).collect();
        let text = all.join("\n");
        assert!(text.contains("≤1 hasOT1⁻.IT"), "{text}");
        assert!(text.contains("≥1 hasOT1⁻.OT2"), "{text}");
    }
}
