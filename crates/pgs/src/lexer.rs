//! The PG-Schema lexical analyser.
//!
//! A hand-rolled scanner in the same style as the SDL lexer
//! (`gql_sdl::Lexer`): whitespace, line terminators and comments are
//! ignored; everything else becomes a [`Token`] with a source span.
//! Both `//` (PG-Schema/GQL style) and `#` (GraphQL style) line comments
//! are ignored, so schemas can carry either convention. One character of
//! lookahead suffices except for `..`, `->` and `//`.

use crate::error::{ParseError, ParseErrorKind};
use crate::token::{Pos, Span, Token, TokenKind};

/// Streaming tokenizer. Usually used through [`crate::parse`], but
/// exposed for tooling and token-level tests.
pub struct Lexer<'a> {
    src: &'a str,
    chars: std::str::CharIndices<'a>,
    /// One-char lookahead: (byte offset, char).
    peeked: Option<(usize, char)>,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        let mut lx = Lexer {
            src,
            chars: src.char_indices(),
            peeked: None,
            line: 1,
            column: 1,
        };
        lx.peeked = lx.chars.next();
        // Skip a UTF-8 byte-order mark if present.
        if let Some((_, '\u{FEFF}')) = lx.peeked {
            lx.bump();
        }
        lx
    }

    /// Tokenises the whole input, ending with an `Eof` token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            column: self.column,
            offset: self.peeked.map_or(self.src.len(), |(o, _)| o),
        }
    }

    fn peek(&self) -> Option<char> {
        self.peeked.map(|(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let (_, c) = self.peeked?;
        self.peeked = self.chars.next();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_ignored(&mut self) {
        loop {
            match self.peek() {
                Some(' ' | '\t' | '\n') => {
                    self.bump();
                }
                Some('\r') => {
                    self.bump();
                    // CRLF counts as one line terminator; '\n' handling
                    // in bump() advances the line if it follows.
                    if self.peek() != Some('\n') {
                        self.line += 1;
                        self.column = 1;
                    }
                }
                Some('#') => self.line_comment(),
                Some('/') if self.peek2() == Some('/') => self.line_comment(),
                _ => return,
            }
        }
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next().map(|(_, c)| c)
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek() {
            if c == '\n' || c == '\r' {
                break;
            }
            self.bump();
        }
    }

    /// Produces the next significant token.
    pub fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_ignored();
        let start = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::at(start),
            });
        };
        let kind = match c {
            '(' => self.punct(TokenKind::ParenL),
            ')' => self.punct(TokenKind::ParenR),
            '{' => self.punct(TokenKind::BraceL),
            '}' => self.punct(TokenKind::BraceR),
            '[' => self.punct(TokenKind::BracketL),
            ']' => self.punct(TokenKind::BracketR),
            ':' => self.punct(TokenKind::Colon),
            ',' => self.punct(TokenKind::Comma),
            '&' => self.punct(TokenKind::Amp),
            '*' => self.punct(TokenKind::Star),
            '-' => {
                self.bump();
                if self.peek() == Some('>') {
                    self.bump();
                    Ok(TokenKind::Arrow)
                } else {
                    Ok(TokenKind::Dash)
                }
            }
            '.' => {
                self.bump();
                if self.peek() == Some('.') {
                    self.bump();
                    Ok(TokenKind::DotDot)
                } else {
                    Ok(TokenKind::Dot)
                }
            }
            c if c == '_' || c.is_ascii_alphabetic() => Ok(self.name()),
            c if c.is_ascii_digit() => Ok(self.number()),
            other => {
                self.bump();
                Err(ParseError::new(
                    ParseErrorKind::UnexpectedCharacter(other),
                    start,
                ))
            }
        }?;
        Ok(Token {
            kind,
            span: Span {
                start,
                end: self.pos(),
            },
        })
    }

    fn punct(&mut self, kind: TokenKind) -> Result<TokenKind, ParseError> {
        self.bump();
        Ok(kind)
    }

    fn name(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_ascii_alphanumeric() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Name(s)
    }

    fn number(&mut self) -> TokenKind {
        let mut n: u64 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n.saturating_mul(10).saturating_add(u64::from(d));
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn punctuation_and_compounds() {
        assert_eq!(
            kinds("( ) { } [ ] : , & * - -> . .."),
            vec![
                TokenKind::ParenL,
                TokenKind::ParenR,
                TokenKind::BraceL,
                TokenKind::BraceR,
                TokenKind::BracketL,
                TokenKind::BracketR,
                TokenKind::Colon,
                TokenKind::Comma,
                TokenKind::Amp,
                TokenKind::Star,
                TokenKind::Dash,
                TokenKind::Arrow,
                TokenKind::Dot,
                TokenKind::DotDot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn edge_arrow_splits_into_tokens() {
        assert_eq!(
            kinds("(:A)-[:r]->(:B)"),
            vec![
                TokenKind::ParenL,
                TokenKind::Colon,
                TokenKind::Name("A".into()),
                TokenKind::ParenR,
                TokenKind::Dash,
                TokenKind::BracketL,
                TokenKind::Colon,
                TokenKind::Name("r".into()),
                TokenKind::BracketR,
                TokenKind::Arrow,
                TokenKind::ParenL,
                TokenKind::Colon,
                TokenKind::Name("B".into()),
                TokenKind::ParenR,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn cardinality_tokens() {
        assert_eq!(
            kinds("1..* 0..1"),
            vec![
                TokenKind::Int(1),
                TokenKind::DotDot,
                TokenKind::Star,
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn both_comment_styles_are_ignored() {
        assert_eq!(
            kinds("// line one\nA # trailing\nB"),
            vec![
                TokenKind::Name("A".into()),
                TokenKind::Name("B".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_are_one_based_and_crlf_is_one_terminator() {
        let toks = Lexer::new("A\r\nB\rC").tokenize().unwrap();
        let spans: Vec<(u32, u32)> = toks
            .iter()
            .map(|t| (t.span.start.line, t.span.start.column))
            .collect();
        assert_eq!(spans, vec![(1, 1), (2, 1), (3, 1), (3, 2)]);
    }

    #[test]
    fn unexpected_character_carries_its_position() {
        let err = Lexer::new("A\n  %").tokenize().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedCharacter('%'));
        assert_eq!((err.pos.line, err.pos.column), (2, 3));
    }

    #[test]
    fn a_lone_slash_is_an_error_not_a_comment() {
        let err = Lexer::new("/").tokenize().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedCharacter('/'));
    }
}
