//! Wrapping types (paper §4.1).
//!
//! The paper admits exactly six shapes over a named type `t`:
//! `t`, `t!`, `[t]`, `[t!]`, `[t]!`, `[t!]!` — lists never nest and
//! non-null never applies twice at the same level. [`Wrap`] encodes the
//! shape and [`WrappedType`] pairs it with the underlying named type, so
//! `basetype` is just a field access.

use crate::model::TypeId;

/// The wrapping shape of a type reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Wrap {
    /// `t` — the bare named type.
    Bare,
    /// `t!`
    NonNull,
    /// `[t]`, `[t!]`, `[t]!`, `[t!]!` depending on the two flags.
    List {
        /// True for `[t!]` / `[t!]!` — elements must not be null.
        inner_non_null: bool,
        /// True for `[t]!` / `[t!]!` — the list itself must not be null.
        outer_non_null: bool,
    },
}

impl Wrap {
    /// All six shapes, for exhaustive tests and generators.
    pub const ALL: [Wrap; 6] = [
        Wrap::Bare,
        Wrap::NonNull,
        Wrap::List {
            inner_non_null: false,
            outer_non_null: false,
        },
        Wrap::List {
            inner_non_null: true,
            outer_non_null: false,
        },
        Wrap::List {
            inner_non_null: false,
            outer_non_null: true,
        },
        Wrap::List {
            inner_non_null: true,
            outer_non_null: true,
        },
    ];

    /// True if this shape is a list type (possibly non-null-wrapped).
    ///
    /// This is the discriminator WS4 uses: "`typeF(λ(v1), f)` is not a list
    /// type or a list type wrapped in non-null type".
    pub fn is_list(self) -> bool {
        matches!(self, Wrap::List { .. })
    }

    /// True if the outermost type is non-null (`t!`, `[t]!`, `[t!]!`).
    pub fn outer_non_null(self) -> bool {
        match self {
            Wrap::Bare => false,
            Wrap::NonNull => true,
            Wrap::List { outer_non_null, .. } => outer_non_null,
        }
    }
}

/// A (possibly wrapped) reference to a named type: an element of
/// `T ∪ W_T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WrappedType {
    /// The underlying named type — the paper's `basetype`.
    pub base: TypeId,
    /// The wrapping shape.
    pub wrap: Wrap,
}

impl WrappedType {
    /// A bare reference to `base`.
    pub fn bare(base: TypeId) -> Self {
        WrappedType {
            base,
            wrap: Wrap::Bare,
        }
    }

    /// `base!`
    pub fn non_null(base: TypeId) -> Self {
        WrappedType {
            base,
            wrap: Wrap::NonNull,
        }
    }

    /// `[base]` with the given nullability flags.
    pub fn list(base: TypeId, inner_non_null: bool, outer_non_null: bool) -> Self {
        WrappedType {
            base,
            wrap: Wrap::List {
                inner_non_null,
                outer_non_null,
            },
        }
    }

    /// True if this is a list type (in any nullability variant).
    pub fn is_list(&self) -> bool {
        self.wrap.is_list()
    }

    /// Renders the type around a given base-type name, e.g.
    /// `render("User")` on a `[t!]!` shape yields `"[User!]!"`.
    pub fn render(&self, name: &str) -> String {
        match self.wrap {
            Wrap::Bare => name.to_owned(),
            Wrap::NonNull => format!("{name}!"),
            Wrap::List {
                inner_non_null,
                outer_non_null,
            } => format!(
                "[{name}{}]{}",
                if inner_non_null { "!" } else { "" },
                if outer_non_null { "!" } else { "" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_shapes_exist_and_classify() {
        assert_eq!(Wrap::ALL.len(), 6);
        assert_eq!(Wrap::ALL.iter().filter(|w| w.is_list()).count(), 4);
        assert_eq!(Wrap::ALL.iter().filter(|w| w.outer_non_null()).count(), 3);
    }

    #[test]
    fn render_shapes() {
        let t = TypeId::from_index(0);
        assert_eq!(WrappedType::bare(t).render("T"), "T");
        assert_eq!(WrappedType::non_null(t).render("T"), "T!");
        assert_eq!(WrappedType::list(t, false, false).render("T"), "[T]");
        assert_eq!(WrappedType::list(t, true, false).render("T"), "[T!]");
        assert_eq!(WrappedType::list(t, false, true).render("T"), "[T]!");
        assert_eq!(WrappedType::list(t, true, true).render("T"), "[T!]!");
    }
}
