//! `any::<T>()` for the primitive types the workspace tests use.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy, as in `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy backing [`any`] for one primitive type.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

macro_rules! impl_any {
    ($t:ty, |$rng:ident| $draw:expr) => {
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t {
                $draw
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(PhantomData)
            }
        }
    };
}

impl_any!(bool, |rng| rng.next_u64() & 1 == 1);
impl_any!(u8, |rng| rng.next_u64() as u8);
impl_any!(u16, |rng| rng.next_u64() as u16);
impl_any!(u32, |rng| rng.next_u64() as u32);
impl_any!(u64, |rng| rng.next_u64());
impl_any!(usize, |rng| rng.next_u64() as usize);
impl_any!(i8, |rng| rng.next_u64() as i8);
impl_any!(i16, |rng| rng.next_u64() as i16);
impl_any!(i32, |rng| rng.next_u64() as i32);
impl_any!(i64, |rng| rng.next_u64() as i64);
impl_any!(isize, |rng| rng.next_u64() as isize);
// Finite, non-NaN floats only: serialization roundtrip properties rely on
// `x == x`. Mix small human-scale values with full-range bit patterns.
impl_any!(f64, |rng| {
    loop {
        let v = if rng.next_u64() & 1 == 0 {
            // Small values around zero, including negatives and fractions.
            (rng.next_u64() as i64 % 2_000_000) as f64 / 128.0
        } else {
            f64::from_bits(rng.next_u64())
        };
        if v.is_finite() {
            return v;
        }
    }
});
impl_any!(f32, |rng| {
    loop {
        let v = f32::from_bits(rng.next_u64() as u32);
        if v.is_finite() {
            return v;
        }
    }
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_are_always_finite() {
        let mut rng = TestRng::for_case("any-f64", 0);
        let s = any::<f64>();
        for _ in 0..5000 {
            let v = s.generate(&mut rng);
            assert!(v.is_finite(), "non-finite f64 generated: {v}");
        }
    }

    #[test]
    fn bools_cover_both_values() {
        let mut rng = TestRng::for_case("any-bool", 0);
        let s = any::<bool>();
        let trues = (0..100).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 10 && trues < 90);
    }
}
