//! E7: every inline schema of the paper (§3 Examples 3.1–3.12, §6
//! Example 6.1) parsed, built, consistency-checked, and exercised.

use pg_schema::{validate, PgSchema, Rule, ValidationOptions};
use pgraph::{GraphBuilder, Value};

fn parses_consistently(sdl: &str) -> PgSchema {
    PgSchema::parse(sdl).expect("paper schema should build and be consistent")
}

/// Example 3.1 — user sessions.
const EX_3_1: &str = r#"
    type UserSession {
        id: ID! @required
        user: User! @required
        startTime: Time! @required
        endTime: Time!
    }
    type User {
        id: ID! @required
        login: String! @required
        nicknames: [String!]!
    }
    scalar Time
"#;

#[test]
fn example_3_1_builds() {
    let s = parses_consistently(EX_3_1);
    assert_eq!(s.schema().object_types().count(), 2);
    // Example 3.2's classification.
    let session = s.label_type("UserSession").unwrap();
    assert_eq!(s.attributes(session).len(), 3);
    assert_eq!(s.relationships(session).len(), 1);
}

#[test]
fn example_3_3_property_obligations() {
    // "every node with the label User may have two or three properties"
    let s = parses_consistently(EX_3_1);
    let ok = GraphBuilder::new()
        .node("u", "User")
        .prop("u", "id", Value::Id("1".into()))
        .prop("u", "login", "alice")
        .build()
        .unwrap();
    assert!(pg_schema::strongly_satisfies(&ok, &s));
    let with_nick = GraphBuilder::new()
        .node("u", "User")
        .prop("u", "id", Value::Id("1".into()))
        .prop("u", "login", "alice")
        .prop("u", "nicknames", Value::from(vec!["al"]))
        .build()
        .unwrap();
    assert!(pg_schema::strongly_satisfies(&with_nick, &s));
    // login must be a single string.
    let bad = GraphBuilder::new()
        .node("u", "User")
        .prop("u", "id", Value::Id("1".into()))
        .prop("u", "login", Value::from(vec!["alice"]))
        .build()
        .unwrap();
    let report = validate(&bad, &s, &ValidationOptions::default());
    assert!(report.by_rule(Rule::WS1).next().is_some());
}

#[test]
fn example_3_4_keys() {
    let sdl = EX_3_1.replace(
        "type User {",
        r#"type User @key(fields: ["id"]) @key(fields: ["login"]) {"#,
    );
    let s = parses_consistently(&sdl);
    assert_eq!(s.keys().len(), 2);
    let dup = GraphBuilder::new()
        .node("a", "User")
        .prop("a", "id", Value::Id("1".into()))
        .prop("a", "login", "alice")
        .node("b", "User")
        .prop("b", "id", Value::Id("1".into()))
        .prop("b", "login", "bob")
        .build()
        .unwrap();
    let report = validate(&dup, &s, &ValidationOptions::default());
    assert_eq!(report.by_rule(Rule::DS7).count(), 1);
}

#[test]
fn example_3_5_exactly_one_user_edge() {
    let s = parses_consistently(EX_3_1);
    // A session without its user edge violates DS6.
    let missing = GraphBuilder::new()
        .node("s", "UserSession")
        .prop("s", "id", Value::Id("s1".into()))
        .prop("s", "startTime", "t0")
        .build()
        .unwrap();
    let report = validate(&missing, &s, &ValidationOptions::default());
    assert!(report.by_rule(Rule::DS6).next().is_some());
}

/// Example 3.6/3.7 — books and authors.
const EX_3_6: &str = r#"
    type Author {
        favoriteBook: Book
        relatedAuthor: [Author] @distinct @noloops
    }
    type Book {
        title: String!
        author: [Author] @required @distinct
    }
"#;

#[test]
fn example_3_6_and_3_7_semantics() {
    let s = parses_consistently(EX_3_6);
    // "there may also be Author nodes that do not have any outgoing edge"
    let lone_author = GraphBuilder::new().node("a", "Author").build().unwrap();
    assert!(pg_schema::strongly_satisfies(&lone_author, &s));
    // "every Book node must have at least one outgoing edge"
    let lone_book = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .build()
        .unwrap();
    assert!(!pg_schema::strongly_satisfies(&lone_book, &s));
    // @distinct on author: two parallel author edges violate DS1.
    let dup = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("a", "Author")
        .edge("b", "a", "author")
        .edge("b", "a", "author")
        .build()
        .unwrap();
    let report = validate(&dup, &s, &ValidationOptions::default());
    assert!(report.by_rule(Rule::DS1).next().is_some());
    // @noLoops on relatedAuthor.
    let looped = GraphBuilder::new()
        .node("a", "Author")
        .edge("a", "a", "relatedAuthor")
        .build()
        .unwrap();
    let report = validate(&looped, &s, &ValidationOptions::default());
    assert!(report.by_rule(Rule::DS2).next().is_some());
}

/// Example 3.8 — book series and publishers.
const EX_3_8: &str = r#"
    type Book { title: String! }
    type BookSeries {
        contains: [Book] @required @uniqueForTarget
    }
    type Publisher {
        published: [Book] @uniqueForTarget @requiredForTarget
    }
"#;

#[test]
fn example_3_8_target_constraints() {
    let s = parses_consistently(EX_3_8);
    // "every Book node must have exactly one incoming published edge"
    let no_publisher = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .build()
        .unwrap();
    let report = validate(&no_publisher, &s, &ValidationOptions::default());
    assert!(report.by_rule(Rule::DS4).next().is_some());
    // Two publishers for one book violate DS3.
    let two = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("p1", "Publisher")
        .node("p2", "Publisher")
        .edge("p1", "b", "published")
        .edge("p2", "b", "published")
        .build()
        .unwrap();
    let report = validate(&two, &s, &ValidationOptions::default());
    assert!(report.by_rule(Rule::DS3).next().is_some());
}

/// Examples 3.9/3.10 — unions vs interfaces capture the same restriction.
#[test]
fn examples_3_9_and_3_10_are_equivalent() {
    let union_schema = parses_consistently(
        r#"
        type Person { name: String! favoriteFood: Food }
        union Food = Pizza | Pasta
        type Pizza { name: String! toppings: [String!]! }
        type Pasta { name: String! }
        "#,
    );
    let iface_schema = parses_consistently(
        r#"
        type Person { name: String! favoriteFood: Food }
        interface Food { name: String! }
        type Pizza implements Food { name: String! toppings: [String!]! }
        type Pasta implements Food { name: String! }
        "#,
    );
    // The same graphs satisfy both.
    let good = GraphBuilder::new()
        .node("p", "Person")
        .prop("p", "name", "ann")
        .node("f", "Pasta")
        .prop("f", "name", "carbonara")
        .edge("p", "f", "favoriteFood")
        .build()
        .unwrap();
    let bad = GraphBuilder::new()
        .node("p", "Person")
        .prop("p", "name", "ann")
        .node("q", "Person")
        .prop("q", "name", "bob")
        .edge("p", "q", "favoriteFood")
        .build()
        .unwrap();
    for s in [&union_schema, &iface_schema] {
        assert!(pg_schema::strongly_satisfies(&good, s));
        assert!(!pg_schema::strongly_satisfies(&bad, s));
    }
}

/// Example 3.11 — multiple source types for one edge label.
#[test]
fn example_3_11_owner_edges() {
    let s = parses_consistently(
        r#"
        type Person { name: String! }
        type Car { brand: String! owner: Person }
        type Motorcycle { brand: String! owner: Person }
        "#,
    );
    let g = GraphBuilder::new()
        .node("p", "Person")
        .prop("p", "name", "ann")
        .node("c", "Car")
        .prop("c", "brand", "VW")
        .node("m", "Motorcycle")
        .prop("m", "brand", "BMW")
        .edge("c", "p", "owner")
        .edge("m", "p", "owner")
        .build()
        .unwrap();
    assert!(pg_schema::strongly_satisfies(&g, &s));
}

/// Example 3.12 — edge properties via field arguments.
#[test]
fn example_3_12_edge_properties() {
    let s = parses_consistently(
        r#"
        type UserSession {
            id: ID! @required
            user(certainty: Float! comment: String): User! @required
            startTime: Time! @required
            endTime: Time!
        }
        type User { id: ID! @required login: String! @required nicknames: [String!]! }
        scalar Time
        "#,
    );
    // Without the mandatory certainty property: WS2? No — the property is
    // *absent*, which is a DS-style mandate… the paper models mandatory
    // edge properties via non-null argument types (§3.5); absence shows up
    // nowhere in WS (WS2 only types present values). Our semantics
    // mirrors the paper: absence of a mandatory edge property is NOT a
    // WS/DS violation (the paper defines no rule for it); we document
    // this gap. Presence with a wrong type IS WS2.
    let g = GraphBuilder::new()
        .node("u", "User")
        .prop("u", "id", Value::Id("1".into()))
        .prop("u", "login", "alice")
        .node("s", "UserSession")
        .prop("s", "id", Value::Id("2".into()))
        .prop("s", "startTime", "t0")
        .edge("s", "u", "user")
        .edge_prop("certainty", "very") // wrong type
        .build()
        .unwrap();
    let report = validate(&g, &s, &ValidationOptions::default());
    assert!(report.by_rule(Rule::WS2).next().is_some());
}

/// Example 6.1 (consistent variant, cf. DESIGN.md): the schema builds and
/// OT1 is unsatisfiable — asserted in crates/reason tests; here we check
/// the schema-level artifacts.
#[test]
fn example_6_1_builds_with_list_interface_field() {
    let s = parses_consistently(
        r#"
        type OT1 { }
        interface IT { hasOT1: [OT1] @uniqueForTarget }
        type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
        type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
        "#,
    );
    let it = s.label_type("IT").unwrap();
    assert_eq!(s.schema().implementors(it).len(), 2);
    assert_eq!(s.constraint_sites().len(), 3);
}

/// The paper's as-printed Example 6.1 is interface-inconsistent under
/// Definition 4.3 — we assert the checker catches it (documented paper
/// glitch).
#[test]
fn example_6_1_as_printed_is_interface_inconsistent() {
    let doc = gql_sdl::parse(
        r#"
        type OT1 { }
        interface IT { hasOT1: OT1 @uniqueForTarget }
        type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
        type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
        "#,
    )
    .unwrap();
    let schema = gql_schema::build_schema(&doc).unwrap();
    let violations = gql_schema::consistency::check(&schema);
    assert_eq!(violations.len(), 2); // OT2 and OT3 field types ⋢ OT1
}
