//! Snapshot file codec.
//!
//! A snapshot is one CRC-framed blob (same `[len][crc][payload]` frame
//! as a WAL record) whose payload captures every live session in full:
//!
//! ```text
//! payload = [magic "PGS1"][base_seq u64][next_session_id u64][count u32]
//!           count × [id u64][last_seq u64][deltas_applied u64]
//!                   [sdl: u32 len + bytes][graph: u32 len + binary graph]
//!                   [pending: u8 flag][flag = 1: u32 len + bytes]
//! ```
//!
//! The trailing `pending` field carries the candidate schema SDL of an
//! open migration window (flag 1), so compacting away the window's
//! `SchemaChange(begin)` WAL record does not lose it; flag 0 means no
//! window is open.
//!
//! `base_seq` is the sequence number at which the WAL was rotated when
//! the snapshot began; every record with `seq <= base_seq` is superseded.
//! Each session additionally carries its own `last_seq` — its state may
//! include records *newer* than `base_seq` (appends continue while the
//! snapshot is being captured), and replay must skip exactly those.
//! A snapshot that fails its CRC or structural decode is ignored as a
//! whole; recovery then falls back to the next older generation.

use pgraph::binary;

use crate::crc32::crc32;
use crate::record::FRAME_HEADER;
use crate::wire::SNAPSHOT_MAGIC;
use crate::RecoveredSession;

const MAGIC: &[u8; 4] = &SNAPSHOT_MAGIC;

/// Everything a decoded snapshot says.
#[derive(Debug)]
pub(crate) struct SnapshotData {
    pub base_seq: u64,
    pub next_session_id: u64,
    pub sessions: Vec<RecoveredSession>,
}

/// Encodes one session entry (used incrementally during compaction so
/// graphs are serialised straight out of the session lock, no clone).
pub(crate) fn encode_session(
    id: u64,
    last_seq: u64,
    deltas_applied: u64,
    schema_sdl: &str,
    graph: &pgraph::PropertyGraph,
    pending_migration: Option<&str>,
) -> Vec<u8> {
    let graph_bytes = binary::graph_to_bytes(graph);
    let mut out = Vec::with_capacity(33 + schema_sdl.len() + graph_bytes.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&last_seq.to_le_bytes());
    out.extend_from_slice(&deltas_applied.to_le_bytes());
    out.extend_from_slice(&(schema_sdl.len() as u32).to_le_bytes());
    out.extend_from_slice(schema_sdl.as_bytes());
    out.extend_from_slice(&(graph_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&graph_bytes);
    match pending_migration {
        Some(sdl) => {
            out.push(1);
            out.extend_from_slice(&(sdl.len() as u32).to_le_bytes());
            out.extend_from_slice(sdl.as_bytes());
        }
        None => out.push(0),
    }
    out
}

/// Assembles the full framed snapshot file contents.
pub(crate) fn assemble(base_seq: u64, next_session_id: u64, sessions: &[Vec<u8>]) -> Vec<u8> {
    let body: usize = sessions.iter().map(Vec::len).sum();
    let mut payload = Vec::with_capacity(24 + body);
    payload.extend_from_slice(MAGIC);
    payload.extend_from_slice(&base_seq.to_le_bytes());
    payload.extend_from_slice(&next_session_id.to_le_bytes());
    payload.extend_from_slice(&(sessions.len() as u32).to_le_bytes());
    for session in sessions {
        payload.extend_from_slice(session);
    }
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a snapshot file; `None` if it is torn, corrupt or malformed
/// in any way (the caller falls back to an older generation).
pub(crate) fn decode(buf: &[u8]) -> Option<SnapshotData> {
    if buf.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if buf.len() != FRAME_HEADER + len {
        return None;
    }
    let payload = &buf[FRAME_HEADER..];
    if crc32(payload) != crc {
        return None;
    }
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let slice = payload.get(*pos..*pos + n)?;
        *pos += n;
        Some(slice)
    };
    if take(&mut pos, 4)? != MAGIC {
        return None;
    }
    let base_seq = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
    let next_session_id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let mut sessions = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let last_seq = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let deltas_applied = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let sdl_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let schema_sdl = std::str::from_utf8(take(&mut pos, sdl_len)?)
            .ok()?
            .to_owned();
        let graph_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let graph = binary::graph_from_bytes(take(&mut pos, graph_len)?).ok()?;
        let pending_migration = match take(&mut pos, 1)?[0] {
            0 => None,
            1 => {
                let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                Some(std::str::from_utf8(take(&mut pos, len)?).ok()?.to_owned())
            }
            _ => return None,
        };
        sessions.push(RecoveredSession {
            id,
            schema_sdl,
            graph,
            deltas_applied,
            last_seq,
            pending_migration,
        });
    }
    if pos != payload.len() {
        return None;
    }
    Some(SnapshotData {
        base_seq,
        next_session_id,
        sessions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::{PropertyGraph, Value};

    fn sample() -> Vec<u8> {
        let mut graph = PropertyGraph::new();
        let u = graph.add_node("User");
        graph.set_node_property(u, "login", Value::from("alice"));
        let entries = vec![
            encode_session(1, 5, 4, "type User { login: String! }", &graph, None),
            encode_session(
                7,
                9,
                0,
                "type T { x: Int }",
                &PropertyGraph::new(),
                Some("type T { x: Int y: Int }"),
            ),
        ];
        assemble(9, 8, &entries)
    }

    #[test]
    fn snapshot_round_trip() {
        let bytes = sample();
        let snap = decode(&bytes).expect("decodes");
        assert_eq!(snap.base_seq, 9);
        assert_eq!(snap.next_session_id, 8);
        assert_eq!(snap.sessions.len(), 2);
        assert_eq!(snap.sessions[0].id, 1);
        assert_eq!(snap.sessions[0].last_seq, 5);
        assert_eq!(snap.sessions[0].deltas_applied, 4);
        assert_eq!(snap.sessions[0].graph.node_count(), 1);
        assert_eq!(snap.sessions[0].pending_migration, None);
        assert_eq!(snap.sessions[1].id, 7);
        assert!(snap.sessions[1].graph.is_empty());
        assert_eq!(
            snap.sessions[1].pending_migration.as_deref(),
            Some("type T { x: Int y: Int }"),
            "open migration window survives the snapshot"
        );
    }

    #[test]
    fn any_corruption_rejects_the_whole_snapshot() {
        let clean = sample();
        for cut in 0..clean.len() {
            assert!(decode(&clean[..cut]).is_none(), "prefix {cut} decoded");
        }
        for byte in 0..clean.len() {
            let mut buf = clean.clone();
            buf[byte] ^= 0x10;
            assert!(decode(&buf).is_none(), "flip at {byte} decoded");
        }
    }
}
