//! E1: the cardinality table of §3.3 —
//!
//! | "rel" is a …      | definition in type A                  |
//! |-------------------|---------------------------------------|
//! | 1:1 relationship  | `rel: B @uniqueForTarget`             |
//! | 1:N relationship  | `rel: B`                              |
//! | N:1 relationship  | `rel: [B] @uniqueForTarget`           |
//! | N:M relationship  | `rel: [B]`                            |
//!
//! "1" on the left bounds how many A-sources a B may have (incoming);
//! "1" on the right bounds how many B-targets an A may have (outgoing).
//! For each row we assert the two limiting scenarios: fan-out from one A
//! to two Bs, and fan-in from two As to one B.

use pg_schema::{validate, PgSchema, Rule, ValidationOptions};
use pgraph::{GraphBuilder, PropertyGraph};

fn schema(rel_def: &str) -> PgSchema {
    PgSchema::parse(&format!("type A {{ rel: {rel_def} }}\ntype B {{ x: Int }}")).unwrap()
}

/// One A with edges to two different Bs.
fn fan_out() -> PropertyGraph {
    GraphBuilder::new()
        .node("a", "A")
        .node("b1", "B")
        .node("b2", "B")
        .edge("a", "b1", "rel")
        .edge("a", "b2", "rel")
        .build()
        .unwrap()
}

/// Two As with edges to the same B.
fn fan_in() -> PropertyGraph {
    GraphBuilder::new()
        .node("a1", "A")
        .node("a2", "A")
        .node("b", "B")
        .edge("a1", "b", "rel")
        .edge("a2", "b", "rel")
        .build()
        .unwrap()
}

fn rules(g: &PropertyGraph, s: &PgSchema) -> Vec<Rule> {
    validate(g, s, &ValidationOptions::default())
        .counts()
        .keys()
        .copied()
        .collect()
}

#[test]
fn row_1_one_to_one() {
    let s = schema("B @uniqueForTarget");
    // Neither fan-out (right side 1) nor fan-in (left side 1) is allowed.
    assert_eq!(rules(&fan_out(), &s), vec![Rule::WS4]);
    assert_eq!(rules(&fan_in(), &s), vec![Rule::DS3]);
}

#[test]
fn row_2_one_to_many() {
    // 1:N — one A per B (…wait: the table's 1:N means each A has at most
    // one B (non-list), but a B may be shared by many As.
    let s = schema("B");
    assert_eq!(rules(&fan_out(), &s), vec![Rule::WS4]);
    assert_eq!(rules(&fan_in(), &s), vec![]);
}

#[test]
fn row_3_many_to_one() {
    let s = schema("[B] @uniqueForTarget");
    assert_eq!(rules(&fan_out(), &s), vec![]);
    assert_eq!(rules(&fan_in(), &s), vec![Rule::DS3]);
}

#[test]
fn row_4_many_to_many() {
    let s = schema("[B]");
    assert_eq!(rules(&fan_out(), &s), vec![]);
    assert_eq!(rules(&fan_in(), &s), vec![]);
}

#[test]
fn single_edges_conform_in_all_four_rows() {
    let single = GraphBuilder::new()
        .node("a", "A")
        .node("b", "B")
        .edge("a", "b", "rel")
        .build()
        .unwrap();
    for def in ["B @uniqueForTarget", "B", "[B] @uniqueForTarget", "[B]"] {
        let s = schema(def);
        assert!(
            pg_schema::strongly_satisfies(&single, &s),
            "single edge should conform under `rel: {def}`"
        );
    }
}
