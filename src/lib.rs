//! Umbrella crate for the `pg-schema` workspace.
//!
//! Re-exports the workspace public API under stable module names for the
//! `examples/` programs and the cross-crate integration tests in
//! `tests/`:
//!
//! * [`graph`] — the Property Graph model (`pgraph`),
//! * [`sdl`] — the GraphQL SDL front-end (`gql-sdl`),
//! * [`schema`] — the formal schema model of §4 (`gql-schema`),
//! * [`core`] — validation semantics and engines (`pg-schema`),
//! * [`reason`] — the §6.2 satisfiability reasoner (`pg-reason`).
//!
//! The crate also anchors the repository's documentation tests: the
//! fenced Rust snippets in `README.md` are compiled and run as doctests
//! of the hidden `ReadmeDoctests` item below, so the README's API
//! examples cannot rot.

pub use gql_schema as schema;
pub use gql_sdl as sdl;
pub use pg_reason as reason;
pub use pg_schema as core;
pub use pgraph as graph;

/// Compiles every ```` ```rust ```` snippet in `README.md` under
/// `cargo test --doc`.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
