//! The core Property Graph structure (Definition 2.1).

use std::collections::BTreeMap;
use std::fmt;

use crate::Value;

/// Identifier of a node (an element of `V`).
///
/// Ids are dense indexes into the graph's node table; they are stable for
/// the lifetime of the graph (removal tombstones rather than reindexes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge (an element of `E`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Builds a `NodeId` from a raw index. Intended for deserialisation and
    /// generators; an out-of-range id is simply absent from the graph.
    pub fn from_index(ix: usize) -> Self {
        NodeId(ix as u32)
    }
}

impl EdgeId {
    /// The raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Builds an `EdgeId` from a raw index.
    pub fn from_index(ix: usize) -> Self {
        EdgeId(ix as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Errors raised by graph mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operation referred to a node id that is not (or no longer) in `V`.
    MissingNode(NodeId),
    /// An operation referred to an edge id that is not (or no longer) in `E`.
    MissingEdge(EdgeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingNode(n) => write!(f, "node {n} does not exist"),
            GraphError::MissingEdge(e) => write!(f, "edge {e} does not exist"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Properties are kept sorted by name; graphs typically carry a handful of
/// properties per element, for which a sorted map beats hashing and gives
/// deterministic iteration (important for reproducible reports and JSON).
pub(crate) type PropMap = BTreeMap<String, Value>;

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NodeData {
    pub label: String,
    pub props: PropMap,
    pub alive: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EdgeData {
    pub label: String,
    pub src: NodeId,
    pub dst: NodeId,
    pub props: PropMap,
    pub alive: bool,
}

/// A borrowed view of one node: its id, label (`λ`) and properties (`σ`).
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'g> {
    /// The node's id.
    pub id: NodeId,
    pub(crate) data: &'g NodeData,
}

impl<'g> NodeRef<'g> {
    /// The node's label, `λ(v)`.
    pub fn label(&self) -> &'g str {
        &self.data.label
    }
    /// The value of property `name`, i.e. `σ(v, name)` if defined.
    pub fn property(&self, name: &str) -> Option<&'g Value> {
        self.data.props.get(name)
    }
    /// All properties of the node in name order.
    pub fn properties(&self) -> impl Iterator<Item = (&'g str, &'g Value)> {
        self.data.props.iter().map(|(k, v)| (k.as_str(), v))
    }
    /// Number of properties defined on this node.
    pub fn property_count(&self) -> usize {
        self.data.props.len()
    }
}

/// A borrowed view of one edge: its id, label, endpoints (`ρ`) and
/// properties.
#[derive(Debug, Clone, Copy)]
pub struct EdgeRef<'g> {
    /// The edge's id.
    pub id: EdgeId,
    pub(crate) data: &'g EdgeData,
}

impl<'g> EdgeRef<'g> {
    /// The edge's label, `λ(e)`.
    pub fn label(&self) -> &'g str {
        &self.data.label
    }
    /// The source node, first component of `ρ(e)`.
    pub fn source(&self) -> NodeId {
        self.data.src
    }
    /// The target node, second component of `ρ(e)`.
    pub fn target(&self) -> NodeId {
        self.data.dst
    }
    /// The value of property `name`, i.e. `σ(e, name)` if defined.
    pub fn property(&self, name: &str) -> Option<&'g Value> {
        self.data.props.get(name)
    }
    /// All properties of the edge in name order.
    pub fn properties(&self) -> impl Iterator<Item = (&'g str, &'g Value)> {
        self.data.props.iter().map(|(k, v)| (k.as_str(), v))
    }
    /// Number of properties defined on this edge.
    pub fn property_count(&self) -> usize {
        self.data.props.len()
    }
}

/// A directed, labelled multigraph with node and edge properties —
/// the tuple `(V, E, ρ, λ, σ)` of Definition 2.1.
///
/// The structure is a plain adjacency-free element store: edges know their
/// endpoints, but no adjacency lists are maintained inline. Validation-grade
/// adjacency and label indexes are built on demand by
/// [`crate::index::GraphIndex`], which keeps the mutation path cheap and the
/// read path explicit about what it costs — the naive validation engine of
/// the paper deliberately runs *without* indexes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PropertyGraph {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) edges: Vec<EdgeData>,
    live_nodes: usize,
    live_edges: usize,
}

impl PropertyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        PropertyGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// Number of live nodes, `|V|`.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges, `|E|`.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound (exclusive) on raw node indexes: every live node id
    /// satisfies `id.index() < node_index_bound()`. Includes tombstones,
    /// so it can exceed [`node_count`](Self::node_count); use
    /// [`node`](Self::node) to skip them. This is the basis for
    /// partitioning the id space into [`shard`](crate::shard) ranges.
    pub fn node_index_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Upper bound (exclusive) on raw edge indexes; see
    /// [`node_index_bound`](Self::node_index_bound).
    pub fn edge_index_bound(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no nodes (and therefore no edges).
    pub fn is_empty(&self) -> bool {
        self.live_nodes == 0
    }

    /// Adds a node with the given label and returns its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: label.into(),
            props: PropMap::new(),
            alive: true,
        });
        self.live_nodes += 1;
        id
    }

    /// Adds an edge `src --label--> dst` and returns its id.
    ///
    /// Fails if either endpoint does not exist: `ρ` must be total on `E`.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: impl Into<String>,
    ) -> Result<EdgeId, GraphError> {
        self.require_node(src)?;
        self.require_node(dst)?;
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData {
            label: label.into(),
            src,
            dst,
            props: PropMap::new(),
            alive: true,
        });
        self.live_edges += 1;
        Ok(id)
    }

    /// Removes a node and all its incident edges. Ids of other elements are
    /// unaffected (tombstoning).
    pub fn remove_node(&mut self, id: NodeId) -> Result<(), GraphError> {
        self.require_node(id)?;
        for ix in 0..self.edges.len() {
            let e = &self.edges[ix];
            if e.alive && (e.src == id || e.dst == id) {
                self.edges[ix].alive = false;
                self.live_edges -= 1;
            }
        }
        self.nodes[id.index()].alive = false;
        self.live_nodes -= 1;
        Ok(())
    }

    /// Removes an edge.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<(), GraphError> {
        self.require_edge(id)?;
        self.edges[id.index()].alive = false;
        self.live_edges -= 1;
        Ok(())
    }

    /// True if `id` denotes a live node.
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|n| n.alive)
    }

    /// True if `id` denotes a live edge.
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).is_some_and(|e| e.alive)
    }

    /// `λ(v)` — the label of a node.
    pub fn node_label(&self, id: NodeId) -> Option<&str> {
        self.nodes
            .get(id.index())
            .filter(|n| n.alive)
            .map(|n| n.label.as_str())
    }

    /// `λ(e)` — the label of an edge.
    pub fn edge_label(&self, id: EdgeId) -> Option<&str> {
        self.edges
            .get(id.index())
            .filter(|e| e.alive)
            .map(|e| e.label.as_str())
    }

    /// `ρ(e)` — the (source, target) pair of an edge.
    pub fn edge_endpoints(&self, id: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges
            .get(id.index())
            .filter(|e| e.alive)
            .map(|e| (e.src, e.dst))
    }

    /// Relabels a node. Mostly used by the violation injector.
    pub fn set_node_label(
        &mut self,
        id: NodeId,
        label: impl Into<String>,
    ) -> Result<(), GraphError> {
        self.require_node(id)?;
        self.nodes[id.index()].label = label.into();
        Ok(())
    }

    /// Relabels an edge.
    pub fn set_edge_label(
        &mut self,
        id: EdgeId,
        label: impl Into<String>,
    ) -> Result<(), GraphError> {
        self.require_edge(id)?;
        self.edges[id.index()].label = label.into();
        Ok(())
    }

    /// Sets `σ(v, name) = value`, replacing any previous value.
    pub fn set_node_property(
        &mut self,
        id: NodeId,
        name: impl Into<String>,
        value: Value,
    ) -> Option<Value> {
        assert!(
            self.contains_node(id),
            "set_node_property: {id} not in graph"
        );
        self.nodes[id.index()].props.insert(name.into(), value)
    }

    /// Removes `(v, name)` from `dom(σ)`, returning the old value.
    pub fn remove_node_property(&mut self, id: NodeId, name: &str) -> Option<Value> {
        self.nodes.get_mut(id.index())?.props.remove(name)
    }

    /// Sets `σ(e, name) = value`, replacing any previous value.
    pub fn set_edge_property(
        &mut self,
        id: EdgeId,
        name: impl Into<String>,
        value: Value,
    ) -> Option<Value> {
        assert!(
            self.contains_edge(id),
            "set_edge_property: {id} not in graph"
        );
        self.edges[id.index()].props.insert(name.into(), value)
    }

    /// Removes `(e, name)` from `dom(σ)`, returning the old value.
    pub fn remove_edge_property(&mut self, id: EdgeId, name: &str) -> Option<Value> {
        self.edges.get_mut(id.index())?.props.remove(name)
    }

    /// `σ(v, name)` for a node.
    pub fn node_property(&self, id: NodeId, name: &str) -> Option<&Value> {
        self.nodes
            .get(id.index())
            .filter(|n| n.alive)
            .and_then(|n| n.props.get(name))
    }

    /// `σ(e, name)` for an edge.
    pub fn edge_property(&self, id: EdgeId, name: &str) -> Option<&Value> {
        self.edges
            .get(id.index())
            .filter(|e| e.alive)
            .and_then(|e| e.props.get(name))
    }

    /// A full view of one node.
    pub fn node(&self, id: NodeId) -> Option<NodeRef<'_>> {
        self.nodes
            .get(id.index())
            .filter(|n| n.alive)
            .map(|data| NodeRef { id, data })
    }

    /// A full view of one edge.
    pub fn edge(&self, id: EdgeId) -> Option<EdgeRef<'_>> {
        self.edges
            .get(id.index())
            .filter(|e| e.alive)
            .map(|data| EdgeRef { id, data })
    }

    /// Iterates over all live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef<'_>> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(ix, data)| NodeRef {
                id: NodeId(ix as u32),
                data,
            })
    }

    /// Iterates over all live edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_>> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(ix, data)| EdgeRef {
                id: EdgeId(ix as u32),
                data,
            })
    }

    /// Iterates over all live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(ix, _)| NodeId(ix as u32))
    }

    /// Iterates over all live edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(ix, _)| EdgeId(ix as u32))
    }

    /// Outgoing edges of `v` (linear scan; use [`crate::index::GraphIndex`]
    /// for repeated queries).
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef<'_>> {
        self.edges().filter(move |e| e.source() == v)
    }

    /// Incoming edges of `v` (linear scan).
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef<'_>> {
        self.edges().filter(move |e| e.target() == v)
    }

    /// Compacts tombstoned elements away, producing a graph whose ids are
    /// dense again. Returns the rebuilt graph (ids are *not* preserved).
    pub fn compacted(&self) -> PropertyGraph {
        let mut out = PropertyGraph::with_capacity(self.live_nodes, self.live_edges);
        let mut remap = vec![None; self.nodes.len()];
        for (ix, n) in self.nodes.iter().enumerate() {
            if n.alive {
                let new = out.add_node(n.label.clone());
                out.nodes[new.index()].props = n.props.clone();
                remap[ix] = Some(new);
            }
        }
        for e in self.edges.iter().filter(|e| e.alive) {
            let (Some(src), Some(dst)) = (remap[e.src.index()], remap[e.dst.index()]) else {
                continue;
            };
            let id = out
                .add_edge(src, dst, e.label.clone())
                .expect("remapped endpoints exist");
            out.edges[id.index()].props = e.props.clone();
        }
        out
    }

    /// Rebuilds a graph from raw element tables, recomputing the live
    /// counters from the `alive` flags. Used by the binary snapshot codec,
    /// which must reproduce the id space *exactly* — tombstones included —
    /// so that replayed deltas resolve ids the same way they originally did.
    pub(crate) fn from_raw_parts(nodes: Vec<NodeData>, edges: Vec<EdgeData>) -> PropertyGraph {
        let live_nodes = nodes.iter().filter(|n| n.alive).count();
        let live_edges = edges.iter().filter(|e| e.alive).count();
        PropertyGraph {
            nodes,
            edges,
            live_nodes,
            live_edges,
        }
    }

    fn require_node(&self, id: NodeId) -> Result<(), GraphError> {
        if self.contains_node(id) {
            Ok(())
        } else {
            Err(GraphError::MissingNode(id))
        }
    }

    fn require_edge(&self, id: EdgeId) -> Result<(), GraphError> {
        if self.contains_edge(id) {
            Ok(())
        } else {
            Err(GraphError::MissingEdge(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_graph() -> (PropertyGraph, NodeId, NodeId, EdgeId) {
        let mut g = PropertyGraph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let e = g.add_edge(a, b, "rel").unwrap();
        (g, a, b, e)
    }

    #[test]
    fn counts_and_lookup() {
        let (g, a, b, e) = two_node_graph();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_label(a), Some("A"));
        assert_eq!(g.node_label(b), Some("B"));
        assert_eq!(g.edge_label(e), Some("rel"));
        assert_eq!(g.edge_endpoints(e), Some((a, b)));
    }

    #[test]
    fn edges_require_live_endpoints() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("A");
        let ghost = NodeId::from_index(42);
        assert_eq!(
            g.add_edge(a, ghost, "rel"),
            Err(GraphError::MissingNode(ghost))
        );
    }

    #[test]
    fn properties_roundtrip() {
        let (mut g, a, _, e) = two_node_graph();
        assert_eq!(g.set_node_property(a, "x", Value::Int(1)), None);
        assert_eq!(
            g.set_node_property(a, "x", Value::Int(2)),
            Some(Value::Int(1))
        );
        assert_eq!(g.node_property(a, "x"), Some(&Value::Int(2)));
        g.set_edge_property(e, "w", Value::Float(0.5));
        assert_eq!(g.edge_property(e, "w"), Some(&Value::Float(0.5)));
        assert_eq!(g.remove_node_property(a, "x"), Some(Value::Int(2)));
        assert_eq!(g.node_property(a, "x"), None);
    }

    #[test]
    fn removing_node_removes_incident_edges() {
        let (mut g, a, b, e) = two_node_graph();
        let e2 = g.add_edge(b, a, "back").unwrap();
        g.remove_node(a).unwrap();
        assert!(!g.contains_node(a));
        assert!(!g.contains_edge(e));
        assert!(!g.contains_edge(e2));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn tombstoned_ids_do_not_resurrect() {
        let (mut g, a, _, _) = two_node_graph();
        g.remove_node(a).unwrap();
        assert_eq!(g.node_label(a), None);
        assert!(g.remove_node(a).is_err());
        // New nodes get fresh ids.
        let c = g.add_node("C");
        assert_ne!(c, a);
    }

    #[test]
    fn self_loops_and_parallel_edges_are_allowed() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("A");
        let l1 = g.add_edge(a, a, "self").unwrap();
        let l2 = g.add_edge(a, a, "self").unwrap();
        assert_ne!(l1, l2);
        assert_eq!(g.out_edges(a).count(), 2);
        assert_eq!(g.in_edges(a).count(), 2);
    }

    #[test]
    fn out_and_in_edges_scan() {
        let (mut g, a, b, _) = two_node_graph();
        g.add_edge(a, b, "rel2").unwrap();
        g.add_edge(b, a, "back").unwrap();
        assert_eq!(g.out_edges(a).count(), 2);
        assert_eq!(g.in_edges(b).count(), 2);
        assert_eq!(g.out_edges(b).count(), 1);
        assert_eq!(g.in_edges(a).count(), 1);
    }

    #[test]
    fn compaction_preserves_structure() {
        let (mut g, a, b, _) = two_node_graph();
        let c = g.add_node("C");
        g.add_edge(b, c, "next").unwrap();
        g.set_node_property(c, "p", Value::Int(7));
        g.remove_node(a).unwrap();
        let compact = g.compacted();
        assert_eq!(compact.node_count(), 2);
        assert_eq!(compact.edge_count(), 1);
        assert_eq!(compact.nodes.len(), 2); // dense again
        let labels: Vec<_> = compact.nodes().map(|n| n.label().to_owned()).collect();
        assert_eq!(labels, vec!["B", "C"]);
        let e = compact.edges().next().unwrap();
        assert_eq!(e.label(), "next");
        let c_new = compact.nodes().find(|n| n.label() == "C").unwrap().id;
        assert_eq!(compact.node_property(c_new, "p"), Some(&Value::Int(7)));
    }

    #[test]
    fn node_ref_iteration_is_ordered() {
        let (g, a, b, _) = two_node_graph();
        let ids: Vec<_> = g.node_ids().collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn display_of_ids_and_errors() {
        let (g, a, _, e) = two_node_graph();
        assert_eq!(a.to_string(), "n0");
        assert_eq!(e.to_string(), "e0");
        assert_eq!(
            GraphError::MissingNode(NodeId::from_index(9)).to_string(),
            "node n9 does not exist"
        );
        drop(g);
    }
}
