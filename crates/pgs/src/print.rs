//! Rendering SDL documents as PG-Schema — the reverse of [`crate::lower`].
//!
//! The printer covers exactly the *overlapping fragment*: the canonical
//! shapes the lowering table produces. On that fragment it is lossless —
//! `lower ∘ print` reproduces the same classified schema, which is what
//! the translation-parity suite asserts (byte-identical canonical
//! reports across languages on all engines). Everything outside the
//! fragment fails with an explicit [`PrintError`] naming the construct
//! and the documented policy, never a silent approximation: a silently
//! altered wrap shape would change the `expected` strings embedded in
//! violation reports and break parity.

use std::collections::{HashMap, HashSet};

use gql_schema::directives as dir;
use gql_sdl::ast::{ConstValue, Definition, Document, FieldDef, InputValueDef, Type, TypeDef};

use crate::ast::TypeMode;
use crate::lower::SCALAR_MAP;

/// A construct the PG-Schema fragment cannot represent.
#[derive(Debug, Clone, PartialEq)]
pub struct PrintError {
    /// What could not be rendered, and why.
    pub message: String,
}

impl std::fmt::Display for PrintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} — outside the PG-Schema fragment (DESIGN §PG-Schema frontend)",
            self.message
        )
    }
}

impl std::error::Error for PrintError {}

fn bail<T>(message: impl Into<String>) -> Result<T, PrintError> {
    Err(PrintError {
        message: message.into(),
    })
}

/// Renders `doc` as a `CREATE GRAPH TYPE` statement named `name`.
///
/// `mode` selects the printed type mode; pass the mode recovered from a
/// pragma ([`crate::pragma_of`]) to round-trip a lowered document, or
/// [`TypeMode::Strict`] for plain SDL.
pub fn print_pgschema(doc: &Document, name: &str, mode: TypeMode) -> Result<String, PrintError> {
    Printer::new(doc)?.run(name, mode)
}

/// Scalar name SDL → PG-Schema keyword; custom scalars pass verbatim.
fn scalar_keyword(sdl_name: &str) -> String {
    for (kw, sdl) in SCALAR_MAP {
        // BOOL is the canonical spelling for Boolean (BOOLEAN also parses).
        if *sdl == sdl_name && *kw != "BOOLEAN" {
            return (*kw).to_owned();
        }
    }
    sdl_name.to_owned()
}

struct Printer<'a> {
    doc: &'a Document,
    /// Object/interface names — relationship targets must be one.
    node_names: HashSet<&'a str>,
    /// Interface name → its fields (for inherited-copy elision).
    interfaces: HashMap<&'a str, &'a [FieldDef]>,
}

impl<'a> Printer<'a> {
    fn new(doc: &'a Document) -> Result<Self, PrintError> {
        let mut node_names = HashSet::new();
        let mut interfaces = HashMap::new();
        for d in &doc.definitions {
            match d {
                Definition::Type(TypeDef::Object(o)) => {
                    node_names.insert(o.name.as_str());
                }
                Definition::Type(TypeDef::Interface(i)) => {
                    node_names.insert(i.name.as_str());
                    interfaces.insert(i.name.as_str(), i.fields.as_slice());
                }
                Definition::Type(TypeDef::Scalar(_)) => {}
                Definition::Type(t) => {
                    return bail(format!(
                        "{} type `{}`",
                        match t {
                            TypeDef::Union(_) => "union",
                            TypeDef::Enum(_) => "enum",
                            TypeDef::InputObject(_) => "input",
                            _ => unreachable!(),
                        },
                        t.name()
                    ))
                }
                Definition::Schema(_) => return bail("a `schema` block"),
                Definition::Extend(t) => return bail(format!("`extend type {}`", t.name())),
                Definition::Directive(d) => {
                    return bail(format!("directive definition `@{}`", d.name))
                }
            }
        }
        Ok(Printer {
            doc,
            node_names,
            interfaces,
        })
    }

    fn run(&self, name: &str, mode: TypeMode) -> Result<String, PrintError> {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        let mut keys = Vec::new();
        for d in &self.doc.definitions {
            let (type_name, is_abstract, implements, fields, directives) = match d {
                Definition::Type(TypeDef::Object(o)) => (
                    o.name.as_str(),
                    false,
                    o.implements.as_slice(),
                    o.fields.as_slice(),
                    o.directives.as_slice(),
                ),
                Definition::Type(TypeDef::Interface(i)) => (
                    i.name.as_str(),
                    true,
                    [].as_slice(),
                    i.fields.as_slice(),
                    i.directives.as_slice(),
                ),
                _ => continue,
            };
            let mut props = Vec::new();
            for f in fields {
                if self.inherited_copy(implements, f) {
                    continue;
                }
                if self.is_relationship(f) {
                    edges.push(self.edge(type_name, f)?);
                } else {
                    props.push(self.prop(type_name, f)?);
                }
            }
            for du in directives {
                if du.name == dir::KEY {
                    keys.push(self.key(type_name, du)?);
                } else {
                    return bail(format!("directive `@{}` on type `{type_name}`", du.name));
                }
            }
            let head = if implements.is_empty() {
                type_name.to_owned()
            } else {
                format!(": {} & {}", implements.join(" & "), type_name)
            };
            let head = if is_abstract {
                format!("ABSTRACT ({head}")
            } else {
                format!("({head}")
            };
            if props.is_empty() {
                nodes.push(format!("    {head})"));
            } else {
                nodes.push(format!(
                    "    {head} {{\n        {}\n    }})",
                    props.join(",\n        ")
                ));
            }
        }
        let mut out = format!("CREATE GRAPH TYPE {name} {} {{\n", keyword(mode));
        let elements: Vec<String> = nodes.into_iter().chain(edges).chain(keys).collect();
        out.push_str(&elements.join(",\n"));
        out.push_str("\n}\n");
        Ok(out)
    }

    /// True if `f` is byte-for-byte (modulo spans) one of the fields an
    /// implemented interface declares — the redeclared copy SDL requires,
    /// which PG-Schema expresses by inheritance and must not re-print.
    fn inherited_copy(&self, implements: &[String], f: &FieldDef) -> bool {
        implements.iter().any(|i| {
            self.interfaces
                .get(i.as_str())
                .is_some_and(|fs| fs.iter().any(|g| fields_eq(f, g)))
        })
    }

    fn is_relationship(&self, f: &FieldDef) -> bool {
        self.node_names.contains(f.ty.base_name())
    }

    /// One property: the four canonical shapes of the lowering table.
    fn prop(&self, type_name: &str, f: &FieldDef) -> Result<String, PrintError> {
        let at = format!("field `{type_name}.{}`", f.name);
        if !f.args.is_empty() {
            return bail(format!("{at}: arguments on a scalar-typed field"));
        }
        let mut required = false;
        for du in &f.directives {
            if du.name == dir::REQUIRED && du.args.is_empty() {
                required = true;
            } else {
                return bail(format!("{at}: directive `@{}`", du.name));
            }
        }
        let (ty, array) = match &f.ty {
            Type::NonNull(inner) => match &**inner {
                Type::Named(n) => (n, false),
                Type::List(item) => match &**item {
                    Type::NonNull(base) => match &**base {
                        Type::Named(n) => (n, true),
                        _ => return bail(format!("{at}: type `{}`", f.ty)),
                    },
                    _ => return bail(format!("{at}: type `{}`", f.ty)),
                },
                _ => return bail(format!("{at}: type `{}`", f.ty)),
            },
            _ => {
                return bail(format!(
                    "{at}: type `{}` (properties must be `T!` or `[T!]!`)",
                    f.ty
                ))
            }
        };
        let mut line = String::new();
        if !required {
            line.push_str("OPTIONAL ");
        }
        line.push_str(&f.name);
        line.push(' ');
        line.push_str(&scalar_keyword(ty));
        if array {
            line.push_str(" ARRAY");
        }
        Ok(line)
    }

    /// One edge element from a relationship field.
    fn edge(&self, type_name: &str, f: &FieldDef) -> Result<String, PrintError> {
        let at = format!("field `{type_name}.{}`", f.name);
        let mut required = false;
        let mut distinct = false;
        let mut no_loops = false;
        let mut unique = false;
        let mut required_for_target = false;
        for du in &f.directives {
            if !du.args.is_empty() {
                return bail(format!("{at}: directive `@{}` with arguments", du.name));
            }
            match du.name.as_str() {
                dir::REQUIRED => required = true,
                dir::DISTINCT => distinct = true,
                // The paper writes both @noloops (§3) and @noLoops (§4.3).
                dir::NO_LOOPS | "noloops" => no_loops = true,
                dir::UNIQUE_FOR_TARGET => unique = true,
                dir::REQUIRED_FOR_TARGET => required_for_target = true,
                other => return bail(format!("{at}: directive `@{other}`")),
            }
        }
        let (target, outgoing) = match (&f.ty, required) {
            (Type::Named(n), false) => (n, Some("0..1")),
            (Type::NonNull(inner), true) => match &**inner {
                Type::Named(n) => (n, Some("1..1")),
                _ => return bail(format!("{at}: type `{}`", f.ty)),
            },
            (Type::List(item), req) => match &**item {
                Type::Named(n) => (n, req.then_some("1..*")),
                _ => return bail(format!("{at}: type `{}`", f.ty)),
            },
            _ => {
                return bail(format!(
                    "{at}: type `{}` with{} @required (edges must be `T`, `T! @required`, \
                     `[T]`, or `[T] @required`)",
                    f.ty,
                    if required { "" } else { "out" },
                ))
            }
        };
        let mut props = Vec::new();
        for a in &f.args {
            props.push(self.edge_prop(&at, a)?);
        }
        let props = if props.is_empty() {
            String::new()
        } else {
            format!(" {{ {} }}", props.join(", "))
        };
        let mut line = format!("    (:{type_name})-[:{}{props}]->(:{target})", f.name);
        if let Some(card) = outgoing {
            line.push_str(" OUTGOING ");
            line.push_str(card);
        }
        match (unique, required_for_target) {
            (false, false) => {}
            (true, false) => line.push_str(" INCOMING 0..1"),
            (false, true) => line.push_str(" INCOMING 1..*"),
            (true, true) => line.push_str(" INCOMING 1..1"),
        }
        if distinct {
            line.push_str(" DISTINCT");
        }
        if no_loops {
            line.push_str(" NO LOOPS");
        }
        Ok(line)
    }

    fn edge_prop(&self, at: &str, a: &InputValueDef) -> Result<String, PrintError> {
        if a.default.is_some() {
            return bail(format!("{at}: argument `{}` with a default value", a.name));
        }
        if !a.directives.is_empty() {
            return bail(format!("{at}: directives on argument `{}`", a.name));
        }
        let (ty, array, optional) = match &a.ty {
            Type::Named(n) => (n, false, true),
            Type::NonNull(inner) => match &**inner {
                Type::Named(n) => (n, false, false),
                Type::List(item) => match &**item {
                    Type::NonNull(base) => match &**base {
                        Type::Named(n) => (n, true, false),
                        _ => return bail(format!("{at}: argument type `{}`", a.ty)),
                    },
                    _ => return bail(format!("{at}: argument type `{}`", a.ty)),
                },
                _ => return bail(format!("{at}: argument type `{}`", a.ty)),
            },
            Type::List(item) => match &**item {
                Type::NonNull(base) => match &**base {
                    Type::Named(n) => (n, true, true),
                    _ => return bail(format!("{at}: argument type `{}`", a.ty)),
                },
                _ => return bail(format!("{at}: argument type `{}`", a.ty)),
            },
        };
        if self.node_names.contains(ty.as_str()) {
            return bail(format!(
                "{at}: argument `{}` typed by node type `{ty}`",
                a.name
            ));
        }
        let mut line = String::new();
        if optional {
            line.push_str("OPTIONAL ");
        }
        line.push_str(&a.name);
        line.push(' ');
        line.push_str(&scalar_keyword(ty));
        if array {
            line.push_str(" ARRAY");
        }
        Ok(line)
    }

    fn key(&self, type_name: &str, du: &gql_sdl::ast::DirectiveUse) -> Result<String, PrintError> {
        let Some(ConstValue::List(items)) = du.arg("fields") else {
            return bail(format!("`@key` on `{type_name}` without a `fields` list"));
        };
        let mut fields = Vec::new();
        for v in items {
            match v {
                ConstValue::String(s) => fields.push(format!("x.{s}")),
                _ => return bail(format!("`@key` on `{type_name}` with a non-string field")),
            }
        }
        Ok(format!(
            "    FOR (x : {type_name}) KEY {}",
            fields.join(", ")
        ))
    }
}

fn keyword(mode: TypeMode) -> &'static str {
    match mode {
        TypeMode::Strict => "STRICT",
        TypeMode::Loose => "LOOSE",
    }
}

/// Structural field equality ignoring spans and descriptions.
fn fields_eq(a: &FieldDef, b: &FieldDef) -> bool {
    a.name == b.name
        && a.ty == b.ty
        && a.args.len() == b.args.len()
        && a.args
            .iter()
            .zip(&b.args)
            .all(|(x, y)| x.name == y.name && x.ty == y.ty && x.default == y.default)
        && a.directives.len() == b.directives.len()
        && a.directives
            .iter()
            .zip(&b.directives)
            .all(|(x, y)| x.name == y.name && x.args == y.args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    fn roundtrip(pgs: &str) -> String {
        let c = compile(pgs).unwrap();
        print_pgschema(&c.document, &c.name, c.mode).unwrap()
    }

    #[test]
    fn print_after_lower_is_a_fixpoint() {
        let src = "CREATE GRAPH TYPE Social STRICT {\n\
                   \x20   ABSTRACT (Message {\n\
                   \x20       body STRING,\n\
                   \x20       OPTIONAL score INT\n\
                   \x20   }),\n\
                   \x20   (: Message & Post),\n\
                   \x20   (Person {\n\
                   \x20       name STRING,\n\
                   \x20       OPTIONAL nick STRING ARRAY\n\
                   \x20   }),\n\
                   \x20   (:Person)-[:follows { since INT, OPTIONAL note STRING }]->(:Person) DISTINCT NO LOOPS,\n\
                   \x20   (:Person)-[:wrote]->(:Post) OUTGOING 0..1 INCOMING 1..1,\n\
                   \x20   FOR (x : Person) KEY x.name\n\
                   }\n";
        let once = roundtrip(src);
        let c2 = compile(&once).unwrap();
        let twice = print_pgschema(&c2.document, &c2.name, c2.mode).unwrap();
        assert_eq!(once, twice, "printing is idempotent:\n{once}");
        // And the canonical form equals the (already canonical) input.
        assert_eq!(once, src);
    }

    #[test]
    fn sdl_to_pgschema_to_sdl_preserves_the_schema() {
        let sdl = "interface Message {\n    body: String! @required\n}\n\n\
                   type Post implements Message {\n    body: String! @required\n}\n\n\
                   type Person @key(fields: [\"name\"]) {\n\
                   \x20   name: String! @required\n\
                   \x20   follows(since: Int!): [Person] @distinct @noLoops\n\
                   \x20   wrote: Post @uniqueForTarget\n}\n";
        let doc = gql_sdl::parse(sdl).unwrap();
        let pgs = print_pgschema(&doc, "G", TypeMode::Strict).unwrap();
        let c = compile(&pgs).unwrap();
        let lowered = gql_sdl::print_document(&c.document);
        assert_eq!(lowered, gql_sdl::print_document(&doc), "via:\n{pgs}");
    }

    #[test]
    fn out_of_fragment_wrapping_is_an_explicit_error() {
        let doc = gql_sdl::parse("type T { x: Int }").unwrap();
        let e = print_pgschema(&doc, "G", TypeMode::Strict).unwrap_err();
        assert!(e.message.contains("`T.x`"), "{e}");
        assert!(
            e.to_string().contains("outside the PG-Schema fragment"),
            "{e}"
        );
    }

    #[test]
    fn unions_and_enums_are_explicit_errors() {
        let doc = gql_sdl::parse("type A { x: Int! @required }\nunion U = A").unwrap();
        assert!(print_pgschema(&doc, "G", TypeMode::Strict)
            .unwrap_err()
            .message
            .contains("union type `U`"));
        let doc = gql_sdl::parse("enum E { A B }").unwrap();
        assert!(print_pgschema(&doc, "G", TypeMode::Strict)
            .unwrap_err()
            .message
            .contains("enum type `E`"));
    }

    #[test]
    fn bare_nonnull_scalar_prints_as_optional() {
        // `endTime: Time!` without @required is an optional property in
        // the paper's reading — PG-Schema renders it as OPTIONAL.
        let doc = gql_sdl::parse("type S { endTime: Time! }\nscalar Time").unwrap();
        let pgs = print_pgschema(&doc, "G", TypeMode::Strict).unwrap();
        assert!(pgs.contains("OPTIONAL endTime Time"), "{pgs}");
    }
}
