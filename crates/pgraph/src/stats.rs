//! Structural statistics, used by the benchmark harness to characterise
//! generated workloads (the "workload parameters" columns of
//! EXPERIMENTS.md).

use std::collections::BTreeMap;

use crate::{traverse, PropertyGraph};

/// A summary of one Property Graph instance.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// Count of nodes per label.
    pub nodes_per_label: BTreeMap<String, usize>,
    /// Count of edges per label.
    pub edges_per_label: BTreeMap<String, usize>,
    /// Total node properties (`|dom(σ) ∩ (V × Props)|`).
    pub node_properties: usize,
    /// Total edge properties.
    pub edge_properties: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of weakly connected components.
    pub components: usize,
}

impl GraphStats {
    /// Computes statistics in `O(|V| + |E|)` (plus component discovery).
    pub fn compute(g: &PropertyGraph) -> Self {
        let mut nodes_per_label = BTreeMap::new();
        let mut edges_per_label = BTreeMap::new();
        let mut node_properties = 0usize;
        let mut edge_properties = 0usize;
        for n in g.nodes() {
            *nodes_per_label.entry(n.label().to_owned()).or_insert(0) += 1;
            node_properties += n.property_count();
        }
        for e in g.edges() {
            *edges_per_label.entry(e.label().to_owned()).or_insert(0) += 1;
            edge_properties += e.property_count();
        }
        GraphStats {
            nodes: g.node_count(),
            edges: g.edge_count(),
            nodes_per_label,
            edges_per_label,
            node_properties,
            edge_properties,
            max_out_degree: traverse::out_degrees(g).into_iter().max().unwrap_or(0),
            max_in_degree: traverse::in_degrees(g).into_iter().max().unwrap_or(0),
            components: traverse::weakly_connected_components(g),
        }
    }

    /// A one-line summary for bench logs.
    pub fn summary(&self) -> String {
        format!(
            "|V|={} |E|={} labels={} props={}+{} maxdeg={}/{} wcc={}",
            self.nodes,
            self.edges,
            self.nodes_per_label.len(),
            self.node_properties,
            self.edge_properties,
            self.max_out_degree,
            self.max_in_degree,
            self.components
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Value};

    #[test]
    fn stats_of_small_graph() {
        let mut g = GraphBuilder::new()
            .node("a", "A")
            .node("b", "A")
            .node("c", "B")
            .edge("a", "c", "rel")
            .edge("b", "c", "rel")
            .edge("a", "b", "peer")
            .build()
            .unwrap();
        let a = g.node_ids().next().unwrap();
        g.set_node_property(a, "k", Value::Int(1));
        let e = g.edge_ids().next().unwrap();
        g.set_edge_property(e, "w", Value::Int(2));

        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.nodes_per_label["A"], 2);
        assert_eq!(s.nodes_per_label["B"], 1);
        assert_eq!(s.edges_per_label["rel"], 2);
        assert_eq!(s.node_properties, 1);
        assert_eq!(s.edge_properties, 1);
        assert_eq!(s.max_out_degree, 2); // a
        assert_eq!(s.max_in_degree, 2); // c
        assert_eq!(s.components, 1);
        assert!(s.summary().contains("|V|=3"));
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::compute(&crate::PropertyGraph::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.max_out_degree, 0);
        assert_eq!(s.components, 0);
    }
}
