//! Kernels for strong satisfaction — rules SS1–SS4 (Definition 5.3).

use crate::report::{Rule, Violation};

use super::{Scope, Sink};

/// SS1: every node label is an object type of the schema — one scan over
/// the scope's nodes.
pub(crate) fn ss1(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::SS1, |sink| {
        let s = scope.s;
        for n in scope.nodes() {
            if sink.at_limit() {
                return;
            }
            sink.node_visited();
            if !s.is_object_label(n.label()) {
                sink.push(Violation::UnjustifiedNode {
                    node: n.id,
                    label: n.label().to_owned(),
                });
            }
        }
    });
}

/// SS2: every node property is backed by an attribute definition — one
/// scan over the scope's nodes.
pub(crate) fn ss2(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::SS2, |sink| {
        let s = scope.s;
        for n in scope.nodes() {
            if sink.at_limit() {
                return;
            }
            sink.node_visited();
            for (prop, _) in n.properties() {
                if s.attribute(n.label(), prop).is_none() {
                    sink.push(Violation::UnjustifiedNodeProperty {
                        node: n.id,
                        prop: prop.to_owned(),
                    });
                }
            }
        }
    });
}

/// SS3: every edge property is backed by a relationship argument — one
/// scan over the scope's edges.
pub(crate) fn ss3(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::SS3, |sink| {
        let (g, s) = (scope.g, scope.s);
        for e in scope.edges() {
            if sink.at_limit() {
                return;
            }
            sink.edge_visited();
            let src_label = g.node_label(e.source()).unwrap_or("");
            let rel = s.relationship(src_label, e.label());
            for (prop, _) in e.properties() {
                let justified = rel.is_some_and(|rd| rd.edge_props.iter().any(|p| p.name == prop));
                if !justified {
                    sink.push(Violation::UnjustifiedEdgeProperty {
                        edge: e.id,
                        prop: prop.to_owned(),
                    });
                }
            }
        }
    });
}

/// SS4: every edge is backed by a relationship definition — one scan
/// over the scope's edges.
pub(crate) fn ss4(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::SS4, |sink| {
        let (g, s) = (scope.g, scope.s);
        for e in scope.edges() {
            if sink.at_limit() {
                return;
            }
            sink.edge_visited();
            let src_label = g.node_label(e.source()).unwrap_or("");
            if s.relationship(src_label, e.label()).is_none() {
                sink.push(Violation::UnjustifiedEdge {
                    edge: e.id,
                    label: e.label().to_owned(),
                    source_label: src_label.to_owned(),
                });
            }
        }
    });
}
