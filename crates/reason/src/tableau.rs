//! A completion-tree tableau for ALCQI — the decision procedure behind
//! Theorem 3.
//!
//! The paper's Theorem 3 places object-type satisfiability in PSPACE by
//! translating the schema into an ALCQI TBox (see
//! [`translate`](crate::translate)) and appealing to a decision
//! procedure for that logic; this module *is* that procedure.
//!
//! Decides concept satisfiability w.r.t. the (internalised) TBox, i.e.
//! *unrestricted* satisfiability — models may be infinite; termination on
//! infinite-model schemas comes from **pairwise blocking** (required in
//! the presence of inverse roles and number restrictions).
//!
//! The calculus is the standard one for SHIQ restricted to ALCQI:
//!
//! * ⊓-, ⊔-rules; the TBox rule adds every internalised global constraint
//!   to every node;
//! * ∀-rule over role neighbours (successors and, via inverse, the
//!   predecessor);
//! * ≥-rule: generate `n` fresh, pairwise-distinct successors (only on
//!   non-blocked nodes);
//! * choose-rule: every neighbour of a `≤n R.C` node decides `C` vs `¬C`;
//! * ≤-rule: too many `R.C`-neighbours → merge a non-distinct pair
//!   (with pruning, and edge rewiring when merging into the predecessor);
//!   all pairwise distinct → clash.
//!
//! Nondeterminism (⊔, choose, merge-pair selection) is explored by
//! depth-first search over cloned states, bounded by
//! [`crate::ReasonerConfig`] budgets.

use std::collections::BTreeSet;

use crate::concept::{Concept, Role, TBox};
use crate::ReasonerConfig;

/// The three-valued tableau outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableauOutcome {
    /// A complete, clash-free completion tree exists: the concept is
    /// satisfiable (possibly only in an infinite model).
    Satisfiable,
    /// Every branch closes: unsatisfiable.
    Unsatisfiable,
    /// Node or branch budget exhausted before a verdict.
    ResourceLimit,
}

/// Checks satisfiability of the named concept w.r.t. the TBox. A name
/// never interned in the TBox denotes a fresh concept, which (with the
/// covering axiom over object types) is unsatisfiable for schema TBoxes.
pub fn check_concept_by_name(tbox: &TBox, name: &str, config: &ReasonerConfig) -> TableauOutcome {
    match tbox.find_concept(name) {
        Some(id) => check_concept(tbox, &Concept::Name(id), config),
        None => TableauOutcome::Unsatisfiable,
    }
}

/// Checks satisfiability of an arbitrary concept w.r.t. the TBox.
///
/// The search recursion depth is proportional to the number of choice
/// points on the current branch, which the branch budget allows to grow
/// into the tens of thousands — so the search runs on a dedicated thread
/// with a large stack, with an additional explicit depth cap as the
/// second line of defence (exceeding it reports `ResourceLimit`).
pub fn check_concept(tbox: &TBox, concept: &Concept, config: &ReasonerConfig) -> TableauOutcome {
    let tbox = tbox.clone();
    let concept = concept.clone();
    let config = *config;
    std::thread::Builder::new()
        .name("alcqi-tableau".to_owned())
        .stack_size(256 * 1024 * 1024)
        .spawn(move || check_concept_on_this_stack(&tbox, &concept, &config))
        .expect("tableau thread spawns")
        .join()
        .expect("tableau thread completes")
}

fn check_concept_on_this_stack(
    tbox: &TBox,
    concept: &Concept,
    config: &ReasonerConfig,
) -> TableauOutcome {
    let mut engine = Engine {
        tbox,
        config,
        branches_used: 0,
        hit_limit: false,
    };
    let mut state = State::new(concept.clone());
    let sat = engine.search(&mut state, 0);
    if sat {
        TableauOutcome::Satisfiable
    } else if engine.hit_limit {
        TableauOutcome::ResourceLimit
    } else {
        TableauOutcome::Unsatisfiable
    }
}

/// Hard cap on choice-point nesting; far below what a 256 MiB stack
/// supports, far above what real schemas need.
const MAX_SEARCH_DEPTH: usize = 50_000;

#[derive(Clone)]
struct NodeData {
    label: BTreeSet<Concept>,
    parent: Option<usize>,
    /// Roles `r` with `parent --r--> self`.
    edge_roles: BTreeSet<Role>,
    children: Vec<usize>,
    distinct_from: BTreeSet<usize>,
    alive: bool,
}

#[derive(Clone)]
struct State {
    nodes: Vec<NodeData>,
}

impl State {
    fn new(root_concept: Concept) -> Self {
        let mut label = BTreeSet::new();
        label.insert(root_concept.simplify());
        State {
            nodes: vec![NodeData {
                label,
                parent: None,
                edge_roles: BTreeSet::new(),
                children: Vec::new(),
                distinct_from: BTreeSet::new(),
                alive: true,
            }],
        }
    }

    fn alive_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].alive)
    }

    /// All `role`-neighbours of `x`: children reached by `role`, plus the
    /// parent if the inverse role labels the edge into `x`.
    fn neighbours(&self, x: usize, role: Role) -> Vec<usize> {
        let mut out = Vec::new();
        for &c in &self.nodes[x].children {
            if self.nodes[c].alive && self.nodes[c].edge_roles.contains(&role) {
                out.push(c);
            }
        }
        if let Some(p) = self.nodes[x].parent {
            if self.nodes[p].alive && self.nodes[x].edge_roles.contains(&role.inverted()) {
                out.push(p);
            }
        }
        out
    }

    fn distinct(&self, a: usize, b: usize) -> bool {
        self.nodes[a].distinct_from.contains(&b)
    }

    fn mark_distinct(&mut self, a: usize, b: usize) {
        self.nodes[a].distinct_from.insert(b);
        self.nodes[b].distinct_from.insert(a);
    }

    fn add_child(&mut self, parent: usize, role: Role, concepts: Vec<Concept>) -> usize {
        let ix = self.nodes.len();
        let mut label = BTreeSet::new();
        for c in concepts {
            label.insert(c.simplify());
        }
        let mut edge_roles = BTreeSet::new();
        edge_roles.insert(role);
        self.nodes.push(NodeData {
            label,
            parent: Some(parent),
            edge_roles,
            children: Vec::new(),
            distinct_from: BTreeSet::new(),
            alive: true,
        });
        self.nodes[parent].children.push(ix);
        ix
    }

    /// Removes `y` and its whole subtree.
    fn prune(&mut self, y: usize) {
        let mut stack = vec![y];
        while let Some(n) = stack.pop() {
            self.nodes[n].alive = false;
            let children = std::mem::take(&mut self.nodes[n].children);
            stack.extend(children);
        }
    }

    /// Merges node `y` (a child of `x`) into `target`, which is either a
    /// sibling child of `x` or the parent of `x`. Returns false on a
    /// distinctness clash.
    fn merge(&mut self, x: usize, y: usize, target: usize) -> bool {
        if self.distinct(y, target) {
            return false;
        }
        let label: Vec<Concept> = self.nodes[y].label.iter().cloned().collect();
        self.nodes[target].label.extend(label);
        let distinct: Vec<usize> = self.nodes[y].distinct_from.iter().copied().collect();
        for d in distinct {
            self.mark_distinct(target, d);
        }
        if self.nodes[x].parent == Some(target) {
            // Merging a child into the predecessor: the edge x→y becomes
            // an edge x→parent, recorded as inverse roles on x's own edge.
            let roles: Vec<Role> = self.nodes[y].edge_roles.iter().copied().collect();
            for r in roles {
                self.nodes[x].edge_roles.insert(r.inverted());
            }
        } else {
            // Sibling merge: target keeps x as parent, unions edge roles.
            let roles: Vec<Role> = self.nodes[y].edge_roles.iter().copied().collect();
            self.nodes[target].edge_roles.extend(roles);
        }
        self.prune(y);
        true
    }

    /// Pairwise blocking: `x` (with parent `x'`) is directly blocked by an
    /// ancestor pair `(y, y')` with identical labels and edge roles.
    fn blocked(&self, x: usize) -> bool {
        let mut cur = x;
        // A node is blocked if it or any ancestor is directly blocked.
        loop {
            if self.directly_blocked(cur) {
                return true;
            }
            match self.nodes[cur].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    fn directly_blocked(&self, x: usize) -> bool {
        let Some(xp) = self.nodes[x].parent else {
            return false;
        };
        // Walk strict ancestors y of x (with their parents y').
        let mut y = xp;
        loop {
            let Some(yp) = self.nodes[y].parent else {
                return false;
            };
            if self.nodes[x].label == self.nodes[y].label
                && self.nodes[xp].label == self.nodes[yp].label
                && self.nodes[x].edge_roles == self.nodes[y].edge_roles
            {
                return true;
            }
            y = yp;
        }
    }

    fn has_clash(&self) -> bool {
        for x in self.alive_nodes() {
            let label = &self.nodes[x].label;
            if label.contains(&Concept::Bottom) {
                return true;
            }
            for c in label {
                if let Concept::Name(n) = c {
                    if label.contains(&Concept::NegName(*n)) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// One applicable rule instance found by the scanner.
enum Todo {
    AddToLabel(usize, Vec<Concept>),
    Or(usize, Vec<Concept>),
    Generate {
        node: usize,
        n: u32,
        role: Role,
        concept: Concept,
    },
    Choose(usize, Concept),
    MergePairs {
        x: usize,
        pairs: Vec<(usize, usize)>,
    },
    Clash,
}

struct Engine<'a> {
    tbox: &'a TBox,
    config: &'a ReasonerConfig,
    branches_used: usize,
    hit_limit: bool,
}

impl Engine<'_> {
    fn search(&mut self, state: &mut State, depth: usize) -> bool {
        if depth > MAX_SEARCH_DEPTH {
            self.hit_limit = true;
            return false;
        }
        loop {
            if state.nodes.len() > self.config.max_tableau_nodes {
                self.hit_limit = true;
                return false;
            }
            if state.has_clash() {
                return false;
            }
            match self.find_todo(state) {
                None => return true, // complete and clash-free
                Some(Todo::Clash) => return false,
                Some(Todo::AddToLabel(x, cs)) => {
                    for c in cs {
                        state.nodes[x].label.insert(c.simplify());
                    }
                }
                Some(Todo::Or(x, options)) => {
                    return self.branch(
                        state,
                        depth,
                        |st, opt: &Concept| {
                            st.nodes[x].label.insert(opt.clone().simplify());
                            true
                        },
                        &options,
                    );
                }
                Some(Todo::Generate {
                    node,
                    n,
                    role,
                    concept,
                }) => {
                    let mut created = Vec::new();
                    for _ in 0..n {
                        let c = state.add_child(node, role, vec![concept.clone()]);
                        created.push(c);
                    }
                    for (i, &a) in created.iter().enumerate() {
                        for &b in created.iter().skip(i + 1) {
                            state.mark_distinct(a, b);
                        }
                    }
                }
                Some(Todo::Choose(y, concept)) => {
                    let options = vec![concept.clone(), concept.negate()];
                    return self.branch(
                        state,
                        depth,
                        |st, opt: &Concept| {
                            st.nodes[y].label.insert(opt.clone().simplify());
                            true
                        },
                        &options,
                    );
                }
                Some(Todo::MergePairs { x, pairs }) => {
                    return self.branch(
                        state,
                        depth,
                        |st, &(keep, gone): &(usize, usize)| {
                            // Merge `gone` into `keep`; if `keep` is x's
                            // parent the child is folded upward, otherwise a
                            // sibling merge. Ensure `gone` is a child of x.
                            st.merge(x, gone, keep)
                        },
                        &pairs,
                    );
                }
            }
        }
    }

    /// Tries each option on a cloned state; true if any branch completes.
    fn branch<T>(
        &mut self,
        state: &State,
        depth: usize,
        apply: impl Fn(&mut State, &T) -> bool,
        options: &[T],
    ) -> bool {
        for opt in options {
            self.branches_used += 1;
            if self.branches_used > self.config.max_tableau_branches {
                self.hit_limit = true;
                return false;
            }
            let mut next = state.clone();
            if !apply(&mut next, opt) {
                continue;
            }
            if self.search(&mut next, depth + 1) {
                return true;
            }
        }
        false
    }

    /// Deterministically scans for the first applicable rule.
    fn find_todo(&self, state: &State) -> Option<Todo> {
        let alive: Vec<usize> = state.alive_nodes().collect();
        // TBox rule first: every node carries every global constraint.
        for &x in &alive {
            let missing: Vec<Concept> = self
                .tbox
                .globals
                .iter()
                .filter(|g| !state.nodes[x].label.contains(*g))
                .cloned()
                .collect();
            if !missing.is_empty() {
                return Some(Todo::AddToLabel(x, missing));
            }
        }
        // ⊓-rule.
        for &x in &alive {
            for c in &state.nodes[x].label {
                if let Concept::And(cs) = c {
                    let missing: Vec<Concept> = cs
                        .iter()
                        .filter(|cc| !state.nodes[x].label.contains(*cc))
                        .cloned()
                        .collect();
                    if !missing.is_empty() {
                        return Some(Todo::AddToLabel(x, missing));
                    }
                }
            }
        }
        // ∀-rule.
        for &x in &alive {
            for c in &state.nodes[x].label {
                if let Concept::Forall(r, inner) = c {
                    for y in state.neighbours(x, *r) {
                        if !state.nodes[y].label.contains(inner.as_ref()) {
                            return Some(Todo::AddToLabel(y, vec![(**inner).clone()]));
                        }
                    }
                }
            }
        }
        // choose-rule (before ≤ so merges count correctly). Membership is
        // checked against the *simplified* forms — labels only ever hold
        // simplified concepts.
        for &x in &alive {
            for c in &state.nodes[x].label {
                if let Concept::AtMost(_, r, inner) = c {
                    let neg = inner.negate().simplify();
                    for y in state.neighbours(x, *r) {
                        let has_c = state.nodes[y].label.contains(inner.as_ref());
                        let has_not_c = state.nodes[y].label.contains(&neg);
                        if !has_c && !has_not_c {
                            return Some(Todo::Choose(y, (**inner).clone()));
                        }
                    }
                }
            }
        }
        // ⊔-rule.
        for &x in &alive {
            for c in &state.nodes[x].label {
                if let Concept::Or(cs) = c {
                    if cs.iter().all(|cc| !state.nodes[x].label.contains(cc)) {
                        return Some(Todo::Or(x, cs.clone()));
                    }
                }
            }
        }
        // ≤-rule (merge) before ≥ (generate) to keep trees small.
        for &x in &alive {
            for c in &state.nodes[x].label {
                if let Concept::AtMost(n, r, inner) = c {
                    let holders: Vec<usize> = state
                        .neighbours(x, *r)
                        .into_iter()
                        .filter(|&y| state.nodes[y].label.contains(inner.as_ref()))
                        .collect();
                    if holders.len() > *n as usize {
                        // Candidate merge pairs (gone must be a child of
                        // x, so the parent — if among holders — can only
                        // be the `keep` side).
                        let mut pairs = Vec::new();
                        for (i, &a) in holders.iter().enumerate() {
                            for &b in holders.iter().skip(i + 1) {
                                if state.distinct(a, b) {
                                    continue;
                                }
                                // The dropped side must be a child of x,
                                // so a parent among the pair is always the
                                // `keep` side.
                                let parent = state.nodes[x].parent;
                                if Some(b) == parent {
                                    pairs.push((b, a));
                                } else {
                                    pairs.push((a, b));
                                }
                            }
                        }
                        if pairs.is_empty() {
                            return Some(Todo::Clash);
                        }
                        return Some(Todo::MergePairs { x, pairs });
                    }
                }
            }
        }
        // ≥-rule (generating; skipped on blocked nodes).
        for &x in &alive {
            if state.blocked(x) {
                continue;
            }
            for c in &state.nodes[x].label {
                if let Concept::AtLeast(n, r, inner) = c {
                    let holders: Vec<usize> = state
                        .neighbours(x, *r)
                        .into_iter()
                        .filter(|&y| state.nodes[y].label.contains(inner.as_ref()))
                        .collect();
                    // Satisfied if n pairwise-distinct holders exist. With
                    // n ∈ {1, 2} a simple check suffices; for general n we
                    // approximate by requiring n holders that are pairwise
                    // distinct (conservative: may regenerate).
                    let satisfied = count_pairwise_distinct(state, &holders) >= *n as usize;
                    if !satisfied {
                        return Some(Todo::Generate {
                            node: x,
                            n: *n,
                            role: *r,
                            concept: (**inner).clone(),
                        });
                    }
                }
            }
        }
        None
    }
}

/// Size of a greedy pairwise-distinct subset of `nodes`.
fn count_pairwise_distinct(state: &State, nodes: &[usize]) -> usize {
    let mut chosen: Vec<usize> = Vec::new();
    for &n in nodes {
        if chosen.iter().all(|&c| state.distinct(c, n)) {
            chosen.push(n);
        }
    }
    // Any single node is a distinct set of size 1.
    chosen.len().max(usize::from(!nodes.is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::TBox;

    fn cfg() -> ReasonerConfig {
        ReasonerConfig::default()
    }

    #[test]
    fn atomic_concept_is_satisfiable_in_empty_tbox() {
        let mut tb = TBox::new();
        let a = tb.concept("A");
        assert_eq!(check_concept(&tb, &a, &cfg()), TableauOutcome::Satisfiable);
    }

    #[test]
    fn bottom_is_unsatisfiable() {
        let tb = TBox::new();
        assert_eq!(
            check_concept(&tb, &Concept::Bottom, &cfg()),
            TableauOutcome::Unsatisfiable
        );
    }

    #[test]
    fn contradiction_is_unsatisfiable() {
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let c = Concept::And(vec![a.clone(), a.negate()]);
        assert_eq!(
            check_concept(&tb, &c, &cfg()),
            TableauOutcome::Unsatisfiable
        );
    }

    #[test]
    fn tbox_subsumption_propagates() {
        // A ⊑ B, query A ⊓ ¬B → unsat.
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let b = tb.concept("B");
        tb.add_subsumption(a.clone(), b.clone());
        let q = Concept::And(vec![a.clone(), b.negate()]);
        assert_eq!(
            check_concept(&tb, &q, &cfg()),
            TableauOutcome::Unsatisfiable
        );
        assert_eq!(check_concept(&tb, &a, &cfg()), TableauOutcome::Satisfiable);
    }

    #[test]
    fn existential_creates_successor_with_forall_clash() {
        // ∃r.A ⊓ ∀r.¬A → unsat.
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let r = tb.role("r");
        let q = Concept::And(vec![
            Concept::exists(r, a.clone()),
            Concept::Forall(r, Box::new(a.negate())),
        ]);
        assert_eq!(
            check_concept(&tb, &q, &cfg()),
            TableauOutcome::Unsatisfiable
        );
    }

    #[test]
    fn disjunction_branches() {
        // (A ⊔ B) ⊓ ¬A → satisfiable via B.
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let b = tb.concept("B");
        let q = Concept::And(vec![Concept::Or(vec![a.clone(), b]), a.negate()]);
        assert_eq!(check_concept(&tb, &q, &cfg()), TableauOutcome::Satisfiable);
    }

    #[test]
    fn at_most_zero_with_exists_clashes() {
        // ∃r.A ⊓ ≤0 r.A → unsat.
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let r = tb.role("r");
        let q = Concept::And(vec![
            Concept::exists(r, a.clone()),
            Concept::AtMost(0, r, Box::new(a)),
        ]);
        assert_eq!(
            check_concept(&tb, &q, &cfg()),
            TableauOutcome::Unsatisfiable
        );
    }

    #[test]
    fn at_most_one_merges_two_existentials() {
        // ∃r.(A ⊓ B) ⊓ ∃r.(A ⊓ C) ⊓ ≤1 r.A → satisfiable by merging.
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let b = tb.concept("B");
        let c = tb.concept("C");
        let r = tb.role("r");
        let q = Concept::And(vec![
            Concept::exists(r, Concept::And(vec![a.clone(), b])),
            Concept::exists(r, Concept::And(vec![a.clone(), c])),
            Concept::AtMost(1, r, Box::new(a)),
        ]);
        assert_eq!(check_concept(&tb, &q, &cfg()), TableauOutcome::Satisfiable);
    }

    #[test]
    fn at_most_one_with_disjoint_successors_clashes() {
        // ∃r.(A ⊓ B) ⊓ ∃r.(A ⊓ ¬B) ⊓ ≤1 r.A → merge forces B ⊓ ¬B.
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let b = tb.concept("B");
        let r = tb.role("r");
        let q = Concept::And(vec![
            Concept::exists(r, Concept::And(vec![a.clone(), b.clone()])),
            Concept::exists(r, Concept::And(vec![a.clone(), b.negate()])),
            Concept::AtMost(1, r, Box::new(a)),
        ]);
        assert_eq!(
            check_concept(&tb, &q, &cfg()),
            TableauOutcome::Unsatisfiable
        );
    }

    #[test]
    fn inverse_roles_propagate_to_predecessor() {
        // A ⊓ ∃r.(∀r⁻.B) ⊓ ¬B → the successor's ∀r⁻.B forces B on the
        // root → clash with ¬B.
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let b = tb.concept("B");
        let r = tb.role("r");
        let q = Concept::And(vec![
            a,
            Concept::exists(r, Concept::Forall(r.inverted(), Box::new(b.clone()))),
            b.negate(),
        ]);
        assert_eq!(
            check_concept(&tb, &q, &cfg()),
            TableauOutcome::Unsatisfiable
        );
    }

    #[test]
    fn infinite_model_terminates_via_blocking() {
        // A ⊑ ∃r.A with query A: only infinite r-chains (or cycles —
        // allowed in unrestricted models) satisfy it; blocking must
        // terminate with Satisfiable.
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let r = tb.role("r");
        tb.add_subsumption(a.clone(), Concept::exists(r, a.clone()));
        assert_eq!(check_concept(&tb, &a, &cfg()), TableauOutcome::Satisfiable);
    }

    #[test]
    fn unknown_concept_name_is_unsat_by_convention() {
        let tb = TBox::new();
        assert_eq!(
            check_concept_by_name(&tb, "Ghost", &cfg()),
            TableauOutcome::Unsatisfiable
        );
    }

    #[test]
    fn functionality_with_inverse_chain() {
        // The diagram (c) pattern in miniature:
        //   OT2 ⊑ ∃f.OT1           (OT2 points to an OT1)
        //   OT1 ⊑ ∃f⁻.OT3          (every OT1 has an OT3 pointer)
        //   OT1 ⊑ ≤1 f⁻.IT        (≤1 incoming from IT)
        //   OT2 ⊑ IT, OT3 ⊑ IT    (via equivalence-free subsumptions)
        //   OT2 ⊓ OT3 ⊑ ⊥
        // → OT2 unsatisfiable.
        let mut tb = TBox::new();
        let ot1 = tb.concept("OT1");
        let ot2 = tb.concept("OT2");
        let ot3 = tb.concept("OT3");
        let it = tb.concept("IT");
        let f = tb.role("f");
        tb.add_subsumption(ot2.clone(), Concept::exists(f, ot1.clone()));
        tb.add_subsumption(ot1.clone(), Concept::exists(f.inverted(), ot3.clone()));
        tb.add_subsumption(
            ot1.clone(),
            Concept::AtMost(1, f.inverted(), Box::new(it.clone())),
        );
        tb.add_subsumption(ot2.clone(), it.clone());
        tb.add_subsumption(ot3.clone(), it.clone());
        tb.add_subsumption(
            Concept::And(vec![ot2.clone(), ot3.clone()]),
            Concept::Bottom,
        );
        assert_eq!(
            check_concept(&tb, &ot2, &cfg()),
            TableauOutcome::Unsatisfiable
        );
        // OT3 alone is fine.
        assert_eq!(
            check_concept(&tb, &ot3, &cfg()),
            TableauOutcome::Satisfiable
        );
    }
}
