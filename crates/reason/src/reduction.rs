//! The Theorem 2 construction: CNF-SAT ⟶ object-type satisfiability.
//!
//! Given `φ = ψ1 ∧ … ∧ ψn` over atoms `α`, the reduction builds an SDL
//! schema with:
//!
//! 1. an object type `OT` (the queried type);
//! 2. an interface `Clause_i` per clause, whose field `f: [OT]` carries
//!    `@requiredForTarget` — every `OT` node needs an incoming `f`-edge
//!    from a node implementing `Clause_i`, i.e. each clause must pick a
//!    satisfied literal;
//! 3. an object type `Lit_i_j` per literal occurrence, implementing its
//!    clause interface;
//! 4. for every complementary atom pair an interface `Conflict_…` whose
//!    field `f: [OT]` carries `@uniqueForTarget`, implemented by the two
//!    literal types — an `OT` node can receive an `f`-edge from at most
//!    one of them, so a variable cannot be both true and false.
//!
//! A Property Graph with an `OT` node strongly satisfying the schema
//! encodes a satisfying truth assignment and vice versa; the graph needs
//! at most `1 + n` nodes (`OT` plus one literal node per clause), which
//! makes the bounded finite search a complete decision procedure here
//! ([`Reduction::bound`]).
//!
//! Note on consistency: all fields involved are declared `[OT]` on
//! interfaces and implementors alike, so the schema is interface
//! consistent per Definition 4.3 (the paper's own sketch leaves the
//! field repetitions implicit).

use dpll::{Cnf, Lit};
use pg_schema::PgSchema;

/// The output of the reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The generated SDL text (parseable by `gql-sdl`).
    pub sdl: String,
    /// The name of the object type whose satisfiability mirrors the
    /// formula's ("OT").
    pub object_type: String,
    /// A complete finite-search bound: 1 + number of clauses.
    pub bound: usize,
}

/// Builds the schema of the Theorem 2 proof for `cnf`.
///
/// Empty clauses make the formula trivially unsatisfiable; the reduction
/// represents such a clause as an interface with **no** implementing
/// literal types, whose `@requiredForTarget` can then never be satisfied
/// once an `OT` node exists — except that DS4 quantifies over existing
/// source *nodes*; an implementor-less interface yields a
/// `requiredForTarget` that no node can discharge, which is exactly
/// "unsatisfiable clause".
pub fn reduce_cnf(cnf: &Cnf) -> Reduction {
    let mut sdl = String::new();
    sdl.push_str("type OT { }\n");
    for (i, clause) in cnf.clauses().iter().enumerate() {
        sdl.push_str(&format!(
            "interface Clause{i} {{ f: [OT] @requiredForTarget }}\n"
        ));
        for (j, lit) in clause.iter().enumerate() {
            let mut implements = vec![format!("Clause{i}")];
            // Conflict interfaces with complementary occurrences in
            // *later* positions (each unordered pair once).
            for (i2, clause2) in cnf.clauses().iter().enumerate() {
                for (j2, lit2) in clause2.iter().enumerate() {
                    if (i2, j2) <= (i, j) {
                        continue;
                    }
                    if *lit2 == lit.negated() {
                        implements.push(conflict_name(i, j, i2, j2));
                    }
                }
            }
            // ...and with complementary occurrences in earlier positions.
            for (i2, clause2) in cnf.clauses().iter().enumerate() {
                for (j2, lit2) in clause2.iter().enumerate() {
                    if (i2, j2) >= (i, j) {
                        continue;
                    }
                    if *lit2 == lit.negated() {
                        implements.push(conflict_name(i2, j2, i, j));
                    }
                }
            }
            sdl.push_str(&format!(
                "type {} implements {} {{ f: [OT] }}\n",
                lit_type_name(i, j, *lit),
                implements.join(" & "),
            ));
        }
    }
    // Conflict interfaces (declared once per complementary pair).
    for (i, clause) in cnf.clauses().iter().enumerate() {
        for (j, lit) in clause.iter().enumerate() {
            for (i2, clause2) in cnf.clauses().iter().enumerate() {
                for (j2, lit2) in clause2.iter().enumerate() {
                    if (i2, j2) <= (i, j) {
                        continue;
                    }
                    if *lit2 == lit.negated() {
                        sdl.push_str(&format!(
                            "interface {} {{ f: [OT] @uniqueForTarget }}\n",
                            conflict_name(i, j, i2, j2)
                        ));
                    }
                }
            }
        }
    }
    Reduction {
        sdl,
        object_type: "OT".to_owned(),
        bound: 1 + cnf.num_clauses(),
    }
}

fn lit_type_name(i: usize, j: usize, lit: Lit) -> String {
    format!(
        "Lit{}_{}_{}{}",
        i,
        j,
        if lit.is_neg() { "n" } else { "p" },
        lit.var()
    )
}

fn conflict_name(i: usize, j: usize, i2: usize, j2: usize) -> String {
    format!("Conflict_{i}_{j}__{i2}_{j2}")
}

/// Decides the formula through the reduction: builds the schema, then
/// searches for a finite model of `OT` up to the complete bound.
/// Returns the witness graph if satisfiable.
pub fn decide_via_reduction(cnf: &Cnf) -> Option<pgraph::PropertyGraph> {
    let red = reduce_cnf(cnf);
    let schema = PgSchema::parse(&red.sdl).expect("reduction emits a consistent schema");
    for k in 1..=red.bound {
        if let Some(g) = crate::finite::find_model(&schema, &red.object_type, k) {
            return Some(g);
        }
    }
    None
}

/// Extracts the truth assignment encoded by a witness graph: variable `v`
/// is true iff some positive-literal node of `v` has an `f`-edge.
/// Unconstrained variables default to false.
pub fn extract_assignment(cnf: &Cnf, witness: &pgraph::PropertyGraph) -> Vec<bool> {
    let mut assignment = vec![false; cnf.num_vars()];
    let mut forced_false = vec![false; cnf.num_vars()];
    for e in witness.edges() {
        if e.label() != "f" {
            continue;
        }
        let Some(label) = witness.node_label(e.source()) else {
            continue;
        };
        // Lit{i}_{j}_{p|n}{var}
        let Some(rest) = label.strip_prefix("Lit") else {
            continue;
        };
        let parts: Vec<&str> = rest.split('_').collect();
        if parts.len() != 3 {
            continue;
        }
        let polarity_var = parts[2];
        let (neg, var_str) = if let Some(v) = polarity_var.strip_prefix('p') {
            (false, v)
        } else if let Some(v) = polarity_var.strip_prefix('n') {
            (true, v)
        } else {
            continue;
        };
        if let Ok(var) = var_str.parse::<usize>() {
            if var < assignment.len() {
                if neg {
                    forced_false[var] = true;
                } else {
                    assignment[var] = true;
                }
            }
        }
    }
    // Sanity: conflicting forcings cannot happen in a valid witness; the
    // @uniqueForTarget conflict interfaces forbid them.
    for v in 0..assignment.len() {
        debug_assert!(
            !(assignment[v] && forced_false[v]),
            "witness sets x{v} both ways"
        );
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_object_type, ReasonerConfig, Satisfiability};
    use dpll::KsatParams;

    fn clause(lits: &[i32]) -> Vec<Lit> {
        lits.iter()
            .map(|&v| {
                let var = v.unsigned_abs() as usize - 1;
                if v > 0 {
                    Lit::pos(var)
                } else {
                    Lit::neg(var)
                }
            })
            .collect()
    }

    fn cnf(num_vars: usize, clauses: &[&[i32]]) -> Cnf {
        let mut c = Cnf::new(num_vars);
        for cl in clauses {
            c.add_clause(clause(cl));
        }
        c
    }

    #[test]
    fn reduction_emits_consistent_parseable_sdl() {
        let f = cnf(4, &[&[1, -2, 3], &[-1, -3], &[4, 2]]);
        let red = reduce_cnf(&f);
        let schema = PgSchema::parse(&red.sdl).unwrap();
        // OT + 3+2+2 literal types.
        assert_eq!(schema.schema().object_types().count(), 1 + 7, "{}", red.sdl);
        // 3 clause interfaces + conflicts: pairs (A,¬A): α(1,1)=A? atoms:
        // c0: x0 ¬x1 x2; c1: ¬x0 ¬x2; c2: x3 x1. Complementary pairs:
        // (x0,¬x0), (¬x1,x1), (x2,¬x2) → 3 conflict interfaces.
        assert_eq!(schema.schema().interface_types().count(), 3 + 3);
    }

    #[test]
    fn paper_example_formula_is_satisfiable_via_reduction() {
        // (A ∨ ¬B ∨ C) ∧ (¬A ∨ ¬C) ∧ (D ∨ B) — the formula of the
        // Theorem 2 proof sketch.
        let f = cnf(4, &[&[1, -2, 3], &[-1, -3], &[4, 2]]);
        let witness = decide_via_reduction(&f).expect("satisfiable");
        let assignment = extract_assignment(&f, &witness);
        assert!(f.eval(&assignment), "extracted assignment must satisfy φ");
    }

    #[test]
    fn unsat_formula_is_unsat_via_reduction() {
        let f = cnf(1, &[&[1], &[-1]]);
        assert!(decide_via_reduction(&f).is_none());
        assert!(dpll::solve(&f).is_none());
    }

    #[test]
    fn tableau_agrees_on_reduction_schemas() {
        let sat_f = cnf(2, &[&[1, 2], &[-1]]);
        let red = reduce_cnf(&sat_f);
        let schema = PgSchema::parse(&red.sdl).unwrap();
        match check_object_type(&schema, "OT", &ReasonerConfig::default()) {
            Satisfiability::Satisfiable { witness, .. } => {
                assert!(pg_schema::strongly_satisfies(&witness, &schema));
            }
            other => panic!("expected satisfiable, got {other:?}"),
        }
        let unsat_f = cnf(2, &[&[1], &[2], &[-1, -2]]);
        let red = reduce_cnf(&unsat_f);
        let schema = PgSchema::parse(&red.sdl).unwrap();
        let result = check_object_type(&schema, "OT", &ReasonerConfig::default());
        assert!(!result.is_satisfiable(), "UNSAT formula produced a witness");
    }

    #[test]
    fn random_instances_agree_with_dpll() {
        for seed in 0..8 {
            let f = dpll::random_ksat(&KsatParams {
                num_vars: 4,
                num_clauses: 6,
                k: 2,
                seed,
            });
            let oracle = dpll::solve(&f).is_some();
            let via_reduction = decide_via_reduction(&f).is_some();
            assert_eq!(oracle, via_reduction, "seed {seed}: formula {f}");
        }
    }

    #[test]
    fn empty_formula_is_satisfiable() {
        let f = Cnf::new(0);
        let g = decide_via_reduction(&f).unwrap();
        assert_eq!(g.node_count(), 1); // just the OT node
    }

    #[test]
    fn reduction_size_is_polynomial() {
        let f = dpll::random_ksat(&KsatParams {
            num_vars: 10,
            num_clauses: 20,
            k: 3,
            seed: 0,
        });
        let red = reduce_cnf(&f);
        // 1 OT + 60 literal types + 20 clause interfaces + ≤ C(60,2)
        // conflicts; SDL text stays small.
        assert!(red.sdl.len() < 200_000);
        assert!(PgSchema::parse(&red.sdl).is_ok());
    }
}
