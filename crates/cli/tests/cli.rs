//! End-to-end tests of the `pgschema` binary.

use std::fs;
use std::process::{Command, Output};

fn pgschema(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pgschema"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_tmp(name: &str, content: &str) -> String {
    let dir = std::env::temp_dir().join("pgschema-cli-tests");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{name}", std::process::id()));
    fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

const SCHEMA: &str = r#"
    type User @key(fields: ["id"]) {
        id: ID! @required
        login: String! @required
    }
"#;

const GOOD_GRAPH: &str = r#"{
    "nodes": [
        {"id": 0, "label": "User",
         "properties": {"id": {"$id": "u1"}, "login": "alice"}}
    ],
    "edges": []
}"#;

#[test]
fn validate_accepts_conforming_graph() {
    let schema = write_tmp("s1.graphql", SCHEMA);
    let graph = write_tmp("g1.json", GOOD_GRAPH);
    let out = pgschema(&["validate", &schema, &graph]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("strongly satisfies"));
}

#[test]
fn validate_rejects_violating_graph_with_rule_names() {
    let schema = write_tmp("s2.graphql", SCHEMA);
    let graph = write_tmp(
        "g2.json",
        r#"{"nodes": [{"id": 0, "label": "User", "properties": {"login": 7}}],
            "edges": []}"#,
    );
    let out = pgschema(&["validate", &schema, &graph]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("WS1"), "{stdout}"); // login: 7
    assert!(stdout.contains("DS5"), "{stdout}"); // missing id
}

#[test]
fn validate_engines_agree_via_flag() {
    let schema = write_tmp("s3.graphql", SCHEMA);
    let graph = write_tmp("g3.json", GOOD_GRAPH);
    for engine in ["naive", "indexed", "incremental"] {
        let out = pgschema(&["validate", &schema, &graph, "--engine", engine]);
        assert!(out.status.success(), "engine {engine}");
    }
    let out = pgschema(&["validate", &schema, &graph, "--engine", "quantum"]);
    assert!(!out.status.success());
}

#[test]
fn validate_json_output() {
    let schema = write_tmp("sj.graphql", SCHEMA);
    let graph = write_tmp(
        "gj.json",
        r#"{"nodes": [{"id": 0, "label": "User", "properties": {"login": 7}}],
            "edges": []}"#,
    );
    let out = pgschema(&["validate", &schema, &graph, "--json"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"conforms\": false"), "{stdout}");
    assert!(stdout.contains("\"engine\": \"indexed\""), "{stdout}");
    assert!(stdout.contains("\"truncated\": false"), "{stdout}");
    assert!(stdout.contains("\"rule\": \"WS1\""), "{stdout}");
}

#[test]
fn validate_watch_delta_tracks_mutations() {
    let schema = write_tmp("swd.graphql", SCHEMA);
    let graph = write_tmp("gwd.json", GOOD_GRAPH);
    let break_login = write_tmp(
        "d1.json",
        r#"{"ops": [{"op": "set-node-property", "node": 0, "name": "login", "value": 7}]}"#,
    );
    let repair_login = write_tmp(
        "d2.json",
        r#"{"ops": [{"op": "set-node-property", "node": 0, "name": "login", "value": "bob"}]}"#,
    );
    // Break then repair: conforming at the end, exit 0, both steps shown.
    let out = pgschema(&[
        "validate",
        &schema,
        &graph,
        "--watch-delta",
        &break_login,
        "--watch-delta",
        &repair_login,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("+1 / -0 violation(s)"), "{stdout}");
    assert!(stdout.contains("+0 / -1 violation(s)"), "{stdout}");
    // Break only: exit 1 and an NDJSON report per step in --json mode.
    let out = pgschema(&[
        "validate",
        &schema,
        &graph,
        "--json",
        "--watch-delta",
        &break_login,
    ]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains("\"conforms\": true"), "{stdout}");
    assert!(lines[1].contains("\"conforms\": false"), "{stdout}");
    assert!(lines[1].contains("\"engine\": \"incremental\""), "{stdout}");
    assert!(lines[1].contains("\"rule\": \"WS1\""), "{stdout}");
    // A delta referencing a missing element is a clean error.
    let bad = write_tmp("d3.json", r#"{"ops": [{"op": "remove-node", "node": 99}]}"#);
    let out = pgschema(&["validate", &schema, &graph, "--watch-delta", &bad]);
    assert!(!out.status.success());
}

#[test]
fn consistency_reports_def_4_3_violations() {
    let bad = write_tmp(
        "s4.graphql",
        "interface I { f: Int } type T implements I { g: Int }",
    );
    let out = pgschema(&["consistency", &bad]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("lacks field"));
    let good = write_tmp("s5.graphql", SCHEMA);
    let out = pgschema(&["consistency", &good]);
    assert!(out.status.success());
}

#[test]
fn check_sat_reports_witness_and_unsat() {
    let sat = write_tmp("s6.graphql", "type A { b: B @required } type B { x: Int }");
    let out = pgschema(&["check-sat", &sat, "A"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("satisfiable"));

    let unsat = write_tmp(
        "s7.graphql",
        r#"
        type OT1 { }
        interface IT { hasOT1: [OT1] @uniqueForTarget }
        type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
        type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
        "#,
    );
    let out = pgschema(&["check-sat", &unsat, "OT1", "--max-size", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("UNSATISFIABLE"));
}

#[test]
fn generate_then_validate_roundtrip() {
    let schema = write_tmp("s8.graphql", SCHEMA);
    let graph_path = write_tmp("g8.json", "");
    let out = pgschema(&[
        "generate",
        &schema,
        "--nodes",
        "12",
        "--seed",
        "3",
        "--out",
        &graph_path,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = pgschema(&["validate", &schema, &graph_path]);
    assert!(out.status.success());
}

#[test]
fn reduce_sat_emits_parseable_schema() {
    let cnf = write_tmp("f.cnf", "p cnf 2 2\n1 -2 0\n2 0\n");
    let out = pgschema(&["reduce-sat", &cnf]);
    assert!(out.status.success());
    let sdl = String::from_utf8_lossy(&out.stdout);
    assert!(sdl.contains("type OT"));
    assert!(sdl.contains("@requiredForTarget"));
    // The emitted schema must itself be consistent.
    let path = write_tmp("red.graphql", &sdl);
    let out = pgschema(&["consistency", &path]);
    assert!(out.status.success());
}

#[test]
fn describe_prints_classification() {
    let schema = write_tmp("s9.graphql", pg_datagen::schemagen::social_schema());
    let out = pgschema(&["describe", &schema]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("object types: 3"));
    assert!(stdout.contains("follows -> [User] @distinct @noLoops"));
}

#[test]
fn bad_usage_fails_cleanly() {
    assert!(!pgschema(&[]).status.success());
    assert!(!pgschema(&["frobnicate"]).status.success());
    assert!(!pgschema(&["validate", "only-one-arg"]).status.success());
    assert!(!pgschema(&["validate", "a", "b", "--bogus"])
        .status
        .success());
    assert!(pgschema(&["help"]).status.success());
}

#[test]
fn check_sat_field_mode_follows_the_paper_recipe() {
    let schema = write_tmp("s10.graphql", "type A { toB: B }\ntype B { x: Int }");
    let out = pgschema(&["check-sat", &schema, "A", "--field", "toB"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("satisfiable"));
    let out = pgschema(&["check-sat", &schema, "A", "--field", "ghost"]);
    assert!(!out.status.success());
}

#[test]
fn extend_api_emits_query_root_and_inverse_fields() {
    let schema = write_tmp("s11.graphql", pg_datagen::schemagen::social_schema());
    let out = pgschema(&["extend-api", &schema, "--mutations"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sdl = String::from_utf8_lossy(&out.stdout);
    assert!(sdl.contains("type Query"), "{sdl}");
    assert!(sdl.contains("allUser: [User]"), "{sdl}");
    assert!(sdl.contains("rev_follows_from_User"), "{sdl}");
    assert!(sdl.contains("mutation: Mutation"), "{sdl}");
    // The emitted API schema must be valid SDL that builds consistently.
    let path = write_tmp("s11-ext.graphql", &sdl);
    let out = pgschema(&["consistency", &path]);
    assert!(out.status.success());
}

#[test]
fn normalize_is_idempotent() {
    let schema = write_tmp(
        "s12.graphql",
        "type B { x: Int }\n\n\ntype A { b: [B!]! @distinct }  # comment",
    );
    let out = pgschema(&["normalize", &schema]);
    assert!(out.status.success());
    let once = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(once.contains("b: [B!]! @distinct"), "{once}");
    assert!(!once.contains('#'));
    let again_path = write_tmp("s12n.graphql", &once);
    let out = pgschema(&["normalize", &again_path]);
    assert_eq!(String::from_utf8_lossy(&out.stdout), once);
}

#[test]
fn import_csv_and_validate() {
    let nodes = write_tmp(
        "n.csv",
        "id:ID,label:LABEL,id2:ID,login:String\nu1,User,k-1,alice\nu2,User,k-2,bob\n",
    );
    let edges = write_tmp("e.csv", "source:START_ID,target:END_ID,label:TYPE\n");
    // Schema whose property names match the CSV columns: id2 is not in
    // the schema → unjustified. Use a matching schema instead.
    let schema = write_tmp(
        "s13.graphql",
        r#"type User @key(fields: ["id2"]) {
            id2: ID! @required
            login: String! @required
        }"#,
    );
    let out = pgschema(&["import", &nodes, &edges, "--schema", &schema]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"nodes\""), "{stdout}");
    // Duplicate keys make validation fail through import as well.
    let nodes_dup = write_tmp(
        "n2.csv",
        "id:ID,label:LABEL,id2:ID,login:String\nu1,User,k-1,alice\nu2,User,k-1,bob\n",
    );
    let out = pgschema(&["import", &nodes_dup, &edges, "--schema", &schema]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("DS7"));
}

#[test]
fn diff_reports_breaking_changes_via_exit_code() {
    let old = write_tmp("old.graphql", "type A { x: Int }");
    let same = write_tmp("same.graphql", "type A { x: Int }");
    let out = pgschema(&["diff", &old, &same]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("equivalent"));
    let broken = write_tmp("new.graphql", "type A { x: Int! @required }");
    let out = pgschema(&["diff", &old, &broken]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("[BREAKING]"));
}

#[test]
fn missing_files_are_reported() {
    let out = pgschema(&["consistency", "/nonexistent/schema.graphql"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn diff_json_reports_compat_per_change() {
    let old = write_tmp("dj-old.graphql", "type A { x: Int }");
    let new = write_tmp("dj-new.graphql", "type A { x: Int! @required\n y: String }");
    let out = pgschema(&["diff", &old, &new, "--json"]);
    assert!(!out.status.success(), "the @required addition is breaking");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = pgraph::json::Json::parse(&stdout).expect("diff --json emits JSON");
    assert_eq!(
        doc.get("breaking"),
        Some(&pgraph::json::Json::Bool(true)),
        "{stdout}"
    );
    let changes = doc.get("changes").and_then(|c| c.as_array()).unwrap();
    let compats: Vec<&str> = changes
        .iter()
        .filter_map(|c| c.get("compat").and_then(|v| v.as_str()))
        .collect();
    assert!(compats.contains(&"breaking"), "{stdout}");
    assert!(compats.contains(&"compatible"), "{stdout}");

    let same = write_tmp("dj-same.graphql", "type A { x: Int }");
    let out = pgschema(&["diff", &old, &same, "--json"]);
    assert!(out.status.success());
    let doc = pgraph::json::Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(doc.get("equivalent"), Some(&pgraph::json::Json::Bool(true)));
}

/// The PG-Schema rendering of [`SCHEMA`]: same labels, same mandatory
/// properties, same key constraint.
const SCHEMA_PGS: &str = "\
CREATE GRAPH TYPE Accounts STRICT {
    (User {id ID, login STRING}),
    FOR (u : User) KEY u.id
}
";

#[test]
fn validate_detects_pgschema_by_extension() {
    let schema = write_tmp("pl1.pgs", SCHEMA_PGS);
    let graph = write_tmp("pl1.json", GOOD_GRAPH);
    let out = pgschema(&["validate", &schema, &graph]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("strongly satisfies"));
}

#[test]
fn validate_lang_flag_overrides_extension() {
    // A `.txt` extension would be read as SDL; `--lang pgschema` wins.
    let schema = write_tmp("pl2.txt", SCHEMA_PGS);
    let graph = write_tmp("pl2.json", GOOD_GRAPH);
    assert!(!pgschema(&["validate", &schema, &graph]).status.success());
    let out = pgschema(&["validate", &schema, &graph, "--lang", "pgschema"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Unknown language values go through the shared enum error.
    let out = pgschema(&["validate", &schema, &graph, "--lang", "cypher"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("schema language"), "{stderr}");
    assert!(stderr.contains("pgschema"), "{stderr}");
}

#[test]
fn validate_reports_agree_across_languages() {
    // The same broken graph yields the same violations whichever
    // language the schema was written in.
    let bad_graph = write_tmp(
        "pl3.json",
        r#"{"nodes": [{"id": 0, "label": "User", "properties": {"login": 7}}],
            "edges": []}"#,
    );
    let sdl = write_tmp("pl3.graphql", SCHEMA);
    let pgs = write_tmp("pl3.pgs", SCHEMA_PGS);
    let out_sdl = pgschema(&["validate", &sdl, &bad_graph, "--json"]);
    let out_pgs = pgschema(&["validate", &pgs, &bad_graph, "--json"]);
    assert!(!out_sdl.status.success());
    assert!(!out_pgs.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out_sdl.stdout),
        String::from_utf8_lossy(&out_pgs.stdout)
    );
}

#[test]
fn loose_graph_type_switches_off_the_strong_family() {
    // `nickname` is not declared: closed-world STRICT rejects it, the
    // open-world LOOSE mode accepts it.
    let graph = write_tmp(
        "pl4.json",
        r#"{"nodes": [{"id": 0, "label": "User",
             "properties": {"login": "alice", "nickname": "al"}}],
            "edges": []}"#,
    );
    let strict = write_tmp(
        "pl4s.pgs",
        "CREATE GRAPH TYPE G STRICT { (User {login STRING}) }",
    );
    let loose = write_tmp(
        "pl4l.pgs",
        "CREATE GRAPH TYPE G LOOSE { (User {login STRING}) }",
    );
    assert!(!pgschema(&["validate", &strict, &graph]).status.success());
    let out = pgschema(&["validate", &loose, &graph]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn translate_round_trips_between_languages() {
    // SDL → PG-Schema: the rendering validates identically.
    let sdl = write_tmp("tr1.graphql", SCHEMA);
    let out = pgschema(&["translate", &sdl, "--name", "Accounts"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let pgs_text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        pgs_text.contains("CREATE GRAPH TYPE Accounts STRICT"),
        "{pgs_text}"
    );
    let pgs = write_tmp("tr1.pgs", &pgs_text);
    let graph = write_tmp("tr1.json", GOOD_GRAPH);
    assert!(pgschema(&["validate", &pgs, &graph]).status.success());

    // PG-Schema → SDL: the lowering is plain SDL the core accepts.
    let out = pgschema(&["translate", &pgs]);
    assert!(out.status.success());
    let sdl_text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(sdl_text.contains("type User"), "{sdl_text}");
    let back = write_tmp("tr1b.graphql", &sdl_text);
    assert!(pgschema(&["validate", &back, &graph]).status.success());

    // PG-Schema → PG-Schema is a canonicalising fixpoint.
    let out = pgschema(&["translate", &pgs, "--to", "pgschema"]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), pgs_text);
}

#[test]
fn translate_reports_out_of_fragment_constructs() {
    let sdl = write_tmp(
        "tr2.graphql",
        "union U = A | B\ntype A { x: Int! }\ntype B { x: Int! }",
    );
    let out = pgschema(&["translate", &sdl]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("outside the PG-Schema fragment"),
        "{stderr}"
    );
}

#[test]
fn check_sat_works_on_pgschema_inputs() {
    let sat = write_tmp("cs1.pgs", SCHEMA_PGS);
    let out = pgschema(&["check-sat", &sat, "User"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("satisfiable"));

    // Example 6.1's contradictory endpoint cardinalities, in PG-Schema:
    // every OT1 has at most one incoming f overall, yet needs one from
    // an OT2 and one from an OT3.
    let unsat = write_tmp(
        "cs2.pgs",
        "CREATE GRAPH TYPE G STRICT {
            (OT1),
            ABSTRACT (IT),
            (: IT & OT2),
            (: IT & OT3),
            (:IT)-[:f]->(:OT1) INCOMING 0..1,
            (:OT2)-[:f]->(:OT1) INCOMING 1..*,
            (:OT3)-[:f]->(:OT1) INCOMING 1..*
        }",
    );
    let out = pgschema(&["check-sat", &unsat, "OT1", "--max-size", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("UNSATISFIABLE"));
}

const MIGRATE_OLD: &str = r#"
    type User @key(fields: ["id"]) {
        id: ID! @required
        login: String
    }
"#;

const MIGRATE_BREAKING: &str = r#"
    type User @key(fields: ["id"]) {
        id: ID! @required
        login: String @required
    }
"#;

const MIGRATE_GRAPH: &str = r#"{
    "nodes": [
        {"id": 0, "label": "User", "properties": {"id": {"$id": "u1"}, "login": "alice"}},
        {"id": 1, "label": "User", "properties": {"id": {"$id": "u2"}}}
    ],
    "edges": []
}"#;

#[test]
fn migrate_plan_previews_violations_and_apply_guards() {
    let old = write_tmp("mg-old.graphql", MIGRATE_OLD);
    let new = write_tmp("mg-new.graphql", MIGRATE_BREAKING);
    let graph = write_tmp("mg-graph.json", MIGRATE_GRAPH);

    // plan: breaking (u2 lacks login), nonzero exit, names the rule.
    let out = pgschema(&["migrate", "plan", &old, &new, &graph]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("BREAKING"), "{stdout}");
    assert!(stdout.contains("DS5"), "{stdout}");

    // plan --json carries the verdict and the previewed violations.
    let out = pgschema(&["migrate", "plan", &old, &new, &graph, "--json"]);
    let doc = pgraph::json::Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("compatible"),
        Some(&pgraph::json::Json::Bool(false))
    );
    assert!(doc
        .get("violations_added")
        .and_then(|v| v.as_array())
        .is_some_and(|v| !v.is_empty()));

    // apply refuses a breaking migration, then yields under --force and
    // prints the new schema's (non-conforming) report.
    let out = pgschema(&["migrate", "apply", &old, &new, &graph]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--force"));
    let out = pgschema(&["migrate", "apply", &old, &new, &graph, "--force"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("DS5"));

    // A compatible migration applies without force.
    let compat = write_tmp(
        "mg-compat.graphql",
        r#"
        type User @key(fields: ["id"]) {
            id: ID! @required
            login: String
            note: String
        }
    "#,
    );
    let out = pgschema(&["migrate", "apply", &old, &compat, &graph]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("strongly satisfies"));
}
