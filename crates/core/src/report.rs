//! Validation reports: which rule failed, where, and why.

use std::collections::BTreeMap;
use std::fmt;

use pgraph::{EdgeId, NodeId};

/// The fifteen rules of Definitions 5.1–5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Rule {
    WS1,
    WS2,
    WS3,
    WS4,
    DS1,
    DS2,
    DS3,
    DS4,
    DS5,
    DS6,
    DS7,
    SS1,
    SS2,
    SS3,
    SS4,
}

impl Rule {
    /// All rules in definition order.
    pub const ALL: [Rule; 15] = [
        Rule::WS1,
        Rule::WS2,
        Rule::WS3,
        Rule::WS4,
        Rule::DS1,
        Rule::DS2,
        Rule::DS3,
        Rule::DS4,
        Rule::DS5,
        Rule::DS6,
        Rule::DS7,
        Rule::SS1,
        Rule::SS2,
        Rule::SS3,
        Rule::SS4,
    ];

    /// Which of the three satisfaction notions the rule belongs to.
    pub fn family(self) -> RuleFamily {
        match self {
            Rule::WS1 | Rule::WS2 | Rule::WS3 | Rule::WS4 => RuleFamily::Weak,
            Rule::DS1 | Rule::DS2 | Rule::DS3 | Rule::DS4 | Rule::DS5 | Rule::DS6 | Rule::DS7 => {
                RuleFamily::Directives
            }
            Rule::SS1 | Rule::SS2 | Rule::SS3 | Rule::SS4 => RuleFamily::Strong,
        }
    }

    /// The paper's one-line gloss for the rule.
    pub fn gloss(self) -> &'static str {
        match self {
            Rule::WS1 => "node properties must be of the required type",
            Rule::WS2 => "edge properties must be of the required type",
            Rule::WS3 => "target nodes must be of the required type",
            Rule::WS4 => "non-list fields contain at most one edge",
            Rule::DS1 => "edges identified by nodes and label (@distinct)",
            Rule::DS2 => "no loops (@noLoops)",
            Rule::DS3 => "target has at most one incoming edge (@uniqueForTarget)",
            Rule::DS4 => "target has at least one incoming edge (@requiredForTarget)",
            Rule::DS5 => "property is required (@required)",
            Rule::DS6 => "edge is required (@required)",
            Rule::DS7 => "keys (@key)",
            Rule::SS1 => "all nodes are justified",
            Rule::SS2 => "all node properties are justified",
            Rule::SS3 => "all edge properties are justified",
            Rule::SS4 => "all edges are justified",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The three satisfaction notions of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleFamily {
    /// Definition 5.1 (weak schema satisfaction).
    Weak,
    /// Definition 5.2 (directives satisfaction).
    Directives,
    /// The additional justification rules of Definition 5.3.
    Strong,
}

/// One violation of one rule, with enough context to locate and explain it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Violation {
    /// WS1: a node property value is outside `valuesW` of its declared type.
    NodePropertyType {
        /// The node.
        node: NodeId,
        /// The property/field name.
        field: String,
        /// Rendered offending value.
        value: String,
        /// Rendered declared type.
        expected: String,
    },
    /// WS2: an edge property value is outside `valuesW` of its declared
    /// argument type.
    EdgePropertyType {
        /// The edge.
        edge: EdgeId,
        /// The property/argument name.
        prop: String,
        /// Rendered offending value.
        value: String,
        /// Rendered declared type.
        expected: String,
    },
    /// WS3: an edge's target node label is not a subtype of the field's
    /// base type.
    EdgeTargetType {
        /// The edge.
        edge: EdgeId,
        /// The target node.
        target: NodeId,
        /// The target's label.
        target_label: String,
        /// Rendered expected base type.
        expected: String,
    },
    /// WS4: more than one outgoing edge for a non-list relationship field.
    NonListFieldMultiEdge {
        /// The source node.
        source: NodeId,
        /// The edge label / field name.
        field: String,
        /// How many outgoing edges were found.
        count: usize,
    },
    /// DS1: two parallel edges between the same endpoints with the same
    /// label under `@distinct`.
    DistinctViolated {
        /// The source node.
        source: NodeId,
        /// The target node.
        target: NodeId,
        /// The edge label.
        field: String,
        /// Number of parallel edges.
        count: usize,
    },
    /// DS2: a self-loop under `@noLoops`.
    LoopViolated {
        /// The node with the loop.
        node: NodeId,
        /// The edge label.
        field: String,
    },
    /// DS3: a target with multiple incoming edges under `@uniqueForTarget`.
    UniqueForTargetViolated {
        /// The target node.
        target: NodeId,
        /// The edge label.
        field: String,
        /// Number of incoming edges.
        count: usize,
    },
    /// DS4: a target with no incoming edge under `@requiredForTarget`.
    RequiredForTargetViolated {
        /// The node missing an incoming edge.
        target: NodeId,
        /// The edge label.
        field: String,
        /// The name of the type carrying the constraint.
        site: String,
    },
    /// DS5: a missing (or empty-list) required property.
    RequiredPropertyMissing {
        /// The node.
        node: NodeId,
        /// The property name.
        field: String,
        /// True if the property exists but is an empty list (clause 2 of
        /// DS5).
        empty_list: bool,
    },
    /// DS6: a missing required outgoing edge.
    RequiredEdgeMissing {
        /// The source node.
        node: NodeId,
        /// The edge label.
        field: String,
    },
    /// DS7: two distinct nodes agreeing on a key.
    KeyViolated {
        /// First node.
        a: NodeId,
        /// Second node.
        b: NodeId,
        /// The constrained type's name.
        ty: String,
        /// The key's property names.
        fields: Vec<String>,
    },
    /// SS1: a node label that is not an object type of the schema.
    UnjustifiedNode {
        /// The node.
        node: NodeId,
        /// Its label.
        label: String,
    },
    /// SS2: a node property not backed by an attribute definition.
    UnjustifiedNodeProperty {
        /// The node.
        node: NodeId,
        /// The property name.
        prop: String,
    },
    /// SS3: an edge property not backed by a (scalar-based) argument
    /// definition.
    UnjustifiedEdgeProperty {
        /// The edge.
        edge: EdgeId,
        /// The property name.
        prop: String,
    },
    /// SS4: an edge not backed by a relationship definition.
    UnjustifiedEdge {
        /// The edge.
        edge: EdgeId,
        /// The edge label.
        label: String,
        /// The source node's label.
        source_label: String,
    },
}

impl Violation {
    /// The rule this violation belongs to.
    pub fn rule(&self) -> Rule {
        match self {
            Violation::NodePropertyType { .. } => Rule::WS1,
            Violation::EdgePropertyType { .. } => Rule::WS2,
            Violation::EdgeTargetType { .. } => Rule::WS3,
            Violation::NonListFieldMultiEdge { .. } => Rule::WS4,
            Violation::DistinctViolated { .. } => Rule::DS1,
            Violation::LoopViolated { .. } => Rule::DS2,
            Violation::UniqueForTargetViolated { .. } => Rule::DS3,
            Violation::RequiredForTargetViolated { .. } => Rule::DS4,
            Violation::RequiredPropertyMissing { .. } => Rule::DS5,
            Violation::RequiredEdgeMissing { .. } => Rule::DS6,
            Violation::KeyViolated { .. } => Rule::DS7,
            Violation::UnjustifiedNode { .. } => Rule::SS1,
            Violation::UnjustifiedNodeProperty { .. } => Rule::SS2,
            Violation::UnjustifiedEdgeProperty { .. } => Rule::SS3,
            Violation::UnjustifiedEdge { .. } => Rule::SS4,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.rule())?;
        match self {
            Violation::NodePropertyType {
                node,
                field,
                value,
                expected,
            } => write!(f, "{node}.{field} = {value} does not conform to {expected}"),
            Violation::EdgePropertyType {
                edge,
                prop,
                value,
                expected,
            } => write!(f, "{edge}.{prop} = {value} does not conform to {expected}"),
            Violation::EdgeTargetType {
                edge,
                target,
                target_label,
                expected,
            } => write!(
                f,
                "{edge} points to {target} labelled {target_label:?}, expected ⊑ {expected}"
            ),
            Violation::NonListFieldMultiEdge {
                source,
                field,
                count,
            } => write!(
                f,
                "{source} has {count} outgoing {field:?} edges but the field is not list-typed"
            ),
            Violation::DistinctViolated {
                source,
                target,
                field,
                count,
            } => write!(
                f,
                "{count} parallel {field:?} edges {source} → {target} under @distinct"
            ),
            Violation::LoopViolated { node, field } => {
                write!(f, "self-loop {field:?} on {node} under @noLoops")
            }
            Violation::UniqueForTargetViolated {
                target,
                field,
                count,
            } => write!(
                f,
                "{target} has {count} incoming {field:?} edges under @uniqueForTarget"
            ),
            Violation::RequiredForTargetViolated {
                target,
                field,
                site,
            } => write!(
                f,
                "{target} lacks an incoming {field:?} edge required by {site} (@requiredForTarget)"
            ),
            Violation::RequiredPropertyMissing {
                node,
                field,
                empty_list,
            } => {
                if *empty_list {
                    write!(f, "{node}.{field} is required but is an empty list")
                } else {
                    write!(f, "{node} lacks required property {field:?}")
                }
            }
            Violation::RequiredEdgeMissing { node, field } => {
                write!(f, "{node} lacks required outgoing {field:?} edge")
            }
            Violation::KeyViolated { a, b, ty, fields } => write!(
                f,
                "nodes {a} and {b} of type {ty} agree on key ({})",
                fields.join(", ")
            ),
            Violation::UnjustifiedNode { node, label } => {
                write!(f, "{node} has label {label:?} which is not an object type")
            }
            Violation::UnjustifiedNodeProperty { node, prop } => {
                write!(f, "{node} has unjustified property {prop:?}")
            }
            Violation::UnjustifiedEdgeProperty { edge, prop } => {
                write!(f, "{edge} has unjustified property {prop:?}")
            }
            Violation::UnjustifiedEdge {
                edge,
                label,
                source_label,
            } => write!(
                f,
                "{edge} labelled {label:?} is not a relationship of source type {source_label:?}"
            ),
        }
    }
}

/// Wall time, elements examined and violation count attributed to one
/// rule kernel.
///
/// Produced by the kernel engines (indexed, parallel, incremental),
/// which run each of the fifteen rules as a separate kernel; the naive
/// oracle records only [`FamilyMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleMetrics {
    /// The rule the kernel checked.
    pub rule: Rule,
    /// Wall-clock nanoseconds spent in the kernel. For the parallel
    /// engine this is the slowest shard's time (the critical path), not
    /// the sum over workers; DS7 additionally includes the cross-shard
    /// reduce.
    pub nanos: u64,
    /// Elements the kernel examined: nodes or edges for the scan rules,
    /// index groups or per-site node-bucket entries for the group-keyed
    /// rules. Summed over workers for the parallel engine.
    pub elements_scanned: u64,
    /// Violations the kernel produced (before cross-engine
    /// canonicalisation and dedup).
    pub violations: usize,
}

/// Wall time and violation count attributed to one rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyMetrics {
    /// The rule family the block checked.
    pub family: RuleFamily,
    /// Wall-clock nanoseconds spent in the family's rule kernels (for
    /// the naive engine: in the family's rule block).
    pub nanos: u64,
    /// Violations the family's rules produced (before cross-engine
    /// canonicalisation).
    pub violations: usize,
}

/// Opt-in instrumentation of one validation run, collected when
/// [`ValidationOptions::collect_metrics`](crate::ValidationOptions) is
/// set and surfaced through [`ValidationReport::metrics`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationMetrics {
    /// Engine name: `"naive"`, `"indexed"`, `"parallel"` or
    /// `"incremental"`.
    pub engine: &'static str,
    /// Worker threads used (1 for the serial engines).
    pub threads: usize,
    /// Live nodes visited, summed over all rule blocks (a node scanned
    /// by two blocks counts twice).
    pub nodes_scanned: u64,
    /// Live edges visited, summed over all rule blocks.
    pub edges_scanned: u64,
    /// Nanoseconds building the [`pgraph::index::GraphIndex`] (0 for the
    /// naive engine, which runs index-free).
    pub index_build_nanos: u64,
    /// Per-rule timing, element and violation counters, in the order
    /// the kernels ran. Empty for the naive engine, which runs the
    /// paper's formulas as family blocks rather than per-rule kernels.
    pub rules: Vec<RuleMetrics>,
    /// Per-family timing, in the order the families ran. For the kernel
    /// engines this is the per-family aggregation of
    /// [`rules`](Self::rules).
    pub families: Vec<FamilyMetrics>,
    /// Live elements (`|V| + |E|`) per shard — empty for serial engines.
    /// The spread between entries is the shard skew.
    pub shard_elements: Vec<u64>,
    /// Elements actually re-checked by the run. Equals
    /// [`elements_total`](Self::elements_total) for the full engines; the
    /// incremental engine reports the dirty-region size here, so the
    /// ratio of the two is the work saved by a delta-driven re-check.
    pub elements_rechecked: u64,
    /// Live elements (`|V| + |E|`) of the validated graph. `0` when the
    /// engine did not record the recheck ratio (full engines before a
    /// graph was measured).
    pub elements_total: u64,
}

impl ValidationMetrics {
    /// Total wall time over all recorded family blocks plus index build.
    pub fn total_nanos(&self) -> u64 {
        self.index_build_nanos + self.families.iter().map(|f| f.nanos).sum::<u64>()
    }

    /// Shard skew: largest shard's element count divided by the mean
    /// (1.0 = perfectly balanced). `None` for serial engines.
    pub fn shard_skew(&self) -> Option<f64> {
        let max = *self.shard_elements.iter().max()?;
        let sum: u64 = self.shard_elements.iter().sum();
        if sum == 0 {
            return Some(1.0);
        }
        let mean = sum as f64 / self.shard_elements.len() as f64;
        Some(max as f64 / mean)
    }
}

impl fmt::Display for ValidationMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {} ({} thread{})",
            self.engine,
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )?;
        writeln!(
            f,
            "scanned: {} node visits, {} edge visits",
            self.nodes_scanned, self.edges_scanned
        )?;
        if self.index_build_nanos > 0 {
            writeln!(
                f,
                "index build: {:.3} ms",
                self.index_build_nanos as f64 / 1e6
            )?;
        }
        for rule in &self.rules {
            writeln!(
                f,
                "  {:<5} {:>10.3} ms  {:>8} scanned  {} violation(s)",
                rule.rule.to_string() + ":",
                rule.nanos as f64 / 1e6,
                rule.elements_scanned,
                rule.violations
            )?;
        }
        for fam in &self.families {
            writeln!(
                f,
                "{:<10} {:>10.3} ms  {} violation(s)",
                format!("{:?}:", fam.family).to_lowercase(),
                fam.nanos as f64 / 1e6,
                fam.violations
            )?;
        }
        if let Some(skew) = self.shard_skew() {
            writeln!(
                f,
                "shards: {} ({} elements), skew {:.2}",
                self.shard_elements.len(),
                self.shard_elements.iter().sum::<u64>(),
                skew
            )?;
        }
        if self.elements_total > 0 {
            writeln!(
                f,
                "re-checked: {} of {} elements ({:.2}%)",
                self.elements_rechecked,
                self.elements_total,
                100.0 * self.elements_rechecked as f64 / self.elements_total as f64
            )?;
        }
        write!(f, "total: {:.3} ms", self.total_nanos() as f64 / 1e6)
    }
}

/// The outcome of a validation run.
///
/// Equality compares the *verdict* — violations and the truncation flag —
/// and deliberately ignores [`metrics`](Self::metrics), so reports from
/// different engines (or timed vs untimed runs) compare equal whenever
/// they agree on what is wrong with the graph.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    violations: Vec<Violation>,
    limit: Option<usize>,
    truncated: bool,
    metrics: Option<ValidationMetrics>,
    engine: Option<&'static str>,
}

impl PartialEq for ValidationReport {
    fn eq(&self, other: &Self) -> bool {
        self.violations == other.violations && self.truncated == other.truncated
    }
}

impl Eq for ValidationReport {}

impl ValidationReport {
    /// Creates a report from raw violations (engines use this).
    pub fn new(violations: Vec<Violation>) -> Self {
        ValidationReport {
            violations,
            ..ValidationReport::default()
        }
    }

    /// Creates an empty report that will accept at most `limit`
    /// violations; further pushes are dropped and mark the report
    /// [`truncated`](Self::truncated).
    pub fn with_limit(limit: Option<usize>) -> Self {
        ValidationReport {
            limit,
            ..ValidationReport::default()
        }
    }

    /// Adds one violation (dropped, setting the truncation flag, once the
    /// limit is reached).
    pub fn push(&mut self, v: Violation) {
        if let Some(limit) = self.limit {
            if self.violations.len() >= limit {
                self.truncated = true;
                return;
            }
        }
        self.violations.push(v);
    }

    /// True once the violation limit has been reached — engines use this
    /// to stop scanning early.
    pub(crate) fn at_limit(&self) -> bool {
        self.limit.is_some_and(|l| self.violations.len() >= l)
    }

    /// True iff the report was cut short by
    /// [`max_violations`](crate::ValidationOptions::max_violations):
    /// the graph has at least the reported violations, and may have more.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    pub(crate) fn set_truncated(&mut self, truncated: bool) {
        self.truncated = truncated;
    }

    /// The engine that produced the report (`"naive"`, `"indexed"`,
    /// `"parallel"` or `"incremental"`), set by [`validate`](crate::validate)
    /// and by the incremental engine; `None` for hand-assembled reports.
    /// Ignored by equality, like [`metrics`](Self::metrics).
    pub fn engine(&self) -> Option<&'static str> {
        self.engine
    }

    pub(crate) fn set_engine(&mut self, engine: &'static str) {
        self.engine = Some(engine);
    }

    /// Instrumentation of the run, when
    /// [`collect_metrics`](crate::ValidationOptions::collect_metrics)
    /// was set.
    pub fn metrics(&self) -> Option<&ValidationMetrics> {
        self.metrics.as_ref()
    }

    pub(crate) fn set_metrics(&mut self, metrics: ValidationMetrics) {
        self.metrics = Some(metrics);
    }

    /// Moves the accumulated violations out (the parallel engine merges
    /// shard-local reports this way).
    pub(crate) fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// True iff no rule is violated — the graph satisfies the schema at
    /// the checked level. A [`truncated`](Self::truncated) report never
    /// conforms: the scan stopped early, so unseen violations may exist
    /// (relevant for `max_violations(0)`, which checks nothing at all).
    pub fn conforms(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }

    /// All violations.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations of one rule.
    pub fn by_rule(&self, rule: Rule) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(move |v| v.rule() == rule)
    }

    /// Violation counts per rule (only rules that fired).
    pub fn counts(&self) -> BTreeMap<Rule, usize> {
        let mut out = BTreeMap::new();
        for v in &self.violations {
            *out.entry(v.rule()).or_insert(0) += 1;
        }
        out
    }

    /// Sorts and deduplicates, so reports from different engines compare
    /// equal.
    pub fn canonicalize(&mut self) {
        self.violations.sort();
        self.violations.dedup();
    }

    /// Renders the report as a JSON document for machine consumption
    /// (CI pipelines via `pgschema validate --json`):
    ///
    /// ```json
    /// {"conforms": false, "engine": "indexed", "truncated": false,
    ///  "violations": [{"rule": "WS1", "family": "weak", "message": "…"}],
    ///  "rule_counts": {"WS1": 1}}
    /// ```
    ///
    /// The `"engine"` key appears when [`engine`](Self::engine) is set
    /// (always, for reports coming out of [`validate`](crate::validate)).
    /// `"rule_counts"` maps each rule that fired to its violation count
    /// (an empty object for a conforming graph). When metrics were
    /// collected a `"metrics"` object is appended with engine, threads,
    /// scan counters, per-rule and per-family nanosecond timings,
    /// per-shard element counts and the re-checked/total element counters.
    /// The full schema of this document is specified in the repository
    /// README ("JSON report schema").
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"conforms\": {}", self.conforms());
        if let Some(engine) = self.engine {
            out.push_str(&format!(", \"engine\": \"{engine}\""));
        }
        out.push_str(&format!(
            ", \"truncated\": {}, \"violations\": [",
            self.truncated
        ));
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&violation_json(v));
        }
        out.push(']');
        out.push_str(", \"rule_counts\": {");
        for (i, (rule, count)) in self.counts().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{rule}\": {count}"));
        }
        out.push('}');
        if let Some(m) = &self.metrics {
            out.push_str(&format!(
                ", \"metrics\": {{\"engine\": \"{}\", \"threads\": {}, \
                 \"nodes_scanned\": {}, \"edges_scanned\": {}, \
                 \"index_build_nanos\": {}, \"rules\": [",
                m.engine, m.threads, m.nodes_scanned, m.edges_scanned, m.index_build_nanos
            ));
            for (i, rm) in m.rules.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"rule\": \"{}\", \"nanos\": {}, \"elements_scanned\": {}, \
                     \"violations\": {}}}",
                    rm.rule, rm.nanos, rm.elements_scanned, rm.violations
                ));
            }
            out.push_str("], \"families\": [");
            for (i, fam) in m.families.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"family\": \"{}\", \"nanos\": {}, \"violations\": {}}}",
                    family_name(fam.family),
                    fam.nanos,
                    fam.violations
                ));
            }
            out.push_str("], \"shard_elements\": [");
            for (i, n) in m.shard_elements.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&n.to_string());
            }
            out.push_str(&format!(
                "], \"elements_rechecked\": {}, \"elements_total\": {}}}",
                m.elements_rechecked, m.elements_total
            ));
        }
        out.push('}');
        out
    }

    /// Total number of violations.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// True if there are no violations.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }
}

/// JSON string escaping shared by every hand-rolled renderer in the
/// crate (report, migration plan, schema diff).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The wire name of a rule family.
pub(crate) fn family_name(f: RuleFamily) -> &'static str {
    match f {
        RuleFamily::Weak => "weak",
        RuleFamily::Directives => "directives",
        RuleFamily::Strong => "strong",
    }
}

/// One violation as the `{"rule", "family", "message"}` JSON object used
/// by every violation list the crate renders.
pub(crate) fn violation_json(v: &Violation) -> String {
    format!(
        "{{\"rule\": \"{}\", \"family\": \"{}\", \"message\": \"{}\"}}",
        v.rule(),
        family_name(v.rule().family()),
        esc(&v.to_string())
    )
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conforms() {
            return writeln!(f, "graph strongly satisfies the schema");
        }
        if self.truncated {
            writeln!(
                f,
                "{} violation(s) (truncated; more may exist):",
                self.violations.len()
            )?;
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
        }
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_partition_into_families() {
        assert_eq!(
            Rule::ALL
                .iter()
                .filter(|r| r.family() == RuleFamily::Weak)
                .count(),
            4
        );
        assert_eq!(
            Rule::ALL
                .iter()
                .filter(|r| r.family() == RuleFamily::Directives)
                .count(),
            7
        );
        assert_eq!(
            Rule::ALL
                .iter()
                .filter(|r| r.family() == RuleFamily::Strong)
                .count(),
            4
        );
        for r in Rule::ALL {
            assert!(!r.gloss().is_empty());
        }
    }

    #[test]
    fn report_counts_and_canonicalization() {
        let v1 = Violation::UnjustifiedNode {
            node: NodeId::from_index(1),
            label: "X".into(),
        };
        let v0 = Violation::UnjustifiedNode {
            node: NodeId::from_index(0),
            label: "X".into(),
        };
        let mut r = ValidationReport::new(vec![v1.clone(), v0.clone(), v1.clone()]);
        r.canonicalize();
        assert_eq!(r.len(), 2);
        assert_eq!(r.violations()[0], v0);
        assert_eq!(r.counts()[&Rule::SS1], 2);
        assert!(!r.conforms());
        assert!(r.to_string().contains("SS1"));
    }

    #[test]
    fn limited_report_truncates_and_flags() {
        let mk = |ix| Violation::UnjustifiedNode {
            node: NodeId::from_index(ix),
            label: "X".into(),
        };
        let mut r = ValidationReport::with_limit(Some(2));
        assert!(!r.truncated());
        r.push(mk(0));
        assert!(!r.at_limit());
        r.push(mk(1));
        assert!(r.at_limit());
        r.push(mk(2));
        assert_eq!(r.len(), 2);
        assert!(r.truncated());
        assert!(r.to_json().contains("\"truncated\": true"));
        assert!(r.to_string().contains("truncated"));
        // Equality ignores metrics but not the truncation flag.
        let full = ValidationReport::new(vec![mk(0), mk(1)]);
        assert_ne!(r, full);
    }

    #[test]
    fn equality_ignores_metrics() {
        let v = Violation::UnjustifiedNode {
            node: NodeId::from_index(0),
            label: "X".into(),
        };
        let a = ValidationReport::new(vec![v.clone()]);
        let mut b = ValidationReport::new(vec![v]);
        b.set_metrics(ValidationMetrics {
            engine: "indexed",
            threads: 1,
            ..ValidationMetrics::default()
        });
        assert_eq!(a, b);
        assert!(b.metrics().is_some());
    }

    #[test]
    fn metrics_render_in_json_and_text() {
        let mut r = ValidationReport::default();
        r.set_metrics(ValidationMetrics {
            engine: "parallel",
            threads: 4,
            nodes_scanned: 100,
            edges_scanned: 50,
            index_build_nanos: 1_000,
            rules: vec![RuleMetrics {
                rule: Rule::WS1,
                nanos: 2_000,
                elements_scanned: 100,
                violations: 3,
            }],
            families: vec![FamilyMetrics {
                family: RuleFamily::Weak,
                nanos: 2_000,
                violations: 3,
            }],
            shard_elements: vec![40, 40, 40, 30],
            elements_rechecked: 150,
            elements_total: 150,
        });
        let json = r.to_json();
        assert!(json.contains("\"metrics\""), "{json}");
        assert!(json.contains("\"engine\": \"parallel\""), "{json}");
        assert!(
            json.contains(
                "\"rules\": [{\"rule\": \"WS1\", \"nanos\": 2000, \
                 \"elements_scanned\": 100, \"violations\": 3}]"
            ),
            "{json}"
        );
        assert!(
            json.contains("\"shard_elements\": [40, 40, 40, 30]"),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let m = r.metrics().unwrap();
        assert_eq!(m.total_nanos(), 3_000);
        let skew = m.shard_skew().unwrap();
        assert!((skew - 40.0 / 37.5).abs() < 1e-9);
        let text = m.to_string();
        assert!(text.contains("engine: parallel (4 threads)"), "{text}");
        assert!(text.contains("WS1:"), "{text}");
        assert!(text.contains("skew"), "{text}");
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut r = ValidationReport::default();
        assert_eq!(
            r.to_json(),
            "{\"conforms\": true, \"truncated\": false, \"violations\": [], \
             \"rule_counts\": {}}"
        );
        r.push(Violation::UnjustifiedNodeProperty {
            node: NodeId::from_index(0),
            prop: "we\"ird\nname".into(),
        });
        let json = r.to_json();
        assert!(json.contains("\"conforms\": false"), "{json}");
        assert!(json.contains("\"rule\": \"SS2\""), "{json}");
        assert!(json.contains("\"family\": \"strong\""), "{json}");
        // The Display message debug-quotes the property name; the JSON
        // escaper then escapes those characters again.
        assert!(json.contains(r#"we\\\"ird\\nname"#), "{json}");
        // Must itself be valid JSON: cheap structural check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn display_of_each_violation_mentions_its_rule() {
        let samples: Vec<Violation> = vec![
            Violation::NodePropertyType {
                node: NodeId::from_index(0),
                field: "f".into(),
                value: "3".into(),
                expected: "String".into(),
            },
            Violation::KeyViolated {
                a: NodeId::from_index(0),
                b: NodeId::from_index(1),
                ty: "User".into(),
                fields: vec!["id".into()],
            },
            Violation::UnjustifiedEdge {
                edge: EdgeId::from_index(0),
                label: "rel".into(),
                source_label: "A".into(),
            },
        ];
        for v in samples {
            let text = v.to_string();
            assert!(text.contains(&v.rule().to_string()), "{text}");
        }
    }
}
