//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! The standard library ships no checksum, and the workspace is offline,
//! so the WAL frames carry this hand-rolled implementation. It matches
//! the ubiquitous `crc32(b"123456789") == 0xCBF43926` check value, which
//! keeps the on-disk format compatible with external tooling (`cksum -o
//! 3`, Python's `zlib.crc32`, …) should anyone want to audit a log.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"the quick brown fox".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference);
            }
        }
    }
}
