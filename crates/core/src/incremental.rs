//! Incremental revalidation — re-check only the dirty region.
//!
//! Theorem 1 bounds *full* validation; a production store revalidates
//! after small mutations, where almost all of the previous
//! [`ValidationReport`] is still correct. [`IncrementalEngine`] keeps the
//! graph, the last report and enough derived state (adjacency lists,
//! per-`@key` tuple tables) to re-derive, after a [`GraphDelta`], exactly
//! the violations that could have changed.
//!
//! # Rule dependency analysis
//!
//! Every violation is *anchored* at one element (two for DS7), and each
//! rule's truth at an anchor depends on a bounded neighbourhood:
//!
//! * **element-local rules** — WS1/DS5/SS1/SS2 read one node's label and
//!   properties; WS2/WS3/SS3/SS4 read one edge plus its endpoints'
//!   labels;
//! * **group-keyed rules** — WS4/DS1/DS2/DS6 read a node's out-edge
//!   groups, DS3/DS4 a node's in-edge groups *and the labels of those
//!   edges' sources*;
//! * **key-grouped rule** — DS7 reads the key tuples of all nodes below
//!   the key's site.
//!
//! The engine therefore closes the mutated element set under "endpoint of
//! a touched edge" and "neighbour of a relabelled node": the resulting
//! dirty node set `D` and the set `L` of live edges incident to `D` cover
//! every anchor whose rule inputs the mutation can have changed.
//! Violations anchored in `D ∪ L` (or at removed elements) are dropped,
//! and the shared rule kernels (the crate-private `rules` module) are
//! re-run over a dirty `Scope`: element scans walk `D` and `L`,
//! group-keyed kernels run over an interned
//! [`PartialCols`](crate::rules::partial::PartialCols) view of the
//! region whose scope owns exactly the nodes of `D` — the same
//! ownership-predicate mechanism the sharded `parallel` engine uses,
//! with "shard" = the dirty set (groups keyed by a node of `D` are
//! complete in the partial view, because *all* of that node's incident
//! edges are in `L`). DS7 is maintained as a persistent tuple table per
//! key (`Ds7Plan::Recheck` — the durable form of the parallel engine's
//! map side), so only affected key groups are re-emitted.
//!
//! Soundness rests on a symmetry invariant: *everything dropped is
//! re-derivable, and everything re-derived was dropped* — node-anchored
//! violations are dropped at exactly the nodes the restricted rules
//! re-check, edge-anchored ones at exactly the edges they re-scan, DS7
//! pairs at exactly the dirty participants. The merged report therefore
//! equals a from-scratch run, an equality enforced per-mutation by the
//! four-way engine-agreement proptest in `tests/engine_agreement.rs`.
//!
//! Costs: a delta touching `k` elements of maximum degree `d` re-checks
//! `O(k·d)` elements plus one pass over the stored violations —
//! independent of `|V| + |E|`. Experiment E2i (EXPERIMENTS.md) measures
//! the resulting speedup over full indexed validation.

use std::borrow::Borrow;
use std::collections::BTreeSet;

use pgraph::{DeltaEffect, EdgeId, GraphDelta, GraphError, NodeId, PropertyGraph, SymbolTable};

use crate::indexed;
use crate::metrics::families_from_rules;
use crate::migrate;
use crate::pgschema::PgSchema;
use crate::report::{ValidationMetrics, ValidationReport, Violation};
use crate::rules::partial::PartialCols;
use crate::rules::symschema::SymSchema;
use crate::rules::{self, Ds7Plan, KeyTable, Scope, Sink, SinkOutput};
use crate::ValidationOptions;

/// Stateless entry point behind [`Engine::Incremental`](crate::Engine):
/// with no prior report to start from, the first run is necessarily a
/// full pass, so this delegates to the indexed rule library (the same
/// pass [`IncrementalEngine::new`] performs to seed its state).
pub(crate) fn run(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
) -> ValidationReport {
    indexed::run_named(g, s, options, "incremental")
}

/// What one [`apply`](IncrementalEngine::apply) call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Dirty elements re-checked (nodes + incident edges).
    pub elements_rechecked: usize,
    /// Live elements in the graph after the delta (`|V| + |E|`).
    pub elements_total: usize,
    /// Net new violations introduced by the delta.
    pub violations_added: usize,
    /// Net violations retracted by the delta.
    pub violations_removed: usize,
}

/// A validation session that keeps its report up to date across
/// [`GraphDelta`]s by re-checking only the dirty region.
///
/// The engine owns the graph (mutations must flow through
/// [`apply`](Self::apply) so the derived state stays in sync) and holds
/// the schema through any `S: Borrow<PgSchema>` — a plain `&PgSchema`
/// for the scoped, single-owner sessions the CLI runs, or an owning
/// handle such as `Arc<PgSchema>` for long-lived server sessions that
/// outlive the scope the schema was parsed in.
/// [`report`](Self::report) is always equal to what a full
/// [`validate`](crate::validate) of the current graph would produce.
///
/// Two options are interpreted specially: `engine` is ignored (this *is*
/// the engine), and `max_violations` is ignored because incremental
/// repair needs the complete violation set as its state — a truncated
/// report cannot be patched soundly.
///
/// ```
/// use pg_schema::{IncrementalEngine, PgSchema, ValidationOptions};
/// use pgraph::{GraphBuilder, GraphDelta, Value};
///
/// let doc = gql_sdl::parse("type User { login: String! @required }").unwrap();
/// let schema = PgSchema::from_document(&doc).unwrap();
/// let graph = GraphBuilder::new()
///     .node("u", "User")
///     .prop("u", "login", "alice")
///     .build()
///     .unwrap();
/// let u = graph.node_ids().next().unwrap();
///
/// let mut engine = IncrementalEngine::new(graph, &schema, &ValidationOptions::default());
/// assert!(engine.report().conforms());
///
/// // Breaking the type of `login` is caught by re-checking one node.
/// let outcome = engine
///     .apply(&GraphDelta::new().set_node_property(u, "login", Value::Int(3)))
///     .unwrap();
/// assert_eq!(outcome.violations_added, 1);
/// assert!(!engine.report().conforms());
///
/// // Repairing it retracts the violation again.
/// engine
///     .apply(&GraphDelta::new().set_node_property(u, "login", Value::from("bob")))
///     .unwrap();
/// assert!(engine.report().conforms());
/// ```
pub struct IncrementalEngine<S: Borrow<PgSchema>> {
    graph: PropertyGraph,
    schema: S,
    options: ValidationOptions,
    /// Canonical (sorted, deduped) violations of the current graph.
    violations: Vec<Violation>,
    /// Outgoing / incoming edge ids per raw node index (loops in both).
    out: Vec<Vec<EdgeId>>,
    inc: Vec<Vec<EdgeId>>,
    /// One table per `schema.keys()` entry, in order; empty when
    /// directives are not checked.
    key_tables: Vec<KeyTable>,
    /// Metrics of the last apply (or the seeding run), when requested.
    metrics: Option<ValidationMetrics>,
    /// Shared symbol space for the per-delta partial views, with the
    /// primary schema compiled onto it. Cached across deltas: the table
    /// is append-only, and a graph symbol interned after the compile
    /// falls back to the `SymSchema` empty row — the unknown-label
    /// answer, which is exactly what a symbol the schema never
    /// mentioned deserves (see the `symschema` module docs).
    symbols: SymbolTable,
    sym_schema: SymSchema,
    /// An open dual-schema migration window, if any — the candidate
    /// schema's own violation set and key tables, patched by every
    /// [`apply`](Self::apply) alongside the primary side.
    window: Option<Box<WindowState>>,
}

/// The candidate side of an open migration window: everything the
/// primary side keeps, re-derived under the candidate schema.
struct WindowState {
    schema: PgSchema,
    /// The candidate compiled onto the engine's shared symbol table.
    sym_schema: SymSchema,
    violations: Vec<Violation>,
    key_tables: Vec<KeyTable>,
}

impl<S: Borrow<PgSchema>> IncrementalEngine<S> {
    /// Seeds the session: one full indexed-engine pass over `graph`, plus
    /// the adjacency and key tables later deltas are checked against.
    pub fn new(graph: PropertyGraph, schema: S, options: &ValidationOptions) -> Self {
        let mut options = *options;
        options.max_violations = None;
        let mut symbols = SymbolTable::new();
        let sym_schema = SymSchema::build(schema.borrow(), &mut symbols);
        let mut engine = IncrementalEngine {
            graph,
            schema,
            options,
            violations: Vec::new(),
            out: Vec::new(),
            inc: Vec::new(),
            key_tables: Vec::new(),
            metrics: None,
            symbols,
            sym_schema,
            window: None,
        };
        engine.reseed();
        engine
    }

    /// Rebuilds every piece of derived state — report, adjacency lists,
    /// key tables — from the current graph with one full indexed pass.
    /// Used to seed a new session and to recover from a partially
    /// applied delta.
    fn reseed(&mut self) {
        let schema = self.schema.borrow();
        let mut report = indexed::run_named(&self.graph, schema, &self.options, "incremental");
        report.canonicalize();
        let seed_metrics = report.metrics().cloned();
        self.violations = report.take_violations();

        self.out = vec![Vec::new(); self.graph.node_index_bound()];
        self.inc = vec![Vec::new(); self.graph.node_index_bound()];
        for e in self.graph.edges() {
            self.out[e.source().index()].push(e.id);
            self.inc[e.target().index()].push(e.id);
        }

        self.key_tables = rules::directives::build_key_tables(schema, &self.graph, &self.options);
        self.metrics = None;
        if self.options.collect_metrics {
            let total = (self.graph.node_count() + self.graph.edge_count()) as u64;
            let mut m = seed_metrics.unwrap_or_default();
            m.elements_rechecked = total;
            m.elements_total = total;
            self.metrics = Some(m);
        }
        // An open window is re-seeded the same way, under its schema.
        if let Some(w) = &mut self.window {
            let mut report =
                indexed::run_named(&self.graph, &w.schema, &self.options, "incremental");
            report.canonicalize();
            w.violations = report.take_violations();
            w.key_tables =
                rules::directives::build_key_tables(&w.schema, &self.graph, &self.options);
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// The schema the session validates against.
    pub fn schema(&self) -> &PgSchema {
        self.schema.borrow()
    }

    /// The options the session validates under.
    pub fn options(&self) -> &ValidationOptions {
        &self.options
    }

    /// The current report — equal to a full revalidation of
    /// [`graph`](Self::graph) under the session's options.
    pub fn report(&self) -> ValidationReport {
        let mut r = ValidationReport::new(self.violations.clone());
        r.set_engine("incremental");
        if let Some(m) = &self.metrics {
            r.set_metrics(m.clone());
        }
        r
    }

    /// Applies `delta` to the graph and patches the report by re-checking
    /// only the affected elements.
    ///
    /// On a [`GraphError`] (an op referenced a missing element) the delta
    /// may have been partially applied; the engine then re-seeds itself
    /// from the resulting graph with a full pass, so the session stays
    /// sound — only the incremental speedup is lost for that call.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<DeltaOutcome, GraphError> {
        let effect = match delta.apply_to(&mut self.graph) {
            Ok(eff) => eff,
            Err(e) => {
                self.reseed();
                return Err(e);
            }
        };
        Ok(self.absorb(&effect))
    }

    /// Patches report + derived state from a delta's effect.
    fn absorb(&mut self, effect: &DeltaEffect) -> DeltaOutcome {
        // -- 1. adjacency maintenance -----------------------------------
        // Additions before removals: an edge both added and removed by one
        // delta must have been added first (ids are never reused), so this
        // order leaves no stale entry behind.
        let bound = self.graph.node_index_bound();
        if self.out.len() < bound {
            self.out.resize(bound, Vec::new());
            self.inc.resize(bound, Vec::new());
        }
        for t in &effect.added_edges {
            self.out[t.source.index()].push(t.edge);
            self.inc[t.target.index()].push(t.edge);
        }
        for t in &effect.removed_edges {
            self.out[t.source.index()].retain(|&e| e != t.edge);
            self.inc[t.target.index()].retain(|&e| e != t.edge);
        }

        // -- 2. dirty closure -------------------------------------------
        // D = mutated nodes ∪ endpoints of touched edges ∪ neighbours of
        // relabelled nodes (their DS3/DS4 groups filter by the old label).
        let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
        dirty.extend(effect.added_nodes.iter().copied());
        dirty.extend(effect.removed_nodes.iter().copied());
        dirty.extend(effect.relabelled_nodes.iter().copied());
        dirty.extend(effect.node_prop_changes.iter().copied());
        for t in effect
            .added_edges
            .iter()
            .chain(&effect.removed_edges)
            .chain(&effect.edge_prop_changes)
        {
            dirty.insert(t.source);
            dirty.insert(t.target);
        }
        for &v in &effect.relabelled_nodes {
            for &e in self.out[v.index()].iter().chain(&self.inc[v.index()]) {
                if let Some((s, t)) = self.graph.edge_endpoints(e) {
                    dirty.insert(s);
                    dirty.insert(t);
                }
            }
        }

        // L = live edges incident to D (complete per dirty endpoint).
        let mut local_edges: BTreeSet<EdgeId> = BTreeSet::new();
        for &v in &dirty {
            if v.index() < self.out.len() {
                local_edges.extend(self.out[v.index()].iter().copied());
                local_edges.extend(self.inc[v.index()].iter().copied());
            }
        }
        let removed_edge_ids: BTreeSet<EdgeId> =
            effect.removed_edges.iter().map(|t| t.edge).collect();

        // -- 3..5. drop, re-derive, merge — once per live schema --------
        // The interned partial view covers the dirty region and is
        // schema-independent, so an open migration window reuses it: the
        // candidate side is patched through the same kernels against its
        // own violation set and key tables. Schema compilation happened
        // once at construction; every schema-known name is already in
        // the table, and a graph symbol first seen here resolves to the
        // SymSchema empty row — the unknown-label answer.
        let pc = PartialCols::build(&self.graph, &dirty, &local_edges, &mut self.symbols);
        let (added, removed, sink_out) = repatch(
            &self.graph,
            self.schema.borrow(),
            &self.options,
            &self.sym_schema,
            &self.symbols,
            &pc,
            &dirty,
            &local_edges,
            &removed_edge_ids,
            &mut self.violations,
            &mut self.key_tables,
            self.options.collect_metrics,
        );
        if let Some(w) = &mut self.window {
            let WindowState {
                schema,
                sym_schema,
                violations,
                key_tables,
            } = &mut **w;
            repatch(
                &self.graph,
                schema,
                &self.options,
                sym_schema,
                &self.symbols,
                &pc,
                &dirty,
                &local_edges,
                &removed_edge_ids,
                violations,
                key_tables,
                false,
            );
        }

        let rechecked = (dirty.len() + local_edges.len()) as u64;
        let total = (self.graph.node_count() + self.graph.edge_count()) as u64;
        if self.options.collect_metrics {
            let mut m = ValidationMetrics {
                engine: "incremental",
                threads: 1,
                elements_rechecked: rechecked,
                elements_total: total,
                ..ValidationMetrics::default()
            };
            if let Some(out) = sink_out {
                m.families = families_from_rules(&out.rules);
                m.rules = out.rules;
                m.nodes_scanned = out.nodes_scanned;
                m.edges_scanned = out.edges_scanned;
            }
            self.metrics = Some(m);
        }
        DeltaOutcome {
            elements_rechecked: rechecked as usize,
            elements_total: total as usize,
            violations_added: added,
            violations_removed: removed,
        }
    }

    /// Opens a dual-schema migration window: from now on every
    /// [`apply`](Self::apply) keeps a second violation set up to date
    /// under `candidate`, alongside the primary schema's. Returns the
    /// [`MigrationPlan`](migrate::MigrationPlan) — the exact violation
    /// preview of migrating the *current* graph.
    ///
    /// The candidate side is seeded from the dirty region the schema
    /// diff maps to, not a full pass: outside that region the two
    /// schemas decide every rule identically, so the primary violations
    /// carry over (see the [`migrate`] module docs). A previously open
    /// window is replaced.
    pub fn begin_migration(&mut self, candidate: PgSchema) -> migrate::MigrationPlan {
        let schema = self.schema.borrow();
        let sdiff = crate::diff::diff(schema, &candidate);
        let all_labels = migrate::graph_labels(&self.graph);
        let (changes, affected) = migrate::impacts(schema, &candidate, &sdiff, &all_labels);
        let region = migrate::region_of(&self.graph, &affected, true);
        // Partition the live violations by region anchoring — the kept
        // part seeds the window, the in-region part is the preview's old
        // side (no old-schema region run needed).
        let mut kept = Vec::new();
        let mut in_region = Vec::new();
        for v in &self.violations {
            let (node_anchor, edge_anchor, pair) = anchors(v);
            let hit = node_anchor.is_some_and(|n| region.nodes.contains(&n))
                || edge_anchor.is_some_and(|e| region.edges.contains(&e))
                || pair
                    .is_some_and(|(a, b)| region.nodes.contains(&a) || region.nodes.contains(&b));
            if hit {
                in_region.push(v.clone());
            } else {
                kept.push(v.clone());
            }
        }
        let fresh = migrate::region_run(&self.graph, &candidate, &self.options, &region);
        let (added, removed) = migrate::diff_violations(&in_region, &fresh);
        let mut violations = kept;
        violations.extend(fresh);
        violations.sort();
        violations.dedup();
        let key_tables =
            rules::directives::build_key_tables(&candidate, &self.graph, &self.options);
        let plan = migrate::MigrationPlan {
            changes,
            dirty_nodes: region.nodes.len(),
            dirty_edges: region.edges.len(),
            elements_total: self.graph.node_count() + self.graph.edge_count(),
            added,
            removed,
        };
        // Compile the candidate onto the shared symbol table once; names
        // only it introduces extend the table, and the primary SymSchema
        // answers them with its unknown-label row.
        let sym_schema = SymSchema::build(&candidate, &mut self.symbols);
        self.window = Some(Box::new(WindowState {
            schema: candidate,
            sym_schema,
            violations,
            key_tables,
        }));
        plan
    }

    /// True while a migration window is open.
    pub fn migration_active(&self) -> bool {
        self.window.is_some()
    }

    /// The candidate schema of the open window.
    pub fn migration_schema(&self) -> Option<&PgSchema> {
        self.window.as_ref().map(|w| &w.schema)
    }

    /// The candidate side's report — equal to a full validation of the
    /// current graph under the candidate schema.
    pub fn migration_report(&self) -> Option<ValidationReport> {
        self.window.as_ref().map(|w| {
            let mut r = ValidationReport::new(w.violations.clone());
            r.set_engine("incremental");
            r
        })
    }

    /// Violations present under the candidate schema but not the
    /// current one — what committing *now* would newly break. Empty
    /// means the window can close clean.
    pub fn migration_regressions(&self) -> Option<Vec<Violation>> {
        self.window
            .as_ref()
            .map(|w| migrate::diff_violations(&self.violations, &w.violations).0)
    }

    /// Closes the window without switching schemas. Returns false when
    /// no window was open.
    pub fn abort_migration(&mut self) -> bool {
        self.window.take().is_some()
    }

    /// Consumes the engine, handing back its graph (used when a session
    /// is demoted to a dormant state).
    pub fn into_graph(self) -> PropertyGraph {
        self.graph
    }
}

impl<S: Borrow<PgSchema> + From<PgSchema>> IncrementalEngine<S> {
    /// Atomically swaps the engine onto the open window's candidate
    /// schema: its violation set and key tables — kept exact across
    /// every delta since [`begin_migration`](Self::begin_migration) —
    /// become the live ones. Returns false (and changes nothing) when
    /// no window is open.
    ///
    /// Only schema handles that can own a freshly built schema (e.g.
    /// `Arc<PgSchema>`) support committing; a `&PgSchema`-holding
    /// engine can still plan and track a window, but the swap would
    /// dangle.
    pub fn commit_migration(&mut self) -> bool {
        let Some(w) = self.window.take() else {
            return false;
        };
        let w = *w;
        self.schema = S::from(w.schema);
        self.sym_schema = w.sym_schema;
        self.violations = w.violations;
        self.key_tables = w.key_tables;
        self.metrics = None;
        true
    }
}

/// Drops every violation anchored in the dirty region, re-derives over
/// it through the shared kernels under one schema, and merges — steps
/// 3–5 of [`IncrementalEngine::absorb`], factored out so an open
/// migration window patches its candidate side identically.
///
/// `kept` and the re-derived set have disjoint anchor spaces by the
/// symmetry invariant; the sort restores canonical order and dedup
/// absorbs duplicate emissions within the fresh set (e.g. one loop
/// edge matching two `@noLoops` sites).
#[allow(clippy::too_many_arguments)]
fn repatch(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
    ss: &SymSchema,
    symbols: &SymbolTable,
    pc: &PartialCols<'_>,
    dirty: &BTreeSet<NodeId>,
    local_edges: &BTreeSet<EdgeId>,
    removed_edge_ids: &BTreeSet<EdgeId>,
    violations: &mut Vec<Violation>,
    key_tables: &mut [KeyTable],
    collect_metrics: bool,
) -> (usize, usize, Option<SinkOutput>) {
    let old = std::mem::take(violations);
    let (kept, dropped): (Vec<Violation>, Vec<Violation>) = old.into_iter().partition(|v| {
        let (node_anchor, edge_anchor, pair) = anchors(v);
        if let Some(n) = node_anchor {
            if dirty.contains(&n) {
                return false;
            }
        }
        if let Some(e) = edge_anchor {
            if local_edges.contains(&e) || removed_edge_ids.contains(&e) {
                return false;
            }
        }
        if let Some((a, b)) = pair {
            if dirty.contains(&a) || dirty.contains(&b) {
                return false;
            }
        }
        true
    });

    let mut fresh = ValidationReport::default();
    let scope = Scope::dirty(g, s, ss, symbols, pc, dirty);
    let mut sink = Sink::new(&mut fresh, collect_metrics);
    rules::run(&scope, options, &mut sink, Ds7Plan::Recheck(key_tables));
    let sink_out = sink.finish();

    let mut fresh_v = fresh.take_violations();
    fresh_v.sort();
    fresh_v.dedup();
    let (added, removed) = diff_counts(&dropped, &fresh_v);
    *violations = kept;
    violations.extend(fresh_v);
    violations.sort();
    violations.dedup();
    (added, removed, sink_out)
}

/// Counts `(|new \ old|, |old \ new|)` over two sorted, deduped slices.
fn diff_counts(old: &[Violation], new: &[Violation]) -> (usize, usize) {
    let (mut i, mut j) = (0, 0);
    let (mut added, mut removed) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                removed += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    (added + new.len() - j, removed + old.len() - i)
}

/// The elements a violation is anchored at: `(node, edge, ds7 pair)`.
/// Exactly one of the three is `Some` for every variant.
#[allow(clippy::type_complexity)]
pub(crate) fn anchors(v: &Violation) -> (Option<NodeId>, Option<EdgeId>, Option<(NodeId, NodeId)>) {
    match v {
        Violation::NodePropertyType { node, .. }
        | Violation::LoopViolated { node, .. }
        | Violation::RequiredPropertyMissing { node, .. }
        | Violation::RequiredEdgeMissing { node, .. }
        | Violation::UnjustifiedNode { node, .. }
        | Violation::UnjustifiedNodeProperty { node, .. } => (Some(*node), None, None),
        Violation::NonListFieldMultiEdge { source, .. }
        | Violation::DistinctViolated { source, .. } => (Some(*source), None, None),
        Violation::UniqueForTargetViolated { target, .. }
        | Violation::RequiredForTargetViolated { target, .. } => (Some(*target), None, None),
        Violation::EdgePropertyType { edge, .. }
        | Violation::EdgeTargetType { edge, .. }
        | Violation::UnjustifiedEdgeProperty { edge, .. }
        | Violation::UnjustifiedEdge { edge, .. } => (None, Some(*edge), None),
        Violation::KeyViolated { a, b, .. } => (None, None, Some((*a, *b))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, Engine, ValidationOptions};
    use pgraph::{GraphBuilder, Value};

    fn schema() -> PgSchema {
        let doc = gql_sdl::parse(
            r#"
            type User @key(fields: ["login"]) {
                login: String! @required
                follows: [User] @noLoops @distinct
                session: UserSession
            }
            type UserSession {
                user: User! @uniqueForTarget
            }
            "#,
        )
        .unwrap();
        PgSchema::from_document(&doc).unwrap()
    }

    fn conforming() -> PropertyGraph {
        GraphBuilder::new()
            .node("u1", "User")
            .prop("u1", "login", "alice")
            .node("u2", "User")
            .prop("u2", "login", "bob")
            .node("s", "UserSession")
            .edge("u1", "u2", "follows")
            .edge("s", "u1", "user")
            .build()
            .unwrap()
    }

    /// Assert that the engine agrees with a full indexed run after every
    /// delta in `deltas`.
    fn check_sequence(schema: &PgSchema, graph: PropertyGraph, deltas: &[GraphDelta]) {
        let options = ValidationOptions::default();
        let mut engine = IncrementalEngine::new(graph, schema, &options);
        let full = validate(engine.graph(), schema, &options);
        assert_eq!(engine.report(), full, "seed disagrees");
        for (i, delta) in deltas.iter().enumerate() {
            engine.apply(delta).unwrap();
            let full = validate(engine.graph(), schema, &options);
            assert_eq!(
                engine.report(),
                full,
                "delta #{i} diverged\nincremental:\n{}\nfull:\n{}",
                engine.report(),
                full
            );
        }
    }

    #[test]
    fn property_break_and_repair() {
        let s = schema();
        let g = conforming();
        let u1 = g.node_ids().next().unwrap();
        check_sequence(
            &s,
            g,
            &[
                GraphDelta::new().set_node_property(u1, "login", Value::Int(3)),
                GraphDelta::new().remove_node_property(u1, "login"),
                GraphDelta::new().set_node_property(u1, "login", Value::from("alice")),
            ],
        );
    }

    #[test]
    fn key_collisions_track_group_moves() {
        let s = schema();
        let g = conforming();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let (u1, u2) = (ids[0], ids[1]);
        let next = NodeId::from_index(g.node_index_bound());
        check_sequence(
            &s,
            g,
            &[
                // u2 collides with u1, then a third node joins the group,
                // then u1 leaves it again.
                GraphDelta::new().set_node_property(u2, "login", Value::from("alice")),
                GraphDelta::new().add_node("User").set_node_property(
                    next,
                    "login",
                    Value::from("alice"),
                ),
                GraphDelta::new().set_node_property(u1, "login", Value::from("carol")),
            ],
        );
    }

    #[test]
    fn structural_ops_close_over_endpoints() {
        let s = schema();
        let g = conforming();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let (u1, u2) = (ids[0], ids[1]);
        let first_edge = g.edge_ids().next().unwrap();
        check_sequence(
            &s,
            g,
            &[
                // Second parallel follows edge: DS1 at u1.
                GraphDelta::new().add_edge(u1, u2, "follows"),
                // Self-loop: DS2 at u2.
                GraphDelta::new().add_edge(u2, u2, "follows"),
                // Remove the original follows edge (DS1 shrinks back).
                GraphDelta::new().remove_edge(first_edge),
                // Remove u2 entirely: cascades the loop + parallel edge.
                GraphDelta::new().remove_node(u2),
            ],
        );
    }

    #[test]
    fn relabel_dirties_neighbours() {
        let s = schema();
        let g = conforming();
        let ids: Vec<NodeId> = g.node_ids().collect();
        check_sequence(
            &s,
            g,
            &[
                // u1 stops being a User: the session edge into it now has
                // a mistyped target, its own edges are unjustified, and
                // it leaves the @key table.
                GraphDelta::new().set_node_label(ids[0], "Ghost"),
                GraphDelta::new().set_node_label(ids[0], "User"),
            ],
        );
    }

    #[test]
    fn failed_apply_reseeds_soundly() {
        let s = schema();
        let g = conforming();
        let u1 = g.node_ids().next().unwrap();
        let options = ValidationOptions::default();
        let mut engine = IncrementalEngine::new(g, &s, &options);
        let ghost = NodeId::from_index(99);
        let bad = GraphDelta::new()
            .set_node_property(u1, "login", Value::Int(7)) // applies
            .remove_node(ghost); // fails
        assert!(engine.apply(&bad).is_err());
        // The partial mutation is reflected and the report is still exact.
        let full = validate(engine.graph(), &s, &options);
        assert_eq!(engine.report(), full);
        assert!(!engine.report().conforms());
    }

    #[test]
    fn outcome_reports_recheck_scope() {
        let s = schema();
        let g = conforming();
        let u1 = g.node_ids().next().unwrap();
        let options = ValidationOptions::builder().collect_metrics(true).build();
        let mut engine = IncrementalEngine::new(g, &s, &options);
        let outcome = engine
            .apply(&GraphDelta::new().set_node_property(u1, "login", Value::Int(3)))
            .unwrap();
        assert!(outcome.elements_rechecked < outcome.elements_total);
        assert_eq!(outcome.violations_added, 1);
        assert_eq!(outcome.violations_removed, 0);
        let report = engine.report();
        let m = report.metrics().expect("metrics requested");
        assert_eq!(m.engine, "incremental");
        assert_eq!(m.elements_rechecked, outcome.elements_rechecked as u64);
        assert_eq!(m.elements_total, outcome.elements_total as u64);
    }

    #[test]
    fn stateless_incremental_engine_is_a_full_pass() {
        let s = schema();
        let mut g = conforming();
        let u1 = g.node_ids().next().unwrap();
        g.set_node_property(u1, "login", Value::Int(3));
        let a = validate(&g, &s, &ValidationOptions::with_engine(Engine::Incremental));
        let b = validate(&g, &s, &ValidationOptions::with_engine(Engine::Indexed));
        assert_eq!(a, b);
        assert_eq!(a.engine(), Some("incremental"));
    }

    /// [`schema`] tightened: at most one incoming `follows` edge per
    /// `User` (`@uniqueForTarget`).
    fn candidate() -> PgSchema {
        let doc = gql_sdl::parse(
            r#"
            type User @key(fields: ["login"]) {
                login: String! @required
                follows: [User] @noLoops @distinct @uniqueForTarget
                session: UserSession
            }
            type UserSession {
                user: User! @uniqueForTarget
            }
            "#,
        )
        .unwrap();
        PgSchema::from_document(&doc).unwrap()
    }

    /// After every delta, both sides of an open window must equal a
    /// full validation under their respective schemas.
    #[test]
    fn window_tracks_deltas_on_both_sides() {
        let old = schema();
        let new = candidate();
        let g = conforming();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let (u1, u2) = (ids[0], ids[1]);
        let options = ValidationOptions::default();
        let u3 = NodeId::from_index(g.node_index_bound());
        let mut engine = IncrementalEngine::new(g, &old, &options);
        let plan = engine.begin_migration(candidate());
        assert!(
            plan.compatible(),
            "clean graph, tightening is compatible here"
        );
        let deltas = [
            // a second follower of u2: clean under old, breaks the new
            // @uniqueForTarget on follows
            GraphDelta::new()
                .add_node("User")
                .set_node_property(u3, "login", Value::from("carol"))
                .add_edge(u3, u2, "follows"),
            GraphDelta::new().set_node_property(u1, "login", Value::Int(7)),
            GraphDelta::new().set_node_property(u1, "login", Value::from("alice")),
        ];
        for (i, d) in deltas.iter().enumerate() {
            engine.apply(d).unwrap();
            let full_old = validate(engine.graph(), &old, &options);
            let full_new = validate(engine.graph(), &new, &options);
            assert_eq!(engine.report(), full_old, "delta #{i}: primary diverged");
            assert_eq!(
                engine.migration_report().unwrap(),
                full_new,
                "delta #{i}: window diverged"
            );
        }
        let regressions = engine.migration_regressions().unwrap();
        assert!(
            regressions
                .iter()
                .any(|v| matches!(v, Violation::UniqueForTargetViolated { .. })),
            "u2's second follower regresses under @uniqueForTarget"
        );
    }

    #[test]
    fn commit_swaps_to_the_candidate_schema() {
        let old = std::sync::Arc::new(schema());
        let new = candidate();
        let g = conforming();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let options = ValidationOptions::default();
        let mut engine = IncrementalEngine::new(g, std::sync::Arc::clone(&old), &options);
        engine.begin_migration(candidate());
        engine
            .apply(&GraphDelta::new().set_node_property(ids[1], "login", Value::from("alice")))
            .unwrap();
        assert!(engine.commit_migration());
        assert!(!engine.migration_active());
        assert_eq!(engine.report(), validate(engine.graph(), &new, &options));
        // committed state keeps absorbing deltas exactly
        engine
            .apply(&GraphDelta::new().set_node_property(ids[1], "login", Value::from("bob")))
            .unwrap();
        assert_eq!(engine.report(), validate(engine.graph(), &new, &options));
        assert!(!engine.commit_migration(), "no window left to commit");
    }

    #[test]
    fn abort_keeps_the_old_schema() {
        let old = schema();
        let g = conforming();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let options = ValidationOptions::default();
        let mut engine = IncrementalEngine::new(g, &old, &options);
        engine.begin_migration(candidate());
        engine
            .apply(&GraphDelta::new().set_node_property(ids[1], "login", Value::from("alice")))
            .unwrap();
        assert!(engine.abort_migration());
        assert!(!engine.abort_migration());
        assert!(engine.migration_report().is_none());
        assert_eq!(engine.report(), validate(engine.graph(), &old, &options));
    }

    /// A failed delta re-seeds the primary side — the open window must
    /// be re-seeded with it, not left tracking a stale graph.
    #[test]
    fn failed_apply_reseeds_the_window_too() {
        let old = schema();
        let new = candidate();
        let g = conforming();
        let ids: Vec<NodeId> = g.node_ids().collect();
        let options = ValidationOptions::default();
        let mut engine = IncrementalEngine::new(g, &old, &options);
        engine.begin_migration(candidate());
        let bogus = NodeId::from_index(1_000_000);
        let err = engine.apply(
            &GraphDelta::new()
                .set_node_property(ids[1], "login", Value::from("alice"))
                .set_node_property(bogus, "login", Value::from("x")),
        );
        assert!(err.is_err());
        assert_eq!(engine.report(), validate(engine.graph(), &old, &options));
        assert_eq!(
            engine.migration_report().unwrap(),
            validate(engine.graph(), &new, &options)
        );
    }
}
