//! The indexed validation engine — and the shared rule library.
//!
//! One `O(|V| + |E|)` pass builds a [`GraphIndex`] (label index, adjacency
//! grouped by edge label, parallel-edge groups); every rule then reduces
//! to hash-group lookups:
//!
//! * WS1/WS2/SS1–SS3 are single scans over properties,
//! * WS3/SS4 are single scans over edges,
//! * WS4/DS1/DS3 read the precomputed `(source, label)` / `(source,
//!   label, target)` / `(target, label)` groups,
//! * DS4–DS6 scan label buckets of the node-label index,
//! * DS7 builds one hash map from key tuples to nodes per `@key`.
//!
//! The result is near-linear in `|V| + |E|` for a fixed schema — the
//! practical counterpart of the paper's AC0/`O(n²)` analysis — and is
//! property-tested to agree violation-for-violation with the naive
//! engine.
//!
//! The rule functions are `pub(crate)` and deliberately generic: element
//! scans take the node/edge iterator to walk, group-keyed rules take an
//! `owns` predicate selecting the groups to process, and DS7 is split
//! into a collect and an emit phase. The serial engine instantiates them
//! with whole-graph iterators and `|_| true`; the parallel engine feeds
//! shard iterators and shard-ownership predicates, so both engines run
//! the *same* checks by construction.

use std::collections::HashMap;
use std::time::Instant;

use pgraph::index::GraphIndex;
use pgraph::{EdgeRef, NodeId, NodeRef, PropertyGraph, Value};

use crate::metrics::MetricsRecorder;
use crate::pgschema::{KeyConstraint, PgSchema};
use crate::report::{RuleFamily, ValidationReport, Violation};
use crate::ValidationOptions;

pub(crate) fn run(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
) -> ValidationReport {
    run_named(g, s, options, "indexed")
}

/// The full indexed pass under a caller-chosen engine name — the
/// incremental engine's seeding run and the stateless
/// `Engine::Incremental` path report themselves as `"incremental"` while
/// running exactly this code.
pub(crate) fn run_named(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
    engine_name: &'static str,
) -> ValidationReport {
    let mut r = ValidationReport::with_limit(options.max_violations);
    let mut rec = MetricsRecorder::new(options.collect_metrics, engine_name, 1);

    let start = Instant::now();
    let ix = GraphIndex::build(g);
    // Labels actually present, with their subtype relationships to the
    // schema's constraint sites resolved once.
    let labels: Vec<String> = ix.node_labels().map(str::to_owned).collect();
    rec.index_build(start.elapsed().as_nanos() as u64);

    let (nv, ne) = (g.node_count() as u64, g.edge_count() as u64);

    // The property/edge scans serve both the weak and the strong rules in
    // one fused pass; they run inside the earliest enabled family block.
    if options.weak {
        rec.family(RuleFamily::Weak, &mut r, |r| {
            scan_node_properties(g.nodes(), s, options, r);
            scan_edges(g, g.edges(), s, options, r);
            ws4(g, s, &ix, r, |_| true);
        });
        rec.scanned(nv, ne);
    }
    if options.directives && !r.at_limit() {
        rec.family(RuleFamily::Directives, &mut r, |r| {
            ds1(g, s, &ix, r, |_| true);
            ds2(g, s, g.edges(), r);
            ds3(g, s, &ix, r, |_| true);
            ds4(g, s, &ix, &labels, r, |_| true);
            ds5(g, s, &ix, &labels, r, |_| true);
            ds6(g, s, &ix, &labels, r, |_| true);
            ds7(g, s, &ix, &labels, r);
        });
        rec.scanned(nv, ne);
    }
    if options.strong && !r.at_limit() {
        rec.family(RuleFamily::Strong, &mut r, |r| {
            if !options.weak {
                scan_node_properties(g.nodes(), s, options, r);
                scan_edges(g, g.edges(), s, options, r);
            }
            ss1(g.nodes(), s, r);
        });
        rec.scanned(nv, if options.weak { 0 } else { ne });
    }
    rec.finish(&mut r);
    r
}

/// WS1 + SS2 in one property scan over the given nodes.
pub(crate) fn scan_node_properties<'g>(
    nodes: impl Iterator<Item = NodeRef<'g>>,
    s: &PgSchema,
    options: &ValidationOptions,
    r: &mut ValidationReport,
) {
    for n in nodes {
        if r.at_limit() {
            return;
        }
        for (prop, value) in n.properties() {
            match s.attribute(n.label(), prop) {
                Some(attr) => {
                    if options.weak && !s.schema().value_conforms(value, &attr.ty) {
                        r.push(Violation::NodePropertyType {
                            node: n.id,
                            field: prop.to_owned(),
                            value: value.to_string(),
                            expected: s.display_type(&attr.ty),
                        });
                    }
                }
                None => {
                    if options.strong {
                        r.push(Violation::UnjustifiedNodeProperty {
                            node: n.id,
                            prop: prop.to_owned(),
                        });
                    }
                }
            }
        }
    }
}

/// WS2 + WS3 + SS3 + SS4 in one scan over the given edges.
pub(crate) fn scan_edges<'g>(
    g: &PropertyGraph,
    edges: impl Iterator<Item = EdgeRef<'g>>,
    s: &PgSchema,
    options: &ValidationOptions,
    r: &mut ValidationReport,
) {
    for e in edges {
        if r.at_limit() {
            return;
        }
        let src_label = g.node_label(e.source()).unwrap_or("");
        let rel = s.relationship(src_label, e.label());
        if options.strong {
            if rel.is_none() {
                r.push(Violation::UnjustifiedEdge {
                    edge: e.id,
                    label: e.label().to_owned(),
                    source_label: src_label.to_owned(),
                });
            }
            for (prop, _) in e.properties() {
                let justified = rel.is_some_and(|rd| rd.edge_props.iter().any(|p| p.name == prop));
                if !justified {
                    r.push(Violation::UnjustifiedEdgeProperty {
                        edge: e.id,
                        prop: prop.to_owned(),
                    });
                }
            }
        }
        if !options.weak {
            continue;
        }
        // WS2: typed edge properties (relationship fields only; attribute
        // field arguments are ignored per §3.6).
        if let Some(rel) = rel {
            for (prop, value) in e.properties() {
                if let Some(ep) = rel.edge_props.iter().find(|p| p.name == prop) {
                    if !s.schema().value_conforms(value, &ep.ty) {
                        r.push(Violation::EdgePropertyType {
                            edge: e.id,
                            prop: prop.to_owned(),
                            value: value.to_string(),
                            expected: s.display_type(&ep.ty),
                        });
                    }
                }
            }
        }
        // WS3: over *all* field definitions of the source type.
        if let Some(src_ty) = s.label_type(src_label) {
            if let Some(field) = s.schema().field(src_ty, e.label()) {
                let target_label = g.node_label(e.target()).unwrap_or("");
                if !s.label_subtype(target_label, field.ty.base) {
                    r.push(Violation::EdgeTargetType {
                        edge: e.id,
                        target: e.target(),
                        target_label: target_label.to_owned(),
                        expected: s.schema().type_name(field.ty.base).to_owned(),
                    });
                }
            }
        }
    }
}

/// WS4 via the `(source, label)` out-groups whose source `owns` selects.
pub(crate) fn ws4(
    g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    r: &mut ValidationReport,
    owns: impl Fn(NodeId) -> bool,
) {
    for (source, label, edges) in ix.out_groups() {
        if r.at_limit() {
            return;
        }
        if edges.len() < 2 || !owns(source) {
            continue;
        }
        let Some(src_label) = g.node_label(source) else {
            continue;
        };
        let Some(src_ty) = s.label_type(src_label) else {
            continue;
        };
        let Some(field) = s.schema().field(src_ty, label) else {
            continue;
        };
        if !field.ty.is_list() {
            r.push(Violation::NonListFieldMultiEdge {
                source,
                field: label.to_owned(),
                count: edges.len(),
            });
        }
    }
}

/// DS1 via the parallel-edge groups whose source `owns` selects.
pub(crate) fn ds1(
    g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    r: &mut ValidationReport,
    owns: impl Fn(NodeId) -> bool,
) {
    for site in s.constraint_sites() {
        if !site.rel.distinct {
            continue;
        }
        for (src, label, dst, edges) in ix.parallel_groups() {
            if r.at_limit() {
                return;
            }
            if label != site.rel.name || edges.len() < 2 || !owns(src) {
                continue;
            }
            if s.label_subtype(g.node_label(src).unwrap_or(""), site.site) {
                r.push(Violation::DistinctViolated {
                    source: src,
                    target: dst,
                    field: label.to_owned(),
                    count: edges.len(),
                });
            }
        }
    }
}

/// DS2 via one scan over the given edges per site.
pub(crate) fn ds2<'g>(
    g: &PropertyGraph,
    s: &PgSchema,
    edges: impl Iterator<Item = EdgeRef<'g>>,
    r: &mut ValidationReport,
) {
    let loop_sites: Vec<_> = s
        .constraint_sites()
        .iter()
        .filter(|site| site.rel.no_loops)
        .collect();
    if loop_sites.is_empty() {
        return;
    }
    for e in edges {
        if r.at_limit() {
            return;
        }
        if e.source() != e.target() {
            continue;
        }
        for site in &loop_sites {
            if e.label() == site.rel.name
                && s.label_subtype(g.node_label(e.source()).unwrap_or(""), site.site)
            {
                r.push(Violation::LoopViolated {
                    node: e.source(),
                    field: site.rel.name.clone(),
                });
            }
        }
    }
}

/// DS3 via the `(target, label)` in-groups whose target `owns` selects,
/// counting only edges whose source is below the constraint site (cf. the
/// DS3 reading note in the naive engine).
pub(crate) fn ds3(
    g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    r: &mut ValidationReport,
    owns: impl Fn(NodeId) -> bool,
) {
    for site in s.constraint_sites() {
        if !site.rel.unique_for_target {
            continue;
        }
        for (target, label, edges) in ix.in_groups() {
            if r.at_limit() {
                return;
            }
            if label != site.rel.name || edges.len() < 2 || !owns(target) {
                continue;
            }
            let count = edges
                .iter()
                .filter(|&&e| {
                    let src = g.edge_endpoints(e).map(|(s0, _)| s0);
                    src.is_some_and(|v| s.label_subtype(g.node_label(v).unwrap_or(""), site.site))
                })
                .count();
            if count > 1 {
                r.push(Violation::UniqueForTargetViolated {
                    target,
                    field: label.to_owned(),
                    count,
                });
            }
        }
    }
}

/// DS4 via the label index: for every owned node whose label is below the
/// field type, check the incoming `(target, label)` group.
pub(crate) fn ds4(
    g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    labels: &[String],
    r: &mut ValidationReport,
    owns: impl Fn(NodeId) -> bool,
) {
    for site in s.constraint_sites() {
        if !site.rel.required_for_target {
            continue;
        }
        for label in labels {
            if r.at_limit() {
                return;
            }
            if !s.label_subtype_wrapped(label, &site.rel.ty) {
                continue;
            }
            for &n in ix.nodes_with_label(label) {
                if !owns(n) {
                    continue;
                }
                let ok = ix.in_edges_labelled(n, &site.rel.name).iter().any(|&e| {
                    g.edge_endpoints(e).is_some_and(|(src, _)| {
                        s.label_subtype(g.node_label(src).unwrap_or(""), site.site)
                    })
                });
                if !ok {
                    r.push(Violation::RequiredForTargetViolated {
                        target: n,
                        field: site.rel.name.clone(),
                        site: s.schema().type_name(site.site).to_owned(),
                    });
                }
            }
        }
    }
}

/// DS5 via the label index, over owned nodes.
pub(crate) fn ds5(
    g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    labels: &[String],
    r: &mut ValidationReport,
    owns: impl Fn(NodeId) -> bool,
) {
    let sites: Vec<_> = s
        .schema()
        .object_types()
        .chain(s.schema().interface_types())
        .flat_map(|t| {
            s.attributes(t)
                .iter()
                .filter(|a| a.required)
                .map(move |a| (t, a))
        })
        .collect();
    for (t, attr) in sites {
        for label in labels {
            if r.at_limit() {
                return;
            }
            if !s.label_subtype(label, t) {
                continue;
            }
            for &n in ix.nodes_with_label(label) {
                if !owns(n) {
                    continue;
                }
                match g.node_property(n, &attr.name) {
                    None => r.push(Violation::RequiredPropertyMissing {
                        node: n,
                        field: attr.name.clone(),
                        empty_list: false,
                    }),
                    Some(Value::List(items)) if attr.ty.is_list() && items.is_empty() => {
                        r.push(Violation::RequiredPropertyMissing {
                            node: n,
                            field: attr.name.clone(),
                            empty_list: true,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }
}

/// DS6 via the label index and out-groups, over owned nodes.
pub(crate) fn ds6(
    _g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    labels: &[String],
    r: &mut ValidationReport,
    owns: impl Fn(NodeId) -> bool,
) {
    for site in s.constraint_sites() {
        if !site.rel.required {
            continue;
        }
        for label in labels {
            if r.at_limit() {
                return;
            }
            if !s.label_subtype(label, site.site) {
                continue;
            }
            for &n in ix.nodes_with_label(label) {
                if !owns(n) {
                    continue;
                }
                if ix.out_edges_labelled(n, &site.rel.name).is_empty() {
                    r.push(Violation::RequiredEdgeMissing {
                        node: n,
                        field: site.rel.name.clone(),
                    });
                }
            }
        }
    }
}

/// The scalar fields of a key (only those participate in DS7; condition
/// `typeS(t, fi) ∈ S∪WS`).
pub(crate) fn ds7_scalar_fields<'s>(s: &'s PgSchema, key: &'s KeyConstraint) -> Vec<&'s str> {
    key.fields
        .iter()
        .filter(|f| {
            s.schema()
                .field(key.site, f)
                .is_some_and(|fi| s.schema().is_scalar(fi.ty.base))
        })
        .map(String::as_str)
        .collect()
}

/// DS7 map phase: groups the owned nodes below the key's site by their
/// key tuple.
///
/// A key tuple is the vector of `Option<Value>` over the key's scalar
/// fields; DS7's "agree" relation (both lack the property, or both have
/// equal values) is exactly tuple equality, so tables from disjoint
/// shards merge by appending the node lists.
pub(crate) fn ds7_collect(
    g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    labels: &[String],
    key: &KeyConstraint,
    scalar_fields: &[&str],
    owns: impl Fn(NodeId) -> bool,
) -> HashMap<Vec<Option<Value>>, Vec<NodeId>> {
    let mut groups: HashMap<Vec<Option<Value>>, Vec<NodeId>> = HashMap::new();
    for label in labels {
        if !s.label_subtype(label, key.site) {
            continue;
        }
        for &n in ix.nodes_with_label(label) {
            if !owns(n) {
                continue;
            }
            let tuple: Vec<Option<Value>> = scalar_fields
                .iter()
                .map(|f| g.node_property(n, f).cloned())
                .collect();
            groups.entry(tuple).or_default().push(n);
        }
    }
    groups
}

/// DS7 reduce phase: emits one violation per unordered pair of nodes
/// sharing a key tuple, in sorted node order.
pub(crate) fn ds7_emit(
    s: &PgSchema,
    key: &KeyConstraint,
    groups: HashMap<Vec<Option<Value>>, Vec<NodeId>>,
    r: &mut ValidationReport,
) {
    for mut nodes in groups.into_values() {
        if nodes.len() < 2 {
            continue;
        }
        if r.at_limit() {
            return;
        }
        nodes.sort();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in nodes.iter().skip(i + 1) {
                r.push(Violation::KeyViolated {
                    a,
                    b,
                    ty: s.schema().type_name(key.site).to_owned(),
                    fields: key.fields.clone(),
                });
            }
        }
    }
}

/// DS7 for the serial engine: collect and emit per key.
fn ds7(
    g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    labels: &[String],
    r: &mut ValidationReport,
) {
    for key in s.keys() {
        if r.at_limit() {
            return;
        }
        let scalar_fields = ds7_scalar_fields(s, key);
        let groups = ds7_collect(g, s, ix, labels, key, &scalar_fields, |_| true);
        ds7_emit(s, key, groups, r);
    }
}

/// SS1 via one scan over the given nodes.
pub(crate) fn ss1<'g>(
    nodes: impl Iterator<Item = NodeRef<'g>>,
    s: &PgSchema,
    r: &mut ValidationReport,
) {
    for n in nodes {
        if r.at_limit() {
            return;
        }
        if !s.is_object_label(n.label()) {
            r.push(Violation::UnjustifiedNode {
                node: n.id,
                label: n.label().to_owned(),
            });
        }
    }
}
