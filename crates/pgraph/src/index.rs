//! Secondary indexes over a [`PropertyGraph`].
//!
//! The indexed validation engine (Theorem 1's "tractable algorithm") needs
//! constant-time access to:
//!
//! * all nodes with a given label (rules SS1, DS4–DS7),
//! * all outgoing/incoming edges of a node grouped by edge label
//!   (rules WS3–WS4, DS1–DS6),
//! * multiplicity of `(source, label)` and `(source, label, target)` edge
//!   groups (rules WS4, DS1, DS3).
//!
//! [`GraphIndex`] computes all of these in a single `O(|V| + |E|)` pass and
//! is immutable thereafter — the validator treats a graph snapshot, exactly
//! like the decision problem in the paper takes `G` as a fixed input.

use std::collections::HashMap;

use crate::{EdgeId, NodeId, PropertyGraph};

/// An immutable snapshot index of a property graph.
#[derive(Debug, Default)]
pub struct GraphIndex {
    /// label -> node ids carrying that label.
    by_label: HashMap<String, Vec<NodeId>>,
    /// (source node, edge label) -> edge ids.
    out_by_label: HashMap<(NodeId, String), Vec<EdgeId>>,
    /// (target node, edge label) -> edge ids.
    in_by_label: HashMap<(NodeId, String), Vec<EdgeId>>,
    /// (source, edge label, target) -> parallel edge ids.
    parallel: HashMap<(NodeId, String, NodeId), Vec<EdgeId>>,
}

impl GraphIndex {
    /// Builds the index in one pass over the graph.
    pub fn build(g: &PropertyGraph) -> Self {
        let mut ix = GraphIndex::default();
        for n in g.nodes() {
            ix.by_label
                .entry(n.label().to_owned())
                .or_default()
                .push(n.id);
        }
        for e in g.edges() {
            let label = e.label().to_owned();
            ix.out_by_label
                .entry((e.source(), label.clone()))
                .or_default()
                .push(e.id);
            ix.in_by_label
                .entry((e.target(), label.clone()))
                .or_default()
                .push(e.id);
            ix.parallel
                .entry((e.source(), label, e.target()))
                .or_default()
                .push(e.id);
        }
        ix
    }

    /// Builds an index over a *subgraph*: only the given nodes populate the
    /// label index and only the given edges populate the adjacency groups.
    /// Dead ids are skipped silently.
    ///
    /// This is the substrate of incremental revalidation: for a dirty node
    /// set `D`, indexing `D` plus every edge incident to a node of `D`
    /// yields groups that are *complete* for every group key in `D` (all
    /// incident edges of a dirty node are present), while groups keyed by
    /// non-dirty nodes may be partial — callers must filter those out via
    /// their ownership predicate, exactly as the sharded engine does.
    pub fn build_partial(
        g: &PropertyGraph,
        nodes: impl IntoIterator<Item = NodeId>,
        edges: impl IntoIterator<Item = EdgeId>,
    ) -> Self {
        let mut ix = GraphIndex::default();
        for id in nodes {
            if let Some(n) = g.node(id) {
                ix.by_label
                    .entry(n.label().to_owned())
                    .or_default()
                    .push(id);
            }
        }
        for id in edges {
            if let Some(e) = g.edge(id) {
                let label = e.label().to_owned();
                ix.out_by_label
                    .entry((e.source(), label.clone()))
                    .or_default()
                    .push(id);
                ix.in_by_label
                    .entry((e.target(), label.clone()))
                    .or_default()
                    .push(id);
                ix.parallel
                    .entry((e.source(), label, e.target()))
                    .or_default()
                    .push(id);
            }
        }
        ix
    }

    /// All nodes labelled `label` (empty slice if none).
    pub fn nodes_with_label(&self, label: &str) -> &[NodeId] {
        self.by_label.get(label).map_or(&[], Vec::as_slice)
    }

    /// All labels that occur on nodes.
    pub fn node_labels(&self) -> impl Iterator<Item = &str> {
        self.by_label.keys().map(String::as_str)
    }

    /// Outgoing edges of `v` with label `label`.
    pub fn out_edges_labelled(&self, v: NodeId, label: &str) -> &[EdgeId] {
        // Key is (NodeId, String); build a borrowed lookup via iteration-free
        // map access using an owned key only when present is costly, so we
        // accept one allocation per query here. Hot paths use
        // `out_groups()` instead, which iterates without allocating.
        self.out_by_label
            .get(&(v, label.to_owned()))
            .map_or(&[], Vec::as_slice)
    }

    /// Incoming edges of `v` with label `label`.
    pub fn in_edges_labelled(&self, v: NodeId, label: &str) -> &[EdgeId] {
        self.in_by_label
            .get(&(v, label.to_owned()))
            .map_or(&[], Vec::as_slice)
    }

    /// Iterates over every `(source, label, edges)` group.
    pub fn out_groups(&self) -> impl Iterator<Item = (NodeId, &str, &[EdgeId])> {
        self.out_by_label
            .iter()
            .map(|((v, l), es)| (*v, l.as_str(), es.as_slice()))
    }

    /// Iterates over every `(target, label, edges)` group.
    pub fn in_groups(&self) -> impl Iterator<Item = (NodeId, &str, &[EdgeId])> {
        self.in_by_label
            .iter()
            .map(|((v, l), es)| (*v, l.as_str(), es.as_slice()))
    }

    /// Iterates over every `(source, label, target, parallel edges)` group.
    pub fn parallel_groups(&self) -> impl Iterator<Item = (NodeId, &str, NodeId, &[EdgeId])> {
        self.parallel
            .iter()
            .map(|((s, l, t), es)| (*s, l.as_str(), *t, es.as_slice()))
    }

    /// Parallel edges `src --label--> dst`.
    pub fn parallel_edges(&self, src: NodeId, label: &str, dst: NodeId) -> &[EdgeId] {
        self.parallel
            .get(&(src, label.to_owned(), dst))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of distinct node labels.
    pub fn label_count(&self) -> usize {
        self.by_label.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> PropertyGraph {
        GraphBuilder::new()
            .node("a1", "A")
            .node("a2", "A")
            .node("b", "B")
            .edge("a1", "b", "rel")
            .edge("a1", "b", "rel") // parallel
            .edge("a2", "b", "rel")
            .edge("b", "a1", "back")
            .build()
            .unwrap()
    }

    #[test]
    fn label_index() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        assert_eq!(ix.nodes_with_label("A").len(), 2);
        assert_eq!(ix.nodes_with_label("B").len(), 1);
        assert_eq!(ix.nodes_with_label("C").len(), 0);
        assert_eq!(ix.label_count(), 2);
    }

    #[test]
    fn adjacency_groups() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        let a1 = ix.nodes_with_label("A")[0];
        let b = ix.nodes_with_label("B")[0];
        assert_eq!(ix.out_edges_labelled(a1, "rel").len(), 2);
        assert_eq!(ix.out_edges_labelled(a1, "back").len(), 0);
        assert_eq!(ix.in_edges_labelled(b, "rel").len(), 3);
        assert_eq!(ix.in_edges_labelled(a1, "back").len(), 1);
    }

    #[test]
    fn parallel_group_detection() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        let a1 = ix.nodes_with_label("A")[0];
        let b = ix.nodes_with_label("B")[0];
        assert_eq!(ix.parallel_edges(a1, "rel", b).len(), 2);
        let max_group = ix
            .parallel_groups()
            .map(|(_, _, _, es)| es.len())
            .max()
            .unwrap();
        assert_eq!(max_group, 2);
    }

    #[test]
    fn index_ignores_tombstones() {
        let mut g = sample();
        let a1 = g.node_ids().next().unwrap();
        g.remove_node(a1).unwrap();
        let ix = GraphIndex::build(&g);
        assert_eq!(ix.nodes_with_label("A").len(), 1);
        // a1's three incident edges are gone.
        let total_edges: usize = ix.out_groups().map(|(_, _, es)| es.len()).sum();
        assert_eq!(total_edges, g.edge_count());
    }

    #[test]
    fn empty_graph_index() {
        let ix = GraphIndex::build(&PropertyGraph::new());
        assert_eq!(ix.label_count(), 0);
        assert_eq!(ix.out_groups().count(), 0);
    }

    #[test]
    fn partial_index_covers_exactly_the_given_elements() {
        let g = sample();
        let a1 = g.node_ids().next().unwrap();
        let incident: Vec<_> = g
            .edges()
            .filter(|e| e.source() == a1 || e.target() == a1)
            .map(|e| e.id)
            .collect();
        let ix = GraphIndex::build_partial(&g, [a1], incident.clone());
        assert_eq!(ix.nodes_with_label("A"), &[a1]);
        assert_eq!(ix.nodes_with_label("B"), &[] as &[NodeId]);
        // Groups keyed by a1 are complete.
        assert_eq!(ix.out_edges_labelled(a1, "rel").len(), 2);
        assert_eq!(ix.in_edges_labelled(a1, "back").len(), 1);
        // Dead ids are skipped.
        let mut g2 = g.clone();
        g2.remove_node(a1).unwrap();
        let ix2 = GraphIndex::build_partial(&g2, [a1], incident);
        assert_eq!(ix2.label_count(), 0);
        assert_eq!(ix2.out_groups().count(), 0);
    }
}
