//! Client-side consistent hashing for session sharding.
//!
//! A cluster of independent leaders (`--cluster a,b,c` in the CLI and
//! `pgload`) partitions sessions by key: each node is hashed onto a ring
//! at [`VNODES`] points, a key is hashed to one point, and the key
//! belongs to the first node clockwise from it. Adding or removing one
//! node then remaps only the keys that fell between the changed node's
//! points and their predecessors — about `1/n` of the keyspace — instead
//! of reshuffling everything the way `hash % n` would.
//!
//! The hash is FNV-1a with an avalanche finalizer ([`place`]) over the
//! node name (with the vnode index mixed in) and over the key bytes:
//! deterministic across processes and platforms, no dependencies, and
//! well-scattered even for the short, near-identical strings used here.
//! Every client computes the same ring from the same `--cluster` list —
//! placement needs no coordination service. The ring is also what the
//! rebalance procedure in `docs/operations.md` §Rebalancing relies on:
//! after growing the cluster, only the sessions whose key moved need a
//! snapshot + WAL-tail handoff to the new node.

/// Points each node contributes to the ring. More vnodes smooth the
/// load split (the standard deviation of shard sizes shrinks with
/// `1/sqrt(VNODES)`) at the cost of a bigger sorted table; 64 keeps the
/// imbalance under a few percent for small clusters.
pub const VNODES: usize = 64;

/// FNV-1a, the 64-bit variant — stable and allocation-free. Raw FNV is
/// not enough for ring placement on its own: a trailing byte only
/// reaches the high bits through a single multiply by the ~2^40 prime,
/// so short keys differing in their last characters ("worker-1",
/// "worker-2", …) share their top bits and pile onto one arc of the
/// ring. [`place`] finishes it with a full avalanche for that reason.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Position of `bytes` on the ring: FNV-1a followed by the 64-bit
/// xor-shift-multiply finalizer (the `fmix64` step of MurmurHash3),
/// which avalanches every input bit into every output bit.
pub fn place(bytes: &[u8]) -> u64 {
    let mut hash = fnv1a(bytes);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// A consistent-hash ring over a fixed set of node addresses.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, node index)` sorted by point.
    points: Vec<(u64, usize)>,
    nodes: Vec<String>,
}

impl Ring {
    /// Builds the ring. Node order does not matter — the ring is a pure
    /// function of the set of names — but duplicates are kept (they
    /// would double a node's share, which is never what the caller
    /// wants, so don't pass them).
    pub fn new(nodes: impl IntoIterator<Item = impl Into<String>>) -> Ring {
        let nodes: Vec<String> = nodes.into_iter().map(Into::into).collect();
        let mut points = Vec::with_capacity(nodes.len() * VNODES);
        for (index, node) in nodes.iter().enumerate() {
            for vnode in 0..VNODES {
                let mut label = Vec::with_capacity(node.len() + 9);
                label.extend_from_slice(node.as_bytes());
                label.push(b'#');
                label.extend_from_slice(&(vnode as u64).to_le_bytes());
                points.push((place(&label), index));
            }
        }
        points.sort_unstable();
        Ring { points, nodes }
    }

    /// The node addresses this ring was built over, in input order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// The node that owns `key`: the first ring point at or clockwise
    /// after the key's hash. Panics on an empty ring.
    pub fn node_for_key(&self, key: &[u8]) -> &str {
        assert!(!self.points.is_empty(), "ring has no nodes");
        let hash = place(key);
        let index = match self.points.binary_search(&(hash, usize::MAX)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0, // wrap around
            Err(i) => i,
        };
        &self.nodes[self.points[index].1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> Ring {
        Ring::new(["10.0.0.1:7878", "10.0.0.2:7878", "10.0.0.3:7878"])
    }

    #[test]
    fn placement_is_deterministic() {
        let a = three();
        let b = Ring::new(["10.0.0.1:7878", "10.0.0.2:7878", "10.0.0.3:7878"]);
        for i in 0..500u64 {
            let key = format!("session-{i}");
            assert_eq!(
                a.node_for_key(key.as_bytes()),
                b.node_for_key(key.as_bytes())
            );
        }
    }

    #[test]
    fn load_spreads_across_nodes() {
        let ring = three();
        let mut per_node = std::collections::HashMap::new();
        for i in 0..3000u64 {
            let key = format!("session-{i}");
            *per_node
                .entry(ring.node_for_key(key.as_bytes()).to_owned())
                .or_insert(0usize) += 1;
        }
        assert_eq!(per_node.len(), 3);
        for (node, count) in &per_node {
            // Perfect balance would be 1000; tolerate vnode wobble.
            assert!(
                (500..=1500).contains(count),
                "{node} got {count} of 3000 keys"
            );
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_own_keys() {
        let full = three();
        let reduced = Ring::new(["10.0.0.1:7878", "10.0.0.3:7878"]);
        let mut moved = 0usize;
        let total = 3000usize;
        for i in 0..total as u64 {
            let key = format!("session-{i}");
            let before = full.node_for_key(key.as_bytes());
            let after = reduced.node_for_key(key.as_bytes());
            if before == "10.0.0.2:7878" {
                // Keys of the removed node must land on a survivor.
                assert_ne!(after, "10.0.0.2:7878");
            } else if before != after {
                moved += 1;
            }
        }
        // Consistent hashing's whole point: keys on surviving nodes
        // stay put.
        assert_eq!(moved, 0, "{moved} keys moved between surviving nodes");
    }

    #[test]
    fn short_sequential_keys_still_spread() {
        // Raw FNV-1a leaves the top bits of "w-0".."w-9" identical, so
        // without the avalanche finalizer every one of these keys lands
        // on the same node. Guard the finalizer.
        let ring = Ring::new(["a:1", "b:1"]);
        let mut per_node = std::collections::HashMap::new();
        for c in 0..16u64 {
            let key = format!("pgload-{c}");
            *per_node
                .entry(ring.node_for_key(key.as_bytes()).to_owned())
                .or_insert(0usize) += 1;
        }
        assert_eq!(
            per_node.len(),
            2,
            "sequential keys all on one node: {per_node:?}"
        );
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = Ring::new(["localhost:7878"]);
        for i in 0..50u64 {
            assert_eq!(
                ring.node_for_key(format!("k{i}").as_bytes()),
                "localhost:7878"
            );
        }
    }
}
