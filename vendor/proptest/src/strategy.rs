//! The [`Strategy`] trait and its combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the case RNG.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf case, `recurse` builds a
    /// composite case out of a strategy for the sub-elements. `depth`
    /// bounds the recursion; the size/branch hints of upstream proptest
    /// are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            depth,
            rec: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of a strategy, for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for FlatMap<S, F> {
    fn clone(&self) -> Self {
        FlatMap {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    depth: u32,
    rec: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            depth: self.depth,
            rec: Rc::clone(&self.rec),
        }
    }
}

impl<T: Debug + 'static> Recursive<T> {
    fn at_depth(&self, d: u32) -> BoxedStrategy<T> {
        if d == 0 {
            self.leaf.clone()
        } else {
            // Sub-elements may themselves recurse one level less, or
            // bottom out at a leaf.
            let inner = Union::new(vec![self.leaf.clone(), self.at_depth(d - 1)]).boxed();
            (self.rec)(inner)
        }
    }
}

impl<T: Debug + 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let d = rng.below(self.depth as u64 + 1) as u32;
        self.at_depth(d).generate(rng)
    }
}

/// Uniform choice between strategies — the engine behind [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// A union over the given (type-erased) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == (1u128 << 64) {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_maps_and_tuples_compose() {
        let mut r = rng();
        let s = (0usize..5, (10i64..=12).prop_map(|v| v * 2));
        for _ in 0..100 {
            let (a, b) = s.generate(&mut r);
            assert!(a < 5);
            assert!([20, 22, 24].contains(&b));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        let s = Just(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..200 {
            let t = s.generate(&mut r);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node);
    }

    #[test]
    fn flat_map_feeds_first_draw_into_second() {
        let mut r = rng();
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(Just(n), n..=n));
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert_eq!(v.len(), v[0]);
        }
    }
}
