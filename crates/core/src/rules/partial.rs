//! A symbol-keyed columnar view over a *dirty region* of a graph.
//!
//! The incremental planner revalidates only the elements a delta
//! touched. Freezing the whole graph into a
//! [`ColumnarGraph`](pgraph::ColumnarGraph) for a handful of dirty
//! nodes would invert the cost model, so the dirty path builds this
//! small interned view instead: the same symbol space and the same
//! adjacency questions the full columnar kernels ask, but materialised
//! only for the dirty nodes and their locally-incident edges.
//!
//! The build interns graph-side strings **before**
//! [`SymSchema::build`](super::symschema::SymSchema::build) runs (see
//! that module's ordering invariant): construct the `PartialCols` first,
//! then compile the schema onto the same [`SymbolTable`].

use std::collections::{BTreeSet, HashMap};

use pgraph::{EdgeId, NodeId, PropertyGraph, Sym, SymbolTable, Value};

/// One live dirty node, interned.
pub(crate) struct PartialNode<'g> {
    pub(crate) id: NodeId,
    pub(crate) label: Sym,
    /// Properties in name order (the graph stores them in a `BTreeMap`).
    pub(crate) props: Vec<(Sym, &'g Value)>,
}

/// One live local edge, interned.
pub(crate) struct PartialEdge<'g> {
    pub(crate) id: EdgeId,
    pub(crate) label: Sym,
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) props: Vec<(Sym, &'g Value)>,
}

/// The interned dirty-region view. All group maps are keyed the same way
/// the full CSR exposes its runs, so the kernels can treat both
/// uniformly through [`Scope`](super::Scope).
pub(crate) struct PartialCols<'g> {
    /// Live dirty nodes in id order.
    pub(crate) nodes: Vec<PartialNode<'g>>,
    /// Live local edges in id order.
    pub(crate) edges: Vec<PartialEdge<'g>>,
    node_pos: HashMap<NodeId, usize>,
    by_label: HashMap<Sym, Vec<NodeId>>,
    /// `(v, label) → out-edges of v with that label`, id order.
    out: HashMap<(NodeId, Sym), Vec<EdgeId>>,
    /// `(v, label) → in-edges of v with that label`, id order.
    inc: HashMap<(NodeId, Sym), Vec<EdgeId>>,
    /// `(src, label, dst) → parallel edges`, id order (DS1 groups).
    parallel: HashMap<(NodeId, Sym, NodeId), Vec<EdgeId>>,
    /// Labels of dirty nodes *and* of every endpoint of a local edge —
    /// DS1/DS3/DS4 and the weak/strong edge rules classify endpoints
    /// that may themselves be outside the dirty set.
    label_of: HashMap<NodeId, Sym>,
    /// Distinct labels of live dirty nodes, sorted by symbol.
    labels: Vec<Sym>,
}

impl<'g> PartialCols<'g> {
    /// Interns the dirty region of `g`. `dirty` are the nodes to
    /// revalidate; `local_edges` the edges incident to them (both may
    /// contain ids that are no longer live — tombstones are skipped).
    pub(crate) fn build(
        g: &'g PropertyGraph,
        dirty: &BTreeSet<NodeId>,
        local_edges: &BTreeSet<EdgeId>,
        symbols: &mut SymbolTable,
    ) -> PartialCols<'g> {
        let mut pc = PartialCols {
            nodes: Vec::new(),
            edges: Vec::new(),
            node_pos: HashMap::new(),
            by_label: HashMap::new(),
            out: HashMap::new(),
            inc: HashMap::new(),
            parallel: HashMap::new(),
            label_of: HashMap::new(),
            labels: Vec::new(),
        };
        for &id in dirty {
            let Some(n) = g.node(id) else { continue };
            let label = symbols.intern(n.label());
            let props: Vec<(Sym, &'g Value)> = n
                .properties()
                .map(|(k, v)| (symbols.intern(k), v))
                .collect();
            pc.node_pos.insert(id, pc.nodes.len());
            pc.by_label.entry(label).or_default().push(id);
            pc.label_of.insert(id, label);
            pc.nodes.push(PartialNode { id, label, props });
        }
        for &id in local_edges {
            let Some(e) = g.edge(id) else { continue };
            let label = symbols.intern(e.label());
            let (src, dst) = (e.source(), e.target());
            for end in [src, dst] {
                if let Some(l) = g.node_label(end) {
                    let sym = symbols.intern(l);
                    pc.label_of.entry(end).or_insert(sym);
                }
            }
            let props: Vec<(Sym, &'g Value)> = e
                .properties()
                .map(|(k, v)| (symbols.intern(k), v))
                .collect();
            pc.out.entry((src, label)).or_default().push(id);
            pc.inc.entry((dst, label)).or_default().push(id);
            pc.parallel.entry((src, label, dst)).or_default().push(id);
            pc.edges.push(PartialEdge {
                id,
                label,
                src,
                dst,
                props,
            });
        }
        pc.labels = pc.by_label.keys().copied().collect();
        pc.labels.sort_unstable();
        pc
    }

    /// Live dirty nodes with this label, in insertion (= id) order.
    pub(crate) fn nodes_with_label(&self, label: Sym) -> &[NodeId] {
        self.by_label.get(&label).map_or(&[], Vec::as_slice)
    }

    /// Local out-edges of `v` with `label`, in id order.
    pub(crate) fn out_edges_labelled(&self, v: NodeId, label: Sym) -> &[EdgeId] {
        self.out.get(&(v, label)).map_or(&[], Vec::as_slice)
    }

    /// Local in-edges of `v` with `label`, in id order.
    pub(crate) fn in_edges_labelled(&self, v: NodeId, label: Sym) -> &[EdgeId] {
        self.inc.get(&(v, label)).map_or(&[], Vec::as_slice)
    }

    /// The label symbol of a dirty node or a local-edge endpoint.
    pub(crate) fn label_of(&self, v: NodeId) -> Option<Sym> {
        self.label_of.get(&v).copied()
    }

    /// A dirty node's property by key symbol.
    pub(crate) fn node_prop(&self, v: NodeId, key: Sym) -> Option<&'g Value> {
        let &pos = self.node_pos.get(&v)?;
        self.nodes[pos]
            .props
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Distinct labels of the live dirty nodes, sorted by symbol.
    pub(crate) fn labels(&self) -> &[Sym] {
        &self.labels
    }

    /// All `(src, label, run)` out-groups among local edges (WS4's
    /// groups). Order is unspecified; callers canonicalise.
    pub(crate) fn out_groups(&self) -> impl Iterator<Item = (NodeId, Sym, &[EdgeId])> {
        self.out
            .iter()
            .map(|(&(src, label), run)| (src, label, run.as_slice()))
    }

    /// All `(src, dst, run)` parallel groups with `label` (DS1's groups).
    pub(crate) fn parallel_runs(
        &self,
        label: Sym,
    ) -> impl Iterator<Item = (NodeId, NodeId, &[EdgeId])> {
        self.parallel
            .iter()
            .filter(move |(&(_, l, _), _)| l == label)
            .map(|(&(src, _, dst), run)| (src, dst, run.as_slice()))
    }

    /// All `(target, run)` in-groups with `label` (DS3's groups).
    pub(crate) fn in_runs(&self, label: Sym) -> impl Iterator<Item = (NodeId, &[EdgeId])> {
        self.inc
            .iter()
            .filter(move |(&(_, l), _)| l == label)
            .map(|(&(dst, _), run)| (dst, run.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_interns_dirty_region_and_endpoint_labels() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("User");
        let b = g.add_node("User");
        let c = g.add_node("Org");
        g.set_node_property(a, "login", Value::from("a"));
        let e1 = g.add_edge(a, b, "follows").unwrap();
        let e2 = g.add_edge(a, b, "follows").unwrap();
        let e3 = g.add_edge(a, c, "member").unwrap();

        // Only `a` is dirty; b and c are reachable endpoints only.
        let dirty: BTreeSet<NodeId> = [a].into();
        let local: BTreeSet<EdgeId> = [e1, e2, e3].into();
        let mut syms = SymbolTable::new();
        let pc = PartialCols::build(&g, &dirty, &local, &mut syms);

        let user = syms.lookup("User").unwrap();
        let org = syms.lookup("Org").unwrap();
        let follows = syms.lookup("follows").unwrap();
        assert_eq!(pc.nodes.len(), 1);
        assert_eq!(pc.edges.len(), 3);
        assert_eq!(pc.nodes_with_label(user), &[a]);
        assert_eq!(pc.out_edges_labelled(a, follows), &[e1, e2]);
        assert_eq!(pc.in_edges_labelled(b, follows), &[e1, e2]);
        // Non-dirty endpoints still classify.
        assert_eq!(pc.label_of(b), Some(user));
        assert_eq!(pc.label_of(c), Some(org));
        // Parallel groups.
        let runs: Vec<_> = pc.parallel_runs(follows).collect();
        assert_eq!(runs, vec![(a, b, &[e1, e2][..])]);
        // Property lookup by symbol.
        let login = syms.lookup("login").unwrap();
        assert_eq!(pc.node_prop(a, login), Some(&Value::from("a")));
        assert_eq!(pc.node_prop(b, login), None);
    }

    #[test]
    fn tombstoned_ids_are_skipped() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("T");
        let b = g.add_node("T");
        let e = g.add_edge(a, b, "r").unwrap();
        g.remove_node(b).unwrap(); // removes e too
        let dirty: BTreeSet<NodeId> = [a, b].into();
        let local: BTreeSet<EdgeId> = [e].into();
        let mut syms = SymbolTable::new();
        let pc = PartialCols::build(&g, &dirty, &local, &mut syms);
        assert_eq!(pc.nodes.len(), 1);
        assert!(pc.edges.is_empty());
        assert_eq!(pc.labels().len(), 1);
    }
}
