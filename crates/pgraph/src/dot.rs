//! Graphviz DOT export.
//!
//! Renders a Property Graph as a `digraph` for quick inspection of
//! generated witnesses and fixtures (`pgschema check-sat … | dot -Tsvg`).
//! Labels show `λ` plus the properties; edge labels show `λ(e)` plus
//! properties. Output is deterministic.

use std::fmt::Write as _;

use crate::PropertyGraph;

/// Escapes a string for a double-quoted DOT label.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders the graph in DOT syntax.
pub fn to_dot(g: &PropertyGraph) -> String {
    let mut out = String::from("digraph pg {\n    rankdir=LR;\n    node [shape=box];\n");
    for n in g.nodes() {
        let mut label = format!(":{}", n.label());
        for (k, v) in n.properties() {
            let _ = write!(label, "\\n{k} = {v}");
        }
        let _ = writeln!(
            out,
            "    n{} [label=\"{}\"];",
            n.id.index(),
            escape(&label).replace("\\\\n", "\\n")
        );
    }
    for e in g.edges() {
        let mut label = e.label().to_owned();
        for (k, v) in e.properties() {
            let _ = write!(label, "\\n{k} = {v}");
        }
        let _ = writeln!(
            out,
            "    n{} -> n{} [label=\"{}\"];",
            e.source().index(),
            e.target().index(),
            escape(&label).replace("\\\\n", "\\n")
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Value};

    #[test]
    fn renders_nodes_edges_and_properties() {
        let g = GraphBuilder::new()
            .node("u", "User")
            .prop("u", "login", "alice")
            .node("s", "Session")
            .edge("s", "u", "user")
            .edge_prop("certainty", 0.5)
            .build()
            .unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph pg {"));
        assert!(dot.contains(":User"), "{dot}");
        assert!(dot.contains("login = \\\"alice\\\""), "{dot}");
        assert!(dot.contains("n1 -> n0"), "{dot}");
        assert!(dot.contains("certainty = 0.5"), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_graph_is_valid_dot() {
        let dot = to_dot(&crate::PropertyGraph::new());
        assert_eq!(
            dot,
            "digraph pg {\n    rankdir=LR;\n    node [shape=box];\n}\n"
        );
    }

    #[test]
    fn quotes_and_newlines_are_escaped() {
        let mut g = crate::PropertyGraph::new();
        let n = g.add_node("T");
        g.set_node_property(n, "q", Value::from("say \"hi\"\nthere"));
        let dot = to_dot(&g);
        assert!(!dot.contains("\"hi\"\n"), "unescaped quote/newline: {dot}");
    }

    #[test]
    fn output_is_deterministic() {
        let g = GraphBuilder::new()
            .node("a", "A")
            .node("b", "B")
            .edge("a", "b", "x")
            .build()
            .unwrap();
        assert_eq!(to_dot(&g), to_dot(&g));
    }
}
