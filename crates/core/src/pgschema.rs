//! Interpreting a GraphQL schema as a Property Graph schema (paper §3).
//!
//! [`PgSchema`] wraps a consistent [`gql_schema::Schema`] and precomputes
//! the tables the validators need:
//!
//! * the classification of every field of every object/interface type into
//!   **attribute definitions** (scalar/enum-based — they specify node
//!   properties, §3.2) and **relationship definitions** (object/interface/
//!   union-based — they specify outgoing edges, §3.3);
//! * per relationship definition: the constraint flags contributed by the
//!   directives, the edge-property table from the field's arguments
//!   (§3.5), and list-ness (the WS4 cardinality discriminator);
//! * key constraints from `@key` (§3.2 / DS7);
//! * the set of [`ConstraintSite`]s — `(t, f)` pairs carrying directives,
//!   where `t` may be an interface whose constraints then apply to all
//!   implementing source types (cf. Example 6.1).

use std::collections::HashMap;

use gql_schema::{
    consistency, directives as dir, subtype, AppliedDirective, FieldInfo, Schema, TypeId,
    WrappedType,
};
use pgraph::Value;

/// An error constructing a [`PgSchema`].
#[derive(Debug)]
pub enum PgSchemaError {
    /// The SDL document did not build (unknown types, bad wrappings, …).
    Build(Vec<gql_schema::Diagnostic>),
    /// The schema is not consistent per Definition 4.5. The paper assumes
    /// consistency; validation over an inconsistent schema is undefined.
    Inconsistent(Vec<consistency::ConsistencyViolation>),
}

impl std::fmt::Display for PgSchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PgSchemaError::Build(ds) => {
                writeln!(f, "schema failed to build:")?;
                for d in ds {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            PgSchemaError::Inconsistent(vs) => {
                writeln!(f, "schema is inconsistent (Definition 4.5):")?;
                for v in vs {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PgSchemaError {}

/// How a field is classified (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldClass {
    /// Scalar/enum-based: specifies a node property.
    Attribute,
    /// Object/interface/union-based: specifies outgoing edges.
    Relationship,
}

/// An attribute definition: the field specifies that nodes of the type may
/// have a property with the field's name (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDef {
    /// The property name (= the field name).
    pub name: String,
    /// The property's value type (scalar-based, possibly wrapped).
    pub ty: WrappedType,
    /// True if `@required` applies (DS5).
    pub required: bool,
}

/// A relationship definition: the field specifies that nodes of the type
/// may have outgoing edges with the field's name as label (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationshipDef {
    /// The edge label (= the field name).
    pub name: String,
    /// The field's declared type (object/interface/union base).
    pub ty: WrappedType,
    /// `basetype(ty)` — targets must satisfy `λ(target) ⊑ base`.
    pub target_base: TypeId,
    /// True if the type is a list type → multiple outgoing edges allowed;
    /// false → at most one (WS4).
    pub multi: bool,
    /// `@required` (DS6): at least one outgoing edge per source node.
    pub required: bool,
    /// `@distinct` (DS1): parallel edges collapse.
    pub distinct: bool,
    /// `@noLoops` (DS2): no self-loops.
    pub no_loops: bool,
    /// `@uniqueForTarget` (DS3): targets have at most one incoming edge.
    pub unique_for_target: bool,
    /// `@requiredForTarget` (DS4): targets need at least one incoming edge.
    pub required_for_target: bool,
    /// Edge-property definitions from the field's scalar-based arguments
    /// (§3.5): name, type, and whether the property is mandatory
    /// (non-null argument type).
    pub edge_props: Vec<EdgePropDef>,
}

/// One edge-property definition (a scalar-based field argument, §3.5).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePropDef {
    /// The property name (= the argument name).
    pub name: String,
    /// The property's value type.
    pub ty: WrappedType,
    /// True if the argument type is non-null → the edge property is
    /// mandatory (§3.5: "if the type in the field argument definition is
    /// marked as non-nullable, then the specified edge property is
    /// mandatory").
    pub mandatory: bool,
}

/// A key constraint from `@key(fields: [...])` on an object type (DS7).
#[derive(Debug, Clone, PartialEq)]
pub struct KeyConstraint {
    /// The type the directive is attached to.
    pub site: TypeId,
    /// The property names forming the key.
    pub fields: Vec<String>,
}

/// A `(t, f)` pair carrying relationship directives; `t` may be an object
/// or an interface type. Its constraints apply to every source node whose
/// label is `⊑ t` (and, for DS3/DS4, targets `⊑ typeS(t, f)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintSite {
    /// The type carrying the field definition.
    pub site: TypeId,
    /// The relationship definition (with its directive flags).
    pub rel: RelationshipDef,
}

/// A GraphQL schema interpreted as a Property Graph schema.
#[derive(Debug)]
pub struct PgSchema {
    schema: Schema,
    /// Per object/interface type: classified fields.
    attributes: HashMap<TypeId, Vec<AttributeDef>>,
    relationships: HashMap<TypeId, Vec<RelationshipDef>>,
    /// All directive-bearing relationship sites (objects *and* interfaces).
    constraint_sites: Vec<ConstraintSite>,
    /// All key constraints.
    keys: Vec<KeyConstraint>,
}

impl PgSchema {
    /// Parses, builds, consistency-checks and classifies an SDL document.
    pub fn from_document(doc: &gql_sdl::ast::Document) -> Result<Self, PgSchemaError> {
        let schema = gql_schema::build_schema(doc).map_err(PgSchemaError::Build)?;
        Self::from_schema(schema)
    }

    /// Convenience: parse SDL text straight into a `PgSchema`.
    pub fn parse(sdl: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let doc = gql_sdl::parse(sdl)?;
        Ok(Self::from_document(&doc)?)
    }

    /// Wraps an already-built schema (must be consistent).
    pub fn from_schema(schema: Schema) -> Result<Self, PgSchemaError> {
        let violations = consistency::check(&schema);
        if !violations.is_empty() {
            return Err(PgSchemaError::Inconsistent(violations));
        }
        let mut attributes = HashMap::new();
        let mut relationships = HashMap::new();
        let mut constraint_sites = Vec::new();
        let mut keys = Vec::new();

        let obj_and_iface: Vec<TypeId> = schema
            .object_types()
            .chain(schema.interface_types())
            .collect();
        for t in obj_and_iface {
            let mut attrs = Vec::new();
            let mut rels = Vec::new();
            for f in schema.fields(t) {
                match classify(&schema, f) {
                    FieldClass::Attribute => attrs.push(AttributeDef {
                        name: f.name.clone(),
                        ty: f.ty,
                        required: has(&f.directives, dir::REQUIRED),
                    }),
                    FieldClass::Relationship => {
                        let rel = RelationshipDef {
                            name: f.name.clone(),
                            ty: f.ty,
                            target_base: f.ty.base,
                            multi: f.ty.is_list(),
                            required: has(&f.directives, dir::REQUIRED),
                            distinct: has(&f.directives, dir::DISTINCT),
                            no_loops: has(&f.directives, dir::NO_LOOPS),
                            unique_for_target: has(&f.directives, dir::UNIQUE_FOR_TARGET),
                            required_for_target: has(&f.directives, dir::REQUIRED_FOR_TARGET),
                            edge_props: f
                                .args
                                .iter()
                                .filter(|a| a.scalar_based)
                                .map(|a| EdgePropDef {
                                    name: a.name.clone(),
                                    ty: a.ty,
                                    mandatory: a.ty.wrap.outer_non_null(),
                                })
                                .collect(),
                        };
                        if rel.distinct
                            || rel.no_loops
                            || rel.unique_for_target
                            || rel.required_for_target
                            || rel.required
                        {
                            constraint_sites.push(ConstraintSite {
                                site: t,
                                rel: rel.clone(),
                            });
                        }
                        rels.push(rel);
                    }
                }
            }
            attributes.insert(t, attrs);
            relationships.insert(t, rels);
            for d in schema.type_directives(t) {
                if d.name == dir::KEY {
                    if let Some(Value::List(items)) = d.arg("fields") {
                        let fields = items
                            .iter()
                            .filter_map(|v| v.as_str().map(str::to_owned))
                            .collect();
                        keys.push(KeyConstraint { site: t, fields });
                    }
                }
            }
        }
        Ok(PgSchema {
            schema,
            attributes,
            relationships,
            constraint_sites,
            keys,
        })
    }

    /// The underlying formal schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Attribute definitions of a type (empty for unknown/scalar types).
    pub fn attributes(&self, t: TypeId) -> &[AttributeDef] {
        self.attributes.get(&t).map_or(&[], Vec::as_slice)
    }

    /// Relationship definitions of a type.
    pub fn relationships(&self, t: TypeId) -> &[RelationshipDef] {
        self.relationships.get(&t).map_or(&[], Vec::as_slice)
    }

    /// All directive-bearing relationship sites.
    pub fn constraint_sites(&self) -> &[ConstraintSite] {
        &self.constraint_sites
    }

    /// All key constraints.
    pub fn keys(&self) -> &[KeyConstraint] {
        &self.keys
    }

    /// Resolves a node label to a type id.
    pub fn label_type(&self, label: &str) -> Option<TypeId> {
        self.schema.type_id(label)
    }

    /// True if `label ⊑S t` — the label names a type that is a subtype of
    /// `t` (Definition rules 1–3; labels are named types).
    pub fn label_subtype(&self, label: &str, t: TypeId) -> bool {
        self.label_type(label)
            .is_some_and(|l| subtype::named_subtype(&self.schema, l, t))
    }

    /// True if `label ⊑S ty` for a possibly wrapped `ty` (used by DS3/DS4
    /// where the field type may be `[B]` etc. — rule 5 lets a named type
    /// sit below a list type).
    pub fn label_subtype_wrapped(&self, label: &str, ty: &WrappedType) -> bool {
        self.label_type(label)
            .is_some_and(|l| subtype::wrapped_subtype(&self.schema, &WrappedType::bare(l), ty))
    }

    /// The attribute definition `(t, name)` if `label` is a type with that
    /// attribute field.
    pub fn attribute(&self, label: &str, name: &str) -> Option<&AttributeDef> {
        let t = self.label_type(label)?;
        self.attributes(t).iter().find(|a| a.name == name)
    }

    /// The relationship definition `(t, name)` if `label` is a type with
    /// that relationship field.
    pub fn relationship(&self, label: &str, name: &str) -> Option<&RelationshipDef> {
        let t = self.label_type(label)?;
        self.relationships(t).iter().find(|r| r.name == name)
    }

    /// True if `label` names an object type (SS1).
    pub fn is_object_label(&self, label: &str) -> bool {
        self.label_type(label)
            .is_some_and(|t| self.schema.is_object(t))
    }

    /// Renders a wrapped type for reports.
    pub fn display_type(&self, ty: &WrappedType) -> String {
        self.schema.display_type(ty)
    }
}

/// §3.1: attribute definitions have scalar/enum (possibly list-wrapped)
/// types; relationship definitions have object/interface/union types.
pub(crate) fn classify(schema: &Schema, f: &FieldInfo) -> FieldClass {
    if schema.is_scalar(f.ty.base) {
        FieldClass::Attribute
    } else {
        FieldClass::Relationship
    }
}

fn has(directives: &[AppliedDirective], name: &str) -> bool {
    directives.iter().any(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pg(src: &str) -> PgSchema {
        PgSchema::parse(src).unwrap()
    }

    #[test]
    fn example_3_2_classification() {
        let s = pg(r#"
            type UserSession {
                id: ID! @required
                user: User! @required
                startTime: Time! @required
                endTime: Time!
            }
            type User { id: ID! login: String! nicknames: [String!]! }
            scalar Time
            "#);
        let session = s.label_type("UserSession").unwrap();
        let attrs: Vec<_> = s
            .attributes(session)
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(attrs, vec!["id", "startTime", "endTime"]);
        let rels: Vec<_> = s
            .relationships(session)
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(rels, vec!["user"]);
        let user_rel = &s.relationships(session)[0];
        assert!(!user_rel.multi);
        assert!(user_rel.required);
        assert_eq!(s.schema().type_name(user_rel.target_base), "User");
    }

    #[test]
    fn example_3_6_cardinalities() {
        let s = pg(r#"
            type Author {
                favoriteBook: Book
                relatedAuthor: [Author]
            }
            type Book {
                title: String!
                author: [Author] @required
            }
            "#);
        let author = s.label_type("Author").unwrap();
        let fav = &s.relationships(author)[0];
        assert!(!fav.multi && !fav.required);
        let rel = &s.relationships(author)[1];
        assert!(rel.multi && !rel.required);
        let book = s.label_type("Book").unwrap();
        let a = &s.relationships(book)[0];
        assert!(a.multi && a.required);
    }

    #[test]
    fn directive_flags_are_read() {
        let s = pg(r#"
            type BookSeries { contains: [Book] @required @uniqueForTarget @distinct }
            type Book { title: String! }
            type Author { relatedAuthor: [Author] @distinct @noloops }
            type Publisher { published: [Book] @uniqueForTarget @requiredForTarget }
            "#);
        let series = s.label_type("BookSeries").unwrap();
        let c = &s.relationships(series)[0];
        assert!(c.required && c.unique_for_target && c.distinct);
        let author = s.label_type("Author").unwrap();
        let r = &s.relationships(author)[0];
        assert!(r.distinct && r.no_loops);
        let publisher = s.label_type("Publisher").unwrap();
        let p = &s.relationships(publisher)[0];
        assert!(p.unique_for_target && p.required_for_target && !p.required);
        assert_eq!(s.constraint_sites().len(), 3);
    }

    #[test]
    fn edge_properties_from_example_3_12() {
        let s = pg(r#"
            type UserSession {
                user(certainty: Float! comment: String): User! @required
            }
            type User { id: ID! }
            "#);
        let rel = s.relationship("UserSession", "user").unwrap();
        assert_eq!(rel.edge_props.len(), 2);
        assert!(rel.edge_props[0].mandatory); // certainty: Float!
        assert!(!rel.edge_props[1].mandatory); // comment: String
    }

    #[test]
    fn keys_from_example_3_4() {
        let s = pg(r#"type User @key(fields: ["id"]) @key(fields: ["login"]) {
                id: ID! @required
                login: String! @required
            }"#);
        assert_eq!(s.keys().len(), 2);
        assert_eq!(s.keys()[0].fields, vec!["id"]);
        assert_eq!(s.keys()[1].fields, vec!["login"]);
    }

    #[test]
    fn interface_sites_are_constraint_sites() {
        // Example 6.1, adjusted: the paper prints the interface field as
        // `hasOT1: OT1`, but then `[OT1] ⊑ OT1` would be required by
        // Definition 4.3 and is not derivable — the example as printed is
        // interface-inconsistent. Using `[OT1]` on the interface preserves
        // the intended satisfiability conflict (see pg-reason fixtures).
        let s = pg(r#"
            type OT1 { }
            interface IT { hasOT1: [OT1] @uniqueForTarget }
            type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
            type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
            "#);
        // Sites: IT (unique), OT2 (requiredForTarget), OT3 (requiredForTarget).
        assert_eq!(s.constraint_sites().len(), 3);
        let it = s.label_type("IT").unwrap();
        assert!(s.label_subtype("OT2", it));
        assert!(s.label_subtype("OT3", it));
        assert!(!s.label_subtype("OT1", it));
    }

    #[test]
    fn label_subtype_wrapped_handles_lists() {
        let s = pg(r#"
            type A { bs: [B] }
            type B { x: Int }
            "#);
        let a = s.label_type("A").unwrap();
        let rel = &s.relationships(a)[0];
        assert!(s.label_subtype_wrapped("B", &rel.ty));
        assert!(!s.label_subtype_wrapped("A", &rel.ty));
        assert!(!s.label_subtype_wrapped("Nope", &rel.ty));
    }

    #[test]
    fn inconsistent_schema_is_rejected() {
        let err =
            PgSchema::parse("interface I { f: Int } type T implements I { g: Int }").unwrap_err();
        assert!(err.to_string().contains("inconsistent"));
    }

    #[test]
    fn union_typed_fields_are_relationships() {
        let s = pg(r#"
            type Person { favoriteFood: Food name: String! }
            union Food = Pizza | Pasta
            type Pizza { name: String! }
            type Pasta { name: String! }
            "#);
        let rel = s.relationship("Person", "favoriteFood").unwrap();
        assert_eq!(s.schema().type_name(rel.target_base), "Food");
        assert!(s.label_subtype_wrapped("Pizza", &rel.ty));
        assert!(s.label_subtype_wrapped("Pasta", &rel.ty));
        assert!(!s.label_subtype_wrapped("Person", &rel.ty));
    }

    #[test]
    fn is_object_label() {
        let s = pg("type A { x: Int } interface I { x: Int } union U = A");
        assert!(s.is_object_label("A"));
        assert!(!s.is_object_label("I"));
        assert!(!s.is_object_label("U"));
        assert!(!s.is_object_label("Int"));
        assert!(!s.is_object_label("Ghost"));
    }
}
