//! Parse errors with source locations.

use std::fmt;

use crate::token::Pos;

/// What went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A character outside the GraphQL source character set / an unknown
    /// punctuator.
    UnexpectedCharacter(char),
    /// A string literal ran to end-of-line or end-of-input.
    UnterminatedString,
    /// An invalid `\\`-escape or `\\u` sequence inside a string.
    BadEscape(String),
    /// A malformed numeric literal (e.g. `01`, `1.`, `1e`).
    BadNumber(String),
    /// The parser expected one construct and found another.
    Unexpected {
        /// What was expected, e.g. "`{`" or "a type definition".
        expected: String,
        /// What was found (token description).
        found: String,
    },
    /// Something valid only in executable documents (e.g. a fragment).
    UnsupportedConstruct(String),
}

/// A lexing or parsing failure, with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// The failure class.
    pub kind: ParseErrorKind,
    /// Where in the source it happened.
    pub pos: Pos,
}

impl ParseError {
    pub(crate) fn new(kind: ParseErrorKind, pos: Pos) -> Self {
        ParseError { kind, pos }
    }
}

impl ParseError {
    /// Renders the error with a source snippet and caret, e.g.
    ///
    /// ```text
    /// error: expected a name, found `:`
    ///   --> 2:12
    ///    |
    ///  2 |     field : : Int
    ///    |            ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let line_no = self.pos.line as usize;
        let line = source.lines().nth(line_no.saturating_sub(1)).unwrap_or("");
        let gutter = line_no.to_string().len().max(2);
        let caret_pad = " ".repeat(self.pos.column.saturating_sub(1) as usize);
        format!(
            "error: {self}\n{pad}--> {}:{}\n{pad} |\n{line_no:>gutter$} | {line}\n{pad} | {caret_pad}^\n",
            self.pos.line,
            self.pos.column,
            pad = " ".repeat(gutter),
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.pos)?;
        match &self.kind {
            ParseErrorKind::UnexpectedCharacter(c) => {
                write!(f, "unexpected character {c:?}")
            }
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            ParseErrorKind::BadEscape(s) => write!(f, "invalid escape sequence `{s}`"),
            ParseErrorKind::BadNumber(s) => write!(f, "malformed number `{s}`"),
            ParseErrorKind::Unexpected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::UnsupportedConstruct(what) => {
                write!(f, "{what} is not supported in schema documents")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use crate::parse;

    #[test]
    fn render_points_at_the_offending_column() {
        let src = "type T {\n    field : : Int\n}";
        let err = parse(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.starts_with("error: "), "{rendered}");
        assert!(rendered.contains("--> 2:"), "{rendered}");
        assert!(rendered.contains("field : : Int"), "{rendered}");
        // The caret line ends at the error column.
        let caret_line = rendered.lines().last().unwrap();
        assert!(caret_line.trim_end().ends_with('^'), "{rendered}");
    }

    #[test]
    fn render_survives_out_of_range_positions() {
        let err = parse("type").unwrap_err(); // EOF error past the last char
        let rendered = err.render("type");
        assert!(rendered.contains("error: "));
    }
}
