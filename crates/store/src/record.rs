//! WAL record model and frame codec.
//!
//! Every record is framed as
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [seq: u64 LE][kind: u8][body…]
//! ```
//!
//! The CRC covers the whole payload (sequence number included), so a
//! bit-flip anywhere in a record — header or body — fails verification.
//! Frames are self-delimiting; a reader walks a segment frame by frame
//! and stops at the first one that is torn (runs past the end of the
//! file) or corrupt (CRC or structural decode failure). Everything
//! before that point is trusted; everything from it on is discarded —
//! the classic prefix-durability contract of a write-ahead log.

use pgraph::{binary, GraphDelta, PropertyGraph};

use crate::crc32::crc32;
pub(crate) use crate::wire::FRAME_HEADER_BYTES as FRAME_HEADER;
use crate::wire::{
    KIND_CREATE, KIND_DELETE, KIND_DELTA, KIND_SCHEMA, MAX_PAYLOAD_BYTES as MAX_PAYLOAD,
    MIN_PAYLOAD_BYTES,
};

/// The phase a [`StoreRecord::SchemaChange`] logs, encoded as one byte
/// in the record body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// A dual-schema migration window opened; the record carries the
    /// candidate schema's SDL.
    Begin = 1,
    /// The window closed clean: the candidate schema is now the
    /// session's schema.
    Commit = 2,
    /// The window was abandoned; the session keeps its old schema.
    Abort = 3,
}

impl MigrationPhase {
    fn from_byte(b: u8) -> Option<MigrationPhase> {
        match b {
            1 => Some(MigrationPhase::Begin),
            2 => Some(MigrationPhase::Commit),
            3 => Some(MigrationPhase::Abort),
            _ => None,
        }
    }
}

/// One durable event in a session's life.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreRecord {
    /// A session was created from a schema and an initial graph.
    Create {
        /// The session id.
        session: u64,
        /// The schema's SDL source text (re-parsed on recovery).
        schema_sdl: String,
        /// The initial graph.
        graph: PropertyGraph,
    },
    /// A delta was applied to a session (logged even when application
    /// failed mid-delta: `GraphDelta::apply_to` keeps the effects of the
    /// ops preceding the failure, and replay reproduces that partial
    /// state deterministically).
    Delta {
        /// The session id.
        session: u64,
        /// The mutation log.
        delta: GraphDelta,
    },
    /// A session was deleted (explicitly or by LRU eviction).
    Delete {
        /// The session id.
        session: u64,
    },
    /// A schema-migration phase transition on a session: a dual-schema
    /// window opened (carrying the candidate schema's SDL, produced by
    /// the `sdl` printer), committed, or aborted. Logged so an open
    /// window survives crashes and ships to followers.
    SchemaChange {
        /// The session id.
        session: u64,
        /// Which transition this record logs.
        phase: MigrationPhase,
        /// The candidate schema's SDL for [`MigrationPhase::Begin`];
        /// empty for commit/abort (recovery resolves the pending SDL).
        schema_sdl: String,
    },
}

/// Encodes one framed record ready to append to a segment.
pub(crate) fn encode_frame(seq: u64, record: &StoreRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.extend_from_slice(&seq.to_le_bytes());
    match record {
        StoreRecord::Create {
            session,
            schema_sdl,
            graph,
        } => {
            payload.push(KIND_CREATE);
            payload.extend_from_slice(&session.to_le_bytes());
            payload.extend_from_slice(&(schema_sdl.len() as u32).to_le_bytes());
            payload.extend_from_slice(schema_sdl.as_bytes());
            payload.extend_from_slice(&binary::graph_to_bytes(graph));
        }
        StoreRecord::Delta { session, delta } => {
            payload.push(KIND_DELTA);
            payload.extend_from_slice(&session.to_le_bytes());
            payload.extend_from_slice(&binary::delta_to_bytes(delta));
        }
        StoreRecord::Delete { session } => {
            payload.push(KIND_DELETE);
            payload.extend_from_slice(&session.to_le_bytes());
        }
        StoreRecord::SchemaChange {
            session,
            phase,
            schema_sdl,
        } => {
            payload.push(KIND_SCHEMA);
            payload.extend_from_slice(&session.to_le_bytes());
            payload.push(*phase as u8);
            payload.extend_from_slice(&(schema_sdl.len() as u32).to_le_bytes());
            payload.extend_from_slice(schema_sdl.as_bytes());
        }
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// A record parsed out of a segment, with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ParsedRecord {
    /// The record's monotonic sequence number.
    pub seq: u64,
    /// The decoded record.
    pub record: StoreRecord,
    /// Byte offset of the frame within its segment.
    pub offset: u64,
}

/// A CRC-valid frame whose `kind` byte this implementation does not
/// know — written by a newer implementation, not corruption. Readers
/// must surface this as an explicit error instead of truncating the
/// tail at a frame that is perfectly intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct UnknownKind {
    /// The unrecognised `kind` byte.
    pub kind: u8,
    /// The frame's sequence number.
    pub seq: u64,
    /// Byte offset of the frame within its segment.
    pub offset: u64,
}

impl UnknownKind {
    /// The canonical reader-facing error for this condition.
    pub fn to_error(&self) -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            format!(
                "unknown record kind {} (newer writer?) at seq {}, offset {}",
                self.kind, self.seq, self.offset
            ),
        )
    }
}

/// The result of walking one segment's frames.
#[derive(Debug)]
pub(crate) struct SegmentParse {
    /// Records up to (exclusive) the first invalid frame.
    pub records: Vec<ParsedRecord>,
    /// Bytes consumed by valid frames; equals the buffer length when the
    /// segment is clean.
    pub valid_len: u64,
    /// Why parsing stopped early at a torn or *corrupt* frame, if it
    /// did. Mutually exclusive with `unknown`.
    pub torn: Option<String>,
    /// Set when parsing stopped at a CRC-valid frame of an unknown kind
    /// (forward compatibility: a newer writer, not damage).
    pub unknown: Option<UnknownKind>,
}

/// Walks `buf` frame by frame, stopping at the first torn or corrupt
/// frame (`torn`) or at the first valid frame of an unrecognised kind
/// (`unknown`). Never fails: the stop reason terminates the parse, it
/// does not error it — callers decide (truncate damage, refuse unknown
/// kinds).
pub(crate) fn parse_segment(buf: &[u8]) -> SegmentParse {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut unknown = None;
    let torn = loop {
        if pos == buf.len() {
            break None;
        }
        if buf.len() - pos < FRAME_HEADER {
            break Some(format!("partial frame header at offset {pos}"));
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if !(MIN_PAYLOAD_BYTES..=MAX_PAYLOAD).contains(&len) {
            break Some(format!("implausible payload length {len} at offset {pos}"));
        }
        if buf.len() - pos - FRAME_HEADER < len {
            break Some(format!("torn payload at offset {pos}"));
        }
        let payload = &buf[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            break Some(format!("CRC mismatch at offset {pos}"));
        }
        match decode_payload(payload) {
            Decoded::Record(seq, record) => records.push(ParsedRecord {
                seq,
                record,
                offset: pos as u64,
            }),
            Decoded::UnknownKind { kind, seq } => {
                unknown = Some(UnknownKind {
                    kind,
                    seq,
                    offset: pos as u64,
                });
                break None;
            }
            Decoded::Corrupt => break Some(format!("undecodable record body at offset {pos}")),
        }
        pos += FRAME_HEADER + len;
    };
    SegmentParse {
        records,
        valid_len: pos as u64,
        torn,
        unknown,
    }
}

enum Decoded {
    Record(u64, StoreRecord),
    UnknownKind { kind: u8, seq: u64 },
    Corrupt,
}

fn decode_payload(payload: &[u8]) -> Decoded {
    match try_decode_payload(payload) {
        Some(decoded) => decoded,
        None => Decoded::Corrupt,
    }
}

fn try_decode_payload(payload: &[u8]) -> Option<Decoded> {
    let seq = u64::from_le_bytes(payload.get(..8)?.try_into().unwrap());
    let kind = *payload.get(8)?;
    let body = &payload[9..];
    if !matches!(kind, KIND_CREATE | KIND_DELTA | KIND_DELETE | KIND_SCHEMA) {
        return Some(Decoded::UnknownKind { kind, seq });
    }
    let session = u64::from_le_bytes(body.get(..8)?.try_into().unwrap());
    let rest = &body[8..];
    let record = match kind {
        KIND_CREATE => {
            let sdl_len = u32::from_le_bytes(rest.get(..4)?.try_into().unwrap()) as usize;
            let sdl_bytes = rest.get(4..4 + sdl_len)?;
            let schema_sdl = std::str::from_utf8(sdl_bytes).ok()?.to_owned();
            let graph = binary::graph_from_bytes(&rest[4 + sdl_len..]).ok()?;
            StoreRecord::Create {
                session,
                schema_sdl,
                graph,
            }
        }
        KIND_DELTA => StoreRecord::Delta {
            session,
            delta: binary::delta_from_bytes(rest).ok()?,
        },
        KIND_DELETE => {
            if !rest.is_empty() {
                return None;
            }
            StoreRecord::Delete { session }
        }
        KIND_SCHEMA => {
            let phase = MigrationPhase::from_byte(*rest.first()?)?;
            let sdl_len = u32::from_le_bytes(rest.get(1..5)?.try_into().unwrap()) as usize;
            let sdl_bytes = rest.get(5..)?;
            if sdl_bytes.len() != sdl_len {
                return None;
            }
            StoreRecord::SchemaChange {
                session,
                phase,
                schema_sdl: std::str::from_utf8(sdl_bytes).ok()?.to_owned(),
            }
        }
        _ => unreachable!("kind checked above"),
    };
    Some(Decoded::Record(seq, record))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::Value;

    fn sample_records() -> Vec<StoreRecord> {
        let mut graph = PropertyGraph::new();
        let u = graph.add_node("User");
        graph.set_node_property(u, "login", Value::from("alice"));
        vec![
            StoreRecord::Create {
                session: 1,
                schema_sdl: "type User { login: String! }".to_owned(),
                graph,
            },
            StoreRecord::Delta {
                session: 1,
                delta: GraphDelta::new().set_node_property(
                    pgraph::NodeId::from_index(0),
                    "login",
                    Value::Int(3),
                ),
            },
            StoreRecord::SchemaChange {
                session: 1,
                phase: MigrationPhase::Begin,
                schema_sdl: "type User { login: String! handle: String }".to_owned(),
            },
            StoreRecord::SchemaChange {
                session: 1,
                phase: MigrationPhase::Commit,
                schema_sdl: String::new(),
            },
            StoreRecord::Delete { session: 1 },
        ]
    }

    fn encode_all(records: &[StoreRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        for (ix, record) in records.iter().enumerate() {
            buf.extend_from_slice(&encode_frame(ix as u64 + 1, record));
        }
        buf
    }

    #[test]
    fn frames_round_trip() {
        let records = sample_records();
        let buf = encode_all(&records);
        let parse = parse_segment(&buf);
        assert!(parse.torn.is_none());
        assert_eq!(parse.valid_len, buf.len() as u64);
        assert_eq!(parse.records.len(), records.len());
        for (ix, parsed) in parse.records.iter().enumerate() {
            assert_eq!(parsed.seq, ix as u64 + 1);
            assert_eq!(parsed.record, records[ix]);
        }
    }

    #[test]
    fn every_truncation_point_recovers_the_longest_valid_prefix() {
        let records = sample_records();
        let buf = encode_all(&records);
        // Frame boundaries: prefix sums of the individual frame lengths.
        let mut boundaries = vec![0usize];
        for (ix, record) in records.iter().enumerate() {
            boundaries.push(boundaries[ix] + encode_frame(ix as u64 + 1, record).len());
        }
        for cut in 0..buf.len() {
            let parse = parse_segment(&buf[..cut]);
            let expected = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(parse.records.len(), expected, "cut at {cut}");
            assert_eq!(parse.valid_len, boundaries[expected] as u64);
            if cut != boundaries[expected] {
                assert!(parse.torn.is_some());
            }
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let records = sample_records();
        let clean = encode_all(&records);
        for byte in 0..clean.len() {
            let mut buf = clean.clone();
            buf[byte] ^= 0x40;
            let parse = parse_segment(&buf);
            // The flip must not go unnoticed: either the parse stops
            // early, or — when the flip hits a length field and happens
            // to still frame correctly — the CRC of the reshaped payload
            // fails. In all cases no *wrong* record may be accepted.
            for parsed in &parse.records {
                let expected = &records[parsed.seq as usize - 1];
                assert_eq!(&parsed.record, expected, "flip at byte {byte}");
            }
            assert!(
                parse.torn.is_some() || parse.records.len() < records.len(),
                "flip at byte {byte} was silently accepted"
            );
        }
    }

    /// Frames a raw payload the way `encode_frame` would.
    fn frame_raw(payload: &[u8]) -> Vec<u8> {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        frame
    }

    #[test]
    fn unknown_kind_is_not_misclassified_as_corruption() {
        let records = sample_records();
        let mut buf = encode_all(&records);
        let prefix_len = buf.len() as u64;
        // A CRC-valid frame with kind 5 — written by a newer
        // implementation this code does not know about.
        let mut payload = Vec::new();
        payload.extend_from_slice(&(records.len() as u64 + 1).to_le_bytes());
        payload.push(5);
        payload.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&frame_raw(&payload));

        let parse = parse_segment(&buf);
        assert_eq!(parse.records.len(), records.len(), "valid prefix kept");
        assert_eq!(parse.valid_len, prefix_len, "stops before the frame");
        assert!(parse.torn.is_none(), "not reported as damage");
        let unknown = parse.unknown.expect("unknown kind reported");
        assert_eq!(unknown.kind, 5);
        assert_eq!(unknown.seq, records.len() as u64 + 1);
        assert_eq!(unknown.offset, prefix_len);
        let msg = unknown.to_error().to_string();
        assert!(
            msg.contains("unknown record kind 5 (newer writer?)"),
            "{msg}"
        );
    }

    #[test]
    fn schema_change_bad_phase_is_corruption() {
        // Phase 0 is structurally invalid for a known kind — corruption,
        // not forward compatibility.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(KIND_SCHEMA);
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(0);
        payload.extend_from_slice(&0u32.to_le_bytes());
        let parse = parse_segment(&frame_raw(&payload));
        assert!(parse.records.is_empty());
        assert!(parse.unknown.is_none());
        assert!(parse.torn.unwrap().contains("undecodable record body"));
    }
}
