//! E8: the appendix's Figure 1 (the Star-Wars schema) parses, builds,
//! prints, and round-trips; root operation types are representable but
//! ignored by the Property-Graph semantics (§3.6).

use gql_sdl::{parse, print_document};

const FIGURE_1: &str = r#"
type Starship {
    id: ID!
    name: String
    length(unit: LenUnit = METER): Float
}

enum LenUnit { METER FEET }

interface Character {
    id: ID!
    name: String
    friends: [Character]
}

type Human implements Character {
    id: ID!
    name: String
    friends: [Character]
    starships: [Starship]
}

type Droid implements Character {
    id: ID!
    name: String
    friends: [Character]
    primaryFunction: String!
}

type Query {
    hero(episode: Episode): Character
    search(text: String): [SearchResult]
}

enum Episode { NEWHOPE EMPIRE JEDI }

union SearchResult = Human | Droid | Starship

schema {
    query: Query
}
"#;

#[test]
fn figure_1_parses_completely() {
    let doc = parse(FIGURE_1).unwrap();
    assert_eq!(doc.definitions.len(), 9);
    assert_eq!(doc.object_types().count(), 4);
    assert_eq!(doc.interface_types().count(), 1);
    assert_eq!(doc.union_types().count(), 1);
}

#[test]
fn figure_1_roundtrips_through_the_printer() {
    let doc = parse(FIGURE_1).unwrap();
    let printed = print_document(&doc);
    let reparsed = parse(&printed).unwrap();
    assert_eq!(print_document(&reparsed), printed, "printer not canonical");
    assert_eq!(reparsed.definitions.len(), doc.definitions.len());
}

#[test]
fn figure_1_builds_as_pg_schema_with_warnings_only() {
    let doc = parse(FIGURE_1).unwrap();
    let (schema, diags) = gql_schema::build_schema_with_diagnostics(&doc);
    let schema = schema.expect("figure 1 builds");
    // The schema block is ignored with a warning; everything else is a
    // regular type. Query is just an object type (harmless).
    assert!(diags
        .iter()
        .all(|d| d.severity == gql_schema::Severity::Warning));
    assert!(schema.type_id("Character").is_some());
    let violations = gql_schema::consistency::check(&schema);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn figure_1_classification() {
    let doc = parse(FIGURE_1).unwrap();
    let schema = pg_schema::PgSchema::from_document(&doc).unwrap();
    let human = schema.label_type("Human").unwrap();
    // id/name attributes; friends/starships relationships.
    assert_eq!(schema.attributes(human).len(), 2);
    assert_eq!(schema.relationships(human).len(), 2);
    // length(unit: …) is an attribute-with-argument: argument ignored.
    let starship = schema.label_type("Starship").unwrap();
    assert_eq!(schema.attributes(starship).len(), 3);
    // Enum LenUnit folded into scalars.
    assert!(schema
        .schema()
        .is_scalar(schema.label_type("LenUnit").unwrap()));
}

#[test]
fn figure_1_union_and_interface_subtyping() {
    let doc = parse(FIGURE_1).unwrap();
    let schema = pg_schema::PgSchema::from_document(&doc).unwrap();
    let sr = schema.label_type("SearchResult").unwrap();
    let character = schema.label_type("Character").unwrap();
    for member in ["Human", "Droid", "Starship"] {
        assert!(schema.label_subtype(member, sr), "{member} ⋢ SearchResult");
    }
    assert!(schema.label_subtype("Human", character));
    assert!(schema.label_subtype("Droid", character));
    assert!(!schema.label_subtype("Starship", character));
}
