//! The naive validation engine.
//!
//! A direct transcription of the first-order formulas of Definitions
//! 5.1–5.3 — the paper's observation after Theorem 1 that "a
//! straightforward implementation of the first-order logical formulas
//! leads already to a tractable algorithm with time complexity O(n³)".
//! Every quantifier becomes a loop over `V` or `E`; no indexes are built.
//! This engine is the reference against which the indexed engine is
//! property-tested, and the baseline of benchmark E2.

use pgraph::{PropertyGraph, Value};

use crate::metrics::MetricsRecorder;
use crate::pgschema::PgSchema;
use crate::report::{RuleFamily, ValidationReport, Violation};
use crate::ValidationOptions;

pub(crate) fn run(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
) -> ValidationReport {
    let mut r = ValidationReport::with_limit(options.max_violations);
    let mut rec = MetricsRecorder::new(options.collect_metrics, "naive", 1);
    let (nv, ne) = (g.node_count() as u64, g.edge_count() as u64);
    if options.weak {
        rec.family(RuleFamily::Weak, &mut r, |r| {
            ws1(g, s, r);
            ws2(g, s, r);
            ws3(g, s, r);
            ws4(g, s, r);
        });
        // Outer-loop passes: two over V (WS1, WS4), two over E (WS2, WS3).
        rec.scanned(2 * nv, 2 * ne);
    }
    if options.directives && !r.at_limit() {
        rec.family(RuleFamily::Directives, &mut r, |r| {
            ds1_ds2_ds3(g, s, r);
            ds4(g, s, r);
            ds5_ds6(g, s, r);
            ds7(g, s, r);
        });
        rec.scanned(3 * nv, ne);
    }
    if options.strong && !r.at_limit() {
        rec.family(RuleFamily::Strong, &mut r, |r| ss(g, s, r));
        rec.scanned(nv, ne);
    }
    rec.finish(&mut r);
    r
}

/// WS1: ∀(v,f) ∈ dom(σ): f ∈ fieldsS(λ(v)) ∧ typeF(λ(v),f) ∈ S∪WS
///      ⟹ σ(v,f) ∈ valuesW(typeF(λ(v),f)).
fn ws1(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    for n in g.nodes() {
        if r.at_limit() {
            return;
        }
        for (prop, value) in n.properties() {
            if let Some(attr) = s.attribute(n.label(), prop) {
                if !s.schema().value_conforms(value, &attr.ty) {
                    r.push(Violation::NodePropertyType {
                        node: n.id,
                        field: prop.to_owned(),
                        value: value.to_string(),
                        expected: s.display_type(&attr.ty),
                    });
                }
            }
        }
    }
}

/// WS2: ∀(e,a) ∈ dom(σ) with ρ(e)=(v1,v2), f=(λ(v1),λ(e)), a ∈ argsS(f)
///      ⟹ σ(e,a) ∈ valuesW(typeAF(f,a)).
fn ws2(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    for e in g.edges() {
        if r.at_limit() {
            return;
        }
        let Some(src_label) = g.node_label(e.source()) else {
            continue;
        };
        let Some(rel) = s.relationship(src_label, e.label()) else {
            continue;
        };
        for (prop, value) in e.properties() {
            if let Some(ep) = rel.edge_props.iter().find(|p| p.name == prop) {
                if !s.schema().value_conforms(value, &ep.ty) {
                    r.push(Violation::EdgePropertyType {
                        edge: e.id,
                        prop: prop.to_owned(),
                        value: value.to_string(),
                        expected: s.display_type(&ep.ty),
                    });
                }
            }
        }
    }
}

/// WS3: ∀e ∈ E with ρ(e)=(v1,v2), f=(λ(v1),λ(e)) ∈ dom(typeF)
///      ⟹ λ(v2) ⊑S basetype(typeF(f)).
///
/// Note this quantifies over *all* field definitions, including attribute
/// definitions — an edge labelled like a scalar field can never satisfy
/// the subtype condition and is reported here (and again by SS4).
fn ws3(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    for e in g.edges() {
        if r.at_limit() {
            return;
        }
        let Some(src_label) = g.node_label(e.source()) else {
            continue;
        };
        let Some(src_ty) = s.label_type(src_label) else {
            continue;
        };
        let Some(field) = s.schema().field(src_ty, e.label()) else {
            continue;
        };
        let target_label = g.node_label(e.target()).unwrap_or("");
        if !s.label_subtype(target_label, field.ty.base) {
            r.push(Violation::EdgeTargetType {
                edge: e.id,
                target: e.target(),
                target_label: target_label.to_owned(),
                expected: s.schema().type_name(field.ty.base).to_owned(),
            });
        }
    }
}

/// WS4: ∀e1,e2 sharing source and label with a non-list field type
///      ⟹ e1 = e2. Transcribed as: for every node and declared non-list
///      field, count the outgoing edges with that label.
fn ws4(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    for n in g.nodes() {
        if r.at_limit() {
            return;
        }
        let Some(t) = s.label_type(n.label()) else {
            continue;
        };
        for f in s.schema().fields(t) {
            if f.ty.is_list() {
                continue;
            }
            let count = g.out_edges(n.id).filter(|e| e.label() == f.name).count();
            if count > 1 {
                r.push(Violation::NonListFieldMultiEdge {
                    source: n.id,
                    field: f.name.clone(),
                    count,
                });
            }
        }
    }
}

/// DS1 (@distinct), DS2 (@noLoops), DS3 (@uniqueForTarget) — the edge-pair
/// rules, transcribed with nested loops over E × E (DS1, DS3) and E (DS2).
///
/// DS3 in the paper literally reads "λ(v2) ⊑S typeS(t, f)" for the source
/// of the second edge; following Example 6.1's own reasoning ("at most one
/// incoming edge *from a node of type IT*") we read it as λ(v2) ⊑S t, the
/// evident intent.
fn ds1_ds2_ds3(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    for site in s.constraint_sites() {
        if r.at_limit() {
            return;
        }
        let rel = &site.rel;
        if rel.distinct {
            for e1 in g.edges() {
                if r.at_limit() {
                    return;
                }
                if e1.label() != rel.name
                    || !s.label_subtype(g.node_label(e1.source()).unwrap_or(""), site.site)
                {
                    continue;
                }
                let count = g
                    .edges()
                    .filter(|e2| {
                        e2.label() == rel.name
                            && e2.source() == e1.source()
                            && e2.target() == e1.target()
                    })
                    .count();
                if count > 1 {
                    r.push(Violation::DistinctViolated {
                        source: e1.source(),
                        target: e1.target(),
                        field: rel.name.clone(),
                        count,
                    });
                }
            }
        }
        if rel.no_loops {
            for e in g.edges() {
                if e.label() == rel.name
                    && e.source() == e.target()
                    && s.label_subtype(g.node_label(e.source()).unwrap_or(""), site.site)
                {
                    r.push(Violation::LoopViolated {
                        node: e.source(),
                        field: rel.name.clone(),
                    });
                }
            }
        }
        if rel.unique_for_target {
            for e1 in g.edges() {
                if r.at_limit() {
                    return;
                }
                if e1.label() != rel.name
                    || !s.label_subtype(g.node_label(e1.source()).unwrap_or(""), site.site)
                {
                    continue;
                }
                let count = g
                    .edges()
                    .filter(|e2| {
                        e2.label() == rel.name
                            && e2.target() == e1.target()
                            && s.label_subtype(g.node_label(e2.source()).unwrap_or(""), site.site)
                    })
                    .count();
                if count > 1 {
                    r.push(Violation::UniqueForTargetViolated {
                        target: e1.target(),
                        field: rel.name.clone(),
                        count,
                    });
                }
            }
        }
    }
}

/// DS4 (@requiredForTarget): ∀v2 with λ(v2) ⊑S typeS(t,f):
///      ∃e = (v1,v2) with λ(v1) ⊑S t ∧ λ(e) = f.
fn ds4(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    for site in s.constraint_sites() {
        let rel = &site.rel;
        if !rel.required_for_target {
            continue;
        }
        for n in g.nodes() {
            if r.at_limit() {
                return;
            }
            if !s.label_subtype_wrapped(n.label(), &rel.ty) {
                continue;
            }
            let has_incoming = g.in_edges(n.id).any(|e| {
                e.label() == rel.name
                    && s.label_subtype(g.node_label(e.source()).unwrap_or(""), site.site)
            });
            if !has_incoming {
                r.push(Violation::RequiredForTargetViolated {
                    target: n.id,
                    field: rel.name.clone(),
                    site: s.schema().type_name(site.site).to_owned(),
                });
            }
        }
    }
}

/// DS5 (@required on attributes) and DS6 (@required on relationships):
/// ∀v with λ(v) ⊑S t: the property exists (and is a nonempty list where
/// list-typed) / an outgoing edge with the field's label exists.
fn ds5_ds6(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    // Attribute sites: @required attribute fields of every type (incl.
    // interfaces, whose constraints reach implementing nodes via ⊑).
    for t in s
        .schema()
        .object_types()
        .chain(s.schema().interface_types())
        .collect::<Vec<_>>()
    {
        for attr in s.attributes(t) {
            if !attr.required {
                continue;
            }
            for n in g.nodes() {
                if r.at_limit() {
                    return;
                }
                if !s.label_subtype(n.label(), t) {
                    continue;
                }
                match n.property(&attr.name) {
                    None => r.push(Violation::RequiredPropertyMissing {
                        node: n.id,
                        field: attr.name.clone(),
                        empty_list: false,
                    }),
                    Some(Value::List(items)) if attr.ty.is_list() && items.is_empty() => {
                        r.push(Violation::RequiredPropertyMissing {
                            node: n.id,
                            field: attr.name.clone(),
                            empty_list: true,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }
    for site in s.constraint_sites() {
        let rel = &site.rel;
        if !rel.required {
            continue;
        }
        for n in g.nodes() {
            if r.at_limit() {
                return;
            }
            if !s.label_subtype(n.label(), site.site) {
                continue;
            }
            if !g.out_edges(n.id).any(|e| e.label() == rel.name) {
                r.push(Violation::RequiredEdgeMissing {
                    node: n.id,
                    field: rel.name.clone(),
                });
            }
        }
    }
}

/// DS7 (@key): two distinct nodes below the keyed type must differ on at
/// least one scalar key field (where "agree" includes both lacking it).
fn ds7(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    for key in s.keys() {
        // Only scalar key fields participate (condition typeS(t, fi) ∈ S∪WS).
        let scalar_fields: Vec<&str> = key
            .fields
            .iter()
            .filter(|f| {
                s.schema()
                    .field(key.site, f)
                    .is_some_and(|fi| s.schema().is_scalar(fi.ty.base))
            })
            .map(String::as_str)
            .collect();
        let nodes: Vec<_> = g
            .nodes()
            .filter(|n| s.label_subtype(n.label(), key.site))
            .collect();
        for (i, a) in nodes.iter().enumerate() {
            if r.at_limit() {
                return;
            }
            for b in nodes.iter().skip(i + 1) {
                let agree = scalar_fields
                    .iter()
                    .all(|f| match (a.property(f), b.property(f)) {
                        (None, None) => true,
                        (Some(x), Some(y)) => x == y,
                        _ => false,
                    });
                if agree {
                    r.push(Violation::KeyViolated {
                        a: a.id,
                        b: b.id,
                        ty: s.schema().type_name(key.site).to_owned(),
                        fields: key.fields.clone(),
                    });
                }
            }
        }
    }
}

/// SS1–SS4: justification of nodes, node properties, edge properties and
/// edges.
fn ss(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    for n in g.nodes() {
        if r.at_limit() {
            return;
        }
        // SS1: λ(v) ∈ OT.
        if !s.is_object_label(n.label()) {
            r.push(Violation::UnjustifiedNode {
                node: n.id,
                label: n.label().to_owned(),
            });
        }
        // SS2: every property is backed by an attribute definition.
        for (prop, _) in n.properties() {
            if s.attribute(n.label(), prop).is_none() {
                r.push(Violation::UnjustifiedNodeProperty {
                    node: n.id,
                    prop: prop.to_owned(),
                });
            }
        }
    }
    for e in g.edges() {
        if r.at_limit() {
            return;
        }
        let src_label = g.node_label(e.source()).unwrap_or("");
        let rel = s.relationship(src_label, e.label());
        // SS4: the edge label must be a relationship field of the source's
        // type.
        if rel.is_none() {
            r.push(Violation::UnjustifiedEdge {
                edge: e.id,
                label: e.label().to_owned(),
                source_label: src_label.to_owned(),
            });
        }
        // SS3: every edge property is backed by a scalar-based argument.
        for (prop, _) in e.properties() {
            let justified = rel.is_some_and(|rd| rd.edge_props.iter().any(|p| p.name == prop));
            if !justified {
                r.push(Violation::UnjustifiedEdgeProperty {
                    edge: e.id,
                    prop: prop.to_owned(),
                });
            }
        }
    }
}
