//! A CDCL solver: two-watched-literal propagation, first-UIP conflict
//! analysis with clause learning and non-chronological backjumping,
//! VSIDS-style activity ordering with phase saving, and geometric
//! restarts.
//!
//! This is the production solver behind the bounded finite-model search;
//! the plain DPLL solver remains as the cross-checking baseline (the
//! solver-ablation experiment in EXPERIMENTS.md compares them).

use crate::cnf::{Cnf, Lit};

/// Statistics of one CDCL run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdclStats {
    /// Branching decisions.
    pub decisions: u64,
    /// Literals assigned by unit propagation.
    pub propagations: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// Decides satisfiability with CDCL; returns a model if satisfiable.
pub fn solve_cdcl(cnf: &Cnf) -> Option<Vec<bool>> {
    solve_cdcl_with_stats(cnf).0
}

/// Like [`solve_cdcl`], also returning statistics.
pub fn solve_cdcl_with_stats(cnf: &Cnf) -> (Option<Vec<bool>>, CdclStats) {
    let mut solver = Solver::new(cnf);
    match solver.preprocess(cnf) {
        Preprocess::Unsat => return (None, solver.stats),
        Preprocess::Ready => {}
    }
    let sat = solver.run();
    if sat {
        let model = solver
            .assign
            .iter()
            .map(|a| a.unwrap_or(false))
            .collect::<Vec<bool>>();
        debug_assert!(cnf.eval(&model));
        (Some(model), solver.stats)
    } else {
        (None, solver.stats)
    }
}

/// Literal index into watch lists: `var * 2 + sign`.
fn lit_ix(l: Lit) -> usize {
    l.var() * 2 + usize::from(l.is_neg())
}

enum Preprocess {
    Ready,
    Unsat,
}

struct Clause {
    lits: Vec<Lit>,
    /// Learned clauses may be garbage in future extensions; kept simple.
    #[allow(dead_code)]
    learned: bool,
}

struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit_ix] = clause indexes watching that literal.
    watches: Vec<Vec<usize>>,
    assign: Vec<Option<bool>>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Reason clause per variable (None for decisions).
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    /// trail indices where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    activity: Vec<f64>,
    act_inc: f64,
    /// Saved phase per variable.
    phase: Vec<bool>,
    stats: CdclStats,
    conflicts_until_restart: u64,
    restart_interval: u64,
}

impl Solver {
    fn new(cnf: &Cnf) -> Self {
        let n = cnf.num_vars();
        Solver {
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); n * 2],
            assign: vec![None; n],
            level: vec![0; n],
            reason: vec![None; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            act_inc: 1.0,
            phase: vec![false; n],
            stats: CdclStats::default(),
            conflicts_until_restart: 100,
            restart_interval: 100,
        }
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var()].map(|v| v ^ l.is_neg())
    }

    fn preprocess(&mut self, cnf: &Cnf) -> Preprocess {
        for c in cnf.clauses() {
            // Deduplicate; drop tautologies.
            let mut lits = c.clone();
            lits.sort();
            lits.dedup();
            if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
                continue; // x ∨ ¬x — tautology
            }
            match lits.len() {
                0 => return Preprocess::Unsat,
                1 => match self.value(lits[0]) {
                    Some(false) => return Preprocess::Unsat,
                    Some(true) => {}
                    None => self.enqueue(lits[0], None),
                },
                _ => {
                    self.add_clause(lits, false);
                }
            }
        }
        if self.propagate().is_some() {
            return Preprocess::Unsat;
        }
        Preprocess::Ready
    }

    fn add_clause(&mut self, lits: Vec<Lit>, learned: bool) -> usize {
        debug_assert!(lits.len() >= 2);
        let ix = self.clauses.len();
        self.watches[lit_ix(lits[0])].push(ix);
        self.watches[lit_ix(lits[1])].push(ix);
        self.clauses.push(Clause { lits, learned });
        ix
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) {
        debug_assert!(self.value(l).is_none());
        self.assign[l.var()] = Some(!l.is_neg());
        self.level[l.var()] = self.decision_level();
        self.reason[l.var()] = reason;
        self.phase[l.var()] = !l.is_neg();
        self.trail.push(l);
    }

    /// Propagates to fixpoint; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p must find a new watch or propagate.
            let false_lit = p.negated();
            let mut watch_list = std::mem::take(&mut self.watches[lit_ix(false_lit)]);
            let mut i = 0;
            while i < watch_list.len() {
                let cix = watch_list[i];
                // Ensure the false literal is at position 1.
                {
                    let lits = &mut self.clauses[cix].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                // Satisfied via the other watch?
                let first = self.clauses[cix].lits[0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Find a replacement watch.
                let mut moved = false;
                let len = self.clauses[cix].lits.len();
                for k in 2..len {
                    let candidate = self.clauses[cix].lits[k];
                    if self.value(candidate) != Some(false) {
                        self.clauses[cix].lits.swap(1, k);
                        self.watches[lit_ix(candidate)].push(cix);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // No replacement: clause is unit or conflicting on first.
                match self.value(first) {
                    None => {
                        self.enqueue(first, Some(cix));
                        i += 1;
                    }
                    Some(false) => {
                        // Conflict: restore the watch list and report.
                        self.watches[lit_ix(false_lit)] = watch_list;
                        return Some(cix);
                    }
                    Some(true) => unreachable!("handled above"),
                }
            }
            self.watches[lit_ix(false_lit)] = watch_list;
        }
        None
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.act_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    fn decay(&mut self) {
        self.act_inc /= 0.95;
    }

    /// First-UIP conflict analysis (the MiniSat scheme). Returns
    /// (learned clause, backjump level); the asserting literal is first.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.assign.len()];
        let mut counter = 0usize; // current-level literals still open
        let mut pivot: Option<Lit> = None;
        let mut cix = conflict;
        let mut trail_pos = self.trail.len();
        let asserting = loop {
            let clause_lits = self.clauses[cix].lits.clone();
            for l in clause_lits {
                // Skip the pivot we are resolving on (it occurs positively
                // in its own reason clause).
                if Some(l) == pivot {
                    continue;
                }
                let v = l.var();
                if seen[v] || self.level[v] == 0 {
                    continue;
                }
                seen[v] = true;
                self.bump(v);
                if self.level[v] == current {
                    counter += 1;
                } else {
                    learned.push(l);
                }
            }
            // Next seen literal, walking the trail backwards.
            loop {
                trail_pos -= 1;
                if seen[self.trail[trail_pos].var()] {
                    break;
                }
            }
            let l = self.trail[trail_pos];
            seen[l.var()] = false;
            counter -= 1;
            if counter == 0 {
                break l; // the first UIP
            }
            cix = self.reason[l.var()].expect("non-decision literal has a reason");
            pivot = Some(l);
        };
        learned.insert(0, asserting.negated());

        // Backjump level = max level among the non-asserting literals.
        let bj = learned
            .iter()
            .skip(1)
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        (learned, bj)
    }

    fn backjump(&mut self, level: u32) {
        while self.decision_level() > level {
            let start = self.trail_lim.pop().unwrap();
            for l in self.trail.drain(start..) {
                self.assign[l.var()] = None;
                self.reason[l.var()] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.assign.len() {
            if self.assign[v].is_none() && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| {
            if self.phase[v] {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            }
        })
    }

    fn run(&mut self) -> bool {
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    return false;
                }
                let (learned, bj) = self.analyze(conflict);
                self.backjump(bj);
                let asserting = learned[0];
                if learned.len() == 1 {
                    debug_assert_eq!(self.decision_level(), 0);
                    if self.value(asserting) == Some(false) {
                        return false;
                    }
                    if self.value(asserting).is_none() {
                        self.enqueue(asserting, None);
                    }
                } else {
                    let cix = self.add_clause(learned, true);
                    self.stats.learned += 1;
                    self.enqueue(asserting, Some(cix));
                }
                self.decay();
                if self.stats.conflicts >= self.conflicts_until_restart {
                    self.restart_interval = (self.restart_interval as f64 * 1.5) as u64;
                    self.conflicts_until_restart = self.stats.conflicts + self.restart_interval;
                    self.stats.restarts += 1;
                    self.backjump(0);
                }
            } else {
                match self.pick_branch() {
                    None => return true, // all assigned, no conflict
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_ksat, KsatParams};
    use crate::solver::solve;

    fn clause(lits: &[i32]) -> Vec<Lit> {
        lits.iter()
            .map(|&v| {
                let var = v.unsigned_abs() as usize - 1;
                if v > 0 {
                    Lit::pos(var)
                } else {
                    Lit::neg(var)
                }
            })
            .collect()
    }

    fn cnf(num_vars: usize, clauses: &[&[i32]]) -> Cnf {
        let mut c = Cnf::new(num_vars);
        for cl in clauses {
            c.add_clause(clause(cl));
        }
        c
    }

    #[test]
    fn trivial_cases() {
        assert!(solve_cdcl(&Cnf::new(0)).is_some());
        assert!(solve_cdcl(&Cnf::new(5)).is_some());
        let mut c = Cnf::new(1);
        c.add_clause([]);
        assert!(solve_cdcl(&c).is_none());
    }

    #[test]
    fn unit_chain() {
        let c = cnf(3, &[&[1], &[-1, 2], &[-2, 3]]);
        assert_eq!(solve_cdcl(&c).unwrap(), vec![true, true, true]);
    }

    #[test]
    fn direct_contradiction() {
        assert!(solve_cdcl(&cnf(1, &[&[1], &[-1]])).is_none());
    }

    #[test]
    fn tautologies_are_ignored() {
        let c = cnf(2, &[&[1, -1], &[2]]);
        let m = solve_cdcl(&c).unwrap();
        assert!(m[1]);
    }

    #[test]
    fn duplicate_literals_are_deduplicated() {
        let c = cnf(2, &[&[1, 1, 2], &[-1, -1]]);
        let m = solve_cdcl(&c).unwrap();
        assert!(!m[0]);
        assert!(m[1]);
    }

    fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
        let var = |p: usize, h: usize| p * holes + h;
        let mut c = Cnf::new(pigeons * holes);
        for p in 0..pigeons {
            c.add_clause((0..holes).map(|h| Lit::pos(var(p, h))));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    c.add_clause([Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        c
    }

    #[test]
    fn pigeonhole_unsat_instances() {
        assert!(solve_cdcl(&pigeonhole(2, 1)).is_none());
        assert!(solve_cdcl(&pigeonhole(4, 3)).is_none());
        assert!(solve_cdcl(&pigeonhole(6, 5)).is_none());
        // And the satisfiable direction.
        assert!(solve_cdcl(&pigeonhole(3, 3)).is_some());
    }

    #[test]
    fn agrees_with_dpll_on_random_3sat() {
        for seed in 0..40 {
            for ratio10 in [20u64, 43, 60] {
                let f = random_ksat(&KsatParams::three_sat(
                    12,
                    ratio10 as f64 / 10.0,
                    seed * 1000 + ratio10,
                ));
                let dpll_sat = solve(&f).is_some();
                let cdcl = solve_cdcl(&f);
                assert_eq!(
                    dpll_sat,
                    cdcl.is_some(),
                    "solvers disagree on seed {seed} ratio {ratio10}: {f}"
                );
                if let Some(m) = cdcl {
                    assert!(f.eval(&m), "CDCL model does not satisfy: {f}");
                }
            }
        }
    }

    #[test]
    fn handles_larger_satisfiable_instances() {
        let f = random_ksat(&KsatParams::three_sat(150, 3.0, 7));
        let (model, stats) = solve_cdcl_with_stats(&f);
        let m = model.expect("low-ratio instance should be SAT");
        assert!(f.eval(&m));
        assert!(stats.decisions > 0);
    }

    #[test]
    fn handles_larger_unsat_instances() {
        let f = random_ksat(&KsatParams::three_sat(60, 8.0, 3));
        let (model, stats) = solve_cdcl_with_stats(&f);
        assert!(model.is_none());
        assert!(stats.conflicts > 0);
        assert!(stats.learned > 0);
    }

    #[test]
    fn restarts_fire_on_hard_instances() {
        let f = pigeonhole(7, 6);
        let (model, stats) = solve_cdcl_with_stats(&f);
        assert!(model.is_none());
        assert!(stats.restarts > 0, "{stats:?}");
    }

    #[test]
    fn phase_transition_instances() {
        let mut disagreements = 0;
        for seed in 100..120 {
            let f = random_ksat(&KsatParams::three_sat(20, 4.27, seed));
            if solve(&f).is_some() != solve_cdcl(&f).is_some() {
                disagreements += 1;
            }
        }
        assert_eq!(disagreements, 0);
    }
}
