//! # pgraph — a Property Graph engine
//!
//! This crate implements the Property Graph data model of Angles et al.
//! exactly as adopted by Hartig & Hidders (Definition 2.1):
//!
//! > A Property Graph is a tuple `(V, E, ρ, λ, σ)` where `V` is a finite set
//! > of vertices, `E` a finite set of edges with `V ∩ E = ∅`,
//! > `ρ : E → (V × V)` a total function assigning endpoints,
//! > `λ : (V ∪ E) → Labels` a total labelling function, and
//! > `σ : (V ∪ E) × Props ⇀ Values` a partial function assigning property
//! > values to nodes and edges.
//!
//! The central type is [`PropertyGraph`]. Nodes and edges are addressed by
//! the copyable ids [`NodeId`] and [`EdgeId`]; labels are strings; property
//! values are the GraphQL-compatible [`Value`] type (scalars or flat lists
//! of scalars — exactly the value space the paper's schemas can constrain).
//!
//! Beyond the bare model the crate provides what a validation engine needs
//! from its substrate:
//!
//! * mutation and bulk-construction APIs ([`PropertyGraph`], [`GraphBuilder`]),
//! * mutation logs ([`delta::GraphDelta`]) that capture an evolution step
//!   as a value and report exactly what they touched — the substrate for
//!   incremental revalidation,
//! * secondary indexes (label index, out/in adjacency grouped by edge label)
//!   via [`index::GraphIndex`],
//! * traversal helpers ([`traverse`]),
//! * a stable JSON interchange format ([`json`]),
//! * structural statistics ([`stats::GraphStats`]) used by the benchmark
//!   harness.
//!
//! ```
//! use pgraph::{PropertyGraph, Value};
//!
//! let mut g = PropertyGraph::new();
//! let alice = g.add_node("User");
//! g.set_node_property(alice, "login", Value::from("alice"));
//! let session = g.add_node("UserSession");
//! let e = g.add_edge(session, alice, "user").unwrap();
//! g.set_edge_property(e, "certainty", Value::from(0.9));
//!
//! assert_eq!(g.node_label(alice), Some("User"));
//! assert_eq!(g.edge_endpoints(e), Some((session, alice)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod graph;
mod value;

pub mod binary;
pub mod columnar;
pub mod csv;
pub mod delta;
pub mod dot;
pub mod index;
pub mod json;
pub mod parse;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod symbols;
pub mod traverse;

pub use builder::{BuildError, GraphBuilder};
pub use columnar::{ColumnarGraph, ValueTable};
pub use delta::{DeltaEffect, DeltaOp, EdgeTouch, GraphDelta};
pub use graph::{EdgeId, EdgeRef, GraphError, NodeId, NodeRef, PropertyGraph};
pub use parse::ParseEnumError;
pub use symbols::{Sym, SymbolTable};
pub use value::{Value, ValueKind};
