//! String interning for the columnar graph core.
//!
//! Labels and property keys repeat massively across a graph — a 100k-node
//! social graph has a handful of distinct labels and a few dozen property
//! names. The validation kernels compare them constantly (every rule is
//! keyed on a label or a field name), so the columnar representation
//! replaces every such string with a dense [`Sym`] into one append-only
//! [`SymbolTable`], turning string comparison into a `u32` compare and
//! letting per-label indexes become plain arrays indexed by symbol.
//!
//! Symbols are assigned in first-intern order and never removed, so a
//! table built by a deterministic walk of the graph is itself
//! deterministic — the snapshot codec relies on that to make encoded
//! bytes reproducible.

use std::collections::HashMap;
use std::fmt;

/// An interned string: a dense index into a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// The raw index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Builds a `Sym` from a raw index (deserialisation only; an
    /// out-of-range symbol resolves to nothing).
    pub fn from_index(ix: usize) -> Self {
        Sym(ix as u32)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Append-only intern table mapping strings to dense [`Sym`]s.
///
/// Interning the same string twice returns the same symbol; resolution is
/// an array index. The table never forgets a string, so symbols remain
/// valid for the table's lifetime.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    strings: Vec<String>,
    index: HashMap<String, Sym>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), sym);
        sym
    }

    /// Looks up a string without interning it.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.index.get(s).copied()
    }

    /// Resolves a symbol back to its string. Panics on a foreign symbol.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Resolves a symbol, returning `None` when out of range.
    pub fn try_resolve(&self, sym: Sym) -> Option<&str> {
        self.strings.get(sym.index()).map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All interned strings in symbol order.
    pub fn strings(&self) -> impl Iterator<Item = &str> {
        self.strings.iter().map(String::as_str)
    }

    /// Rebuilds a table from its string list (snapshot thaw). Strings are
    /// assumed distinct; duplicates would alias to the first occurrence.
    pub(crate) fn from_strings(strings: Vec<String>) -> SymbolTable {
        let index = strings
            .iter()
            .enumerate()
            .map(|(ix, s)| (s.clone(), Sym(ix as u32)))
            .collect();
        SymbolTable { strings, index }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("User");
        let b = t.intern("login");
        let a2 = t.intern("User");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "User");
        assert_eq!(t.resolve(b), "login");
        assert_eq!(t.lookup("User"), Some(a));
        assert_eq!(t.lookup("absent"), None);
    }

    #[test]
    fn try_resolve_tolerates_foreign_symbols() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.try_resolve(Sym::from_index(7)), None);
    }

    #[test]
    fn strings_iterate_in_symbol_order() {
        let mut t = SymbolTable::new();
        t.intern("b");
        t.intern("a");
        t.intern("c");
        let all: Vec<_> = t.strings().collect();
        assert_eq!(all, vec!["b", "a", "c"]);
    }
}
