//! # pg-reason — object-type satisfiability for Property Graph schemas
//!
//! Implements §6.2 of the paper: *"Is there a Property Graph that strongly
//! satisfies S and contains at least one node labelled `ot`?"*
//!
//! Three cooperating components:
//!
//! * [`translate`] — the Theorem 3 construction: a schema becomes an
//!   ALCQI TBox (concept names = named types, roles = relationship
//!   fields, inverse roles for the `ForTarget` directives, disjointness +
//!   covering axioms for "every node has exactly one object type").
//!   `@distinct`, `@noLoops`, scalar fields and `@key`s are dropped — the
//!   paper proves they do not affect satisfiability.
//! * [`tableau`] — a completion-tree calculus for ALCQI with qualified
//!   number restrictions, inverse roles and pairwise blocking. Decides
//!   *unrestricted* satisfiability (models may be infinite).
//! * [`finite`] — a bounded finite-model search: satisfiability at size
//!   `k` is encoded propositionally and handed to the DPLL solver; on
//!   success the model is decoded into an actual witness
//!   [`pgraph::PropertyGraph`] that *strongly satisfies* the schema
//!   (verified via `pg-schema`'s validator in the tests).
//!
//! The two semantics genuinely differ: Property Graphs are finite, and
//! ALCQI does not have the finite-model property. Diagram (b) of the
//! paper's §6.2 is the canonical witness — satisfiable only by an
//! infinite chain. [`check_object_type`] therefore reports a three-valued
//! [`Satisfiability`].
//!
//! [`reduction`] implements the Theorem 2 NP-hardness construction
//! (CNF-SAT ⟶ object-type satisfiability) executably; agreement between
//! the DPLL oracle and the reduction-plus-reasoner pipeline is
//! property-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concept;
pub mod extended;
pub mod finite;
pub mod reduction;
pub mod tableau;
pub mod translate;

pub use extended::{check_field_satisfiable, check_type_satisfiable};

use pg_schema::PgSchema;

/// The outcome of an object-type satisfiability check.
#[derive(Debug, Clone)]
pub enum Satisfiability {
    /// A finite witness exists (and is returned): the paper's notion of
    /// satisfiability, since Property Graphs are finite.
    Satisfiable {
        /// A Property Graph that strongly satisfies the schema and
        /// contains a node of the queried type.
        witness: pgraph::PropertyGraph,
        /// Number of nodes in the witness.
        size: usize,
    },
    /// Provably unsatisfiable (the tableau closed): no model at all, in
    /// particular no finite one.
    Unsatisfiable,
    /// No finite model up to the search bound. `tableau_satisfiable`
    /// distinguishes "infinite models exist" (diagram (b) of §6.2) from
    /// "the tableau ran out of resources".
    NoFiniteModelFound {
        /// The exhausted finite-model size bound.
        bound: usize,
        /// `Some(true)`: the tableau found an (infinite) model;
        /// `Some(false)` cannot occur here (that is `Unsatisfiable`);
        /// `None`: the tableau hit its resource limit.
        tableau_satisfiable: Option<bool>,
    },
}

impl Satisfiability {
    /// True if a finite witness was found.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, Satisfiability::Satisfiable { .. })
    }

    /// True if provably unsatisfiable.
    pub fn is_unsatisfiable(&self) -> bool {
        matches!(self, Satisfiability::Unsatisfiable)
    }
}

/// Resource limits for the combined check.
#[derive(Debug, Clone, Copy)]
pub struct ReasonerConfig {
    /// Maximum finite-model size to try (nodes).
    pub max_graph_size: usize,
    /// Tableau node budget before giving up.
    pub max_tableau_nodes: usize,
    /// Tableau backtracking budget (choice points explored).
    pub max_tableau_branches: usize,
}

impl Default for ReasonerConfig {
    fn default() -> Self {
        ReasonerConfig {
            max_graph_size: 8,
            max_tableau_nodes: 4000,
            max_tableau_branches: 200_000,
        }
    }
}

/// Decides the Object-Type Satisfiability Problem for `ot_name`.
///
/// Strategy: try the tableau first (a closed tableau settles
/// *unsatisfiable* outright); otherwise search for a finite witness of
/// increasing size; report [`Satisfiability::NoFiniteModelFound`] if the
/// bound is exhausted.
pub fn check_object_type(
    schema: &PgSchema,
    ot_name: &str,
    config: &ReasonerConfig,
) -> Satisfiability {
    let tbox = translate::translate(schema);
    let outcome = tableau::check_concept_by_name(&tbox, ot_name, config);
    if let tableau::TableauOutcome::Unsatisfiable = outcome {
        return Satisfiability::Unsatisfiable;
    }
    for k in 1..=config.max_graph_size {
        if let Some(witness) = finite::find_model(schema, ot_name, k) {
            return Satisfiability::Satisfiable {
                size: witness.node_count(),
                witness,
            };
        }
    }
    Satisfiability::NoFiniteModelFound {
        bound: config.max_graph_size,
        tableau_satisfiable: match outcome {
            tableau::TableauOutcome::Satisfiable => Some(true),
            tableau::TableauOutcome::ResourceLimit => None,
            tableau::TableauOutcome::Unsatisfiable => unreachable!(),
        },
    }
}
