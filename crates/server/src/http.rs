//! Minimal HTTP/1.1 framing over `std::net` — just enough of RFC 9112
//! for the daemon and its load generator: request line + headers +
//! `Content-Length` bodies (plus `Transfer-Encoding: chunked` on the
//! *response* side, for the WAL tail stream), keep-alive, no TLS.
//!
//! Parsing is *resumable*: [`parse_buffered`] consumes a complete
//! request from the front of a caller-owned accumulator buffer and
//! otherwise reports "not yet" — the reactor appends whatever bytes each
//! wakeup delivered and retries, so a request arriving one byte per
//! `epoll_wait` costs nothing but the retries. Pipelined bytes beyond
//! the first complete request stay in the buffer for the next call.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Longest request head (request line + headers) the server accepts.
const MAX_HEAD: usize = 16 * 1024;
/// Largest request body the server accepts.
const MAX_BODY: usize = 64 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token, e.g. `GET`.
    pub method: String,
    /// Path component of the request target, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Consumes one complete request from the front of `buf`, leaving any
/// pipelined surplus in place. `Ok(None)` means the buffer holds only a
/// prefix — append more bytes and call again (this is what makes the
/// parse resumable across reactor wakeups). Malformed or oversized input
/// is an [`io::ErrorKind::InvalidData`] error; the connection should
/// then be closed after a `400`.
pub fn parse_buffered(buf: &mut Vec<u8>) -> io::Result<Option<Request>> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Err(invalid("request head too large"));
        }
        return Ok(None);
    };
    let (mut request, body_len) = parse_head(&buf[..head_len])?;
    if body_len > MAX_BODY {
        return Err(invalid("request body too large"));
    }
    let total = head_len + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    request.body = buf[head_len..total].to_vec();
    buf.drain(..total);
    Ok(Some(request))
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Index just past `\r\n\r\n`, if the head is complete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parses the request line and headers; returns the request (with empty
/// body) and the declared body length.
fn parse_head(head: &[u8]) -> io::Result<(Request, usize)> {
    let text = std::str::from_utf8(head).map_err(|_| invalid("request head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| invalid("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or_else(|| invalid("missing method"))?;
    let target = parts
        .next()
        .ok_or_else(|| invalid("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| invalid("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    let mut headers = Vec::new();
    let mut body_len = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("malformed header line"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            body_len = value
                .parse::<usize>()
                .map_err(|_| invalid("bad Content-Length"))?;
        }
        headers.push((name, value));
    }
    Ok((
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            query,
            headers,
            body: Vec::new(),
        },
        body_len,
    ))
}

/// Splits `a=b&c=d` into pairs, percent-decoding both sides.
fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One HTTP response, written with `Content-Length` framing — or, when
/// [`Response::chunks`] is set, with `Transfer-Encoding: chunked`.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length` / `Content-Type` /
    /// `Connection`.
    pub headers: Vec<(String, String)>,
    /// Response body (ignored when `chunks` is set).
    pub body: Vec<u8>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// When set, the response is written with `Transfer-Encoding:
    /// chunked`, one chunk per entry (empty entries are skipped — a
    /// zero-length chunk would terminate the stream early). The WAL tail
    /// endpoint uses one chunk per frame so a tailing follower can apply
    /// records as they arrive.
    pub chunks: Option<Vec<Vec<u8>>>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "application/json",
            chunks: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "text/plain; charset=utf-8",
            chunks: None,
        }
    }

    /// A binary response with a `Content-Length` body.
    pub fn octets(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "application/octet-stream",
            chunks: None,
        }
    }

    /// A binary chunked-transfer response, one chunk per entry.
    pub fn chunked(status: u16, chunks: Vec<Vec<u8>>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
            content_type: "application/octet-stream",
            chunks: Some(chunks),
        }
    }

    /// A JSON error envelope `{"error": …}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::with_capacity(message.len() + 16);
        body.push_str("{\"error\":");
        push_json_string(&mut body, message);
        body.push('}');
        Response::json(status, body)
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Serialises the head + body into one contiguous byte vector, ready
    /// for the reactor's output queue (flushed with `writev`). `close`
    /// adds `Connection: close`; otherwise `Connection: keep-alive`.
    pub fn serialize(&self, close: bool) -> Vec<u8> {
        let framing = match &self.chunks {
            Some(_) => "transfer-encoding: chunked".to_owned(),
            None => format!("content-length: {}", self.body.len()),
        };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n{}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            framing,
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = Vec::with_capacity(head.len() + self.body.len());
        out.extend_from_slice(head.as_bytes());
        match &self.chunks {
            Some(chunks) => {
                for chunk in chunks.iter().filter(|c| !c.is_empty()) {
                    out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
                    out.extend_from_slice(chunk);
                    out.extend_from_slice(b"\r\n");
                }
                out.extend_from_slice(b"0\r\n\r\n");
            }
            None => out.extend_from_slice(&self.body),
        }
        out
    }

    /// Writes the response to `stream` in one buffered syscall. Used on
    /// the shed path (where the socket is still blocking) and by tests;
    /// reactor connections go through [`Response::serialize`] instead.
    pub fn write_to(&self, stream: &mut TcpStream, close: bool) -> io::Result<()> {
        stream.write_all(&self.serialize(close))
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        421 => "Misdirected Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Status, lower-cased headers and body of one parsed response.
pub type ResponseParts = (u16, Vec<(String, String)>, Vec<u8>);

/// Client-side helper: reads one response (status, headers, body) from
/// `stream`, resuming from and leaving pipelined surplus in `buf`. Used
/// by the `pgload` generator and the integration tests.
pub fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> io::Result<ResponseParts> {
    let mut chunk = [0u8; 8 * 1024];
    loop {
        if let Some(head_len) = find_head_end(buf) {
            let text = std::str::from_utf8(&buf[..head_len])
                .map_err(|_| invalid("response head is not UTF-8"))?;
            let mut lines = text.split("\r\n");
            let status_line = lines.next().ok_or_else(|| invalid("empty response"))?;
            let status = status_line
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse::<u16>().ok())
                .ok_or_else(|| invalid("bad status line"))?;
            let mut headers = Vec::new();
            let mut body_len = 0usize;
            for line in lines {
                if line.is_empty() {
                    continue;
                }
                if let Some((name, value)) = line.split_once(':') {
                    let name = name.trim().to_ascii_lowercase();
                    let value = value.trim().to_owned();
                    if name == "content-length" {
                        body_len = value.parse().map_err(|_| invalid("bad Content-Length"))?;
                    }
                    headers.push((name, value));
                }
            }
            let chunked = headers
                .iter()
                .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
            if chunked {
                let (body, consumed) = read_chunked_body(stream, buf, head_len, &mut chunk)?;
                buf.drain(..consumed);
                return Ok((status, headers, body));
            }
            let total = head_len + body_len;
            while buf.len() < total {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(invalid("connection closed mid-body"));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            let body = buf[head_len..total].to_vec();
            buf.drain(..total);
            return Ok((status, headers, body));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed before response"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Decodes a `Transfer-Encoding: chunked` body starting at `start` in
/// `buf`, reading more from `stream` as needed. Returns the concatenated
/// chunk data and the index in `buf` one past the terminating chunk, so
/// the caller can drain the consumed bytes while preserving pipelined
/// surplus. Trailer fields are consumed and discarded.
fn read_chunked_body(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    start: usize,
    scratch: &mut [u8],
) -> io::Result<(Vec<u8>, usize)> {
    let mut fill = |buf: &mut Vec<u8>| -> io::Result<()> {
        let n = stream.read(scratch)?;
        if n == 0 {
            return Err(invalid("connection closed mid-chunk"));
        }
        buf.extend_from_slice(&scratch[..n]);
        Ok(())
    };
    let mut body = Vec::new();
    let mut pos = start;
    loop {
        let line_end = loop {
            match buf[pos..].windows(2).position(|w| w == b"\r\n") {
                Some(p) => break pos + p,
                None => fill(buf)?,
            }
        };
        let size_text = std::str::from_utf8(&buf[pos..line_end])
            .map_err(|_| invalid("chunk size is not UTF-8"))?;
        let size_text = size_text.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_text, 16).map_err(|_| invalid("bad chunk size"))?;
        if body.len().saturating_add(size) > MAX_BODY {
            return Err(invalid("chunked body too large"));
        }
        pos = line_end + 2;
        if size == 0 {
            // Trailer section: lines until an empty one.
            loop {
                let trailer_end = loop {
                    match buf[pos..].windows(2).position(|w| w == b"\r\n") {
                        Some(p) => break pos + p,
                        None => fill(buf)?,
                    }
                };
                let empty = trailer_end == pos;
                pos = trailer_end + 2;
                if empty {
                    return Ok((body, pos));
                }
            }
        }
        while buf.len() < pos + size + 2 {
            fill(buf)?;
        }
        body.extend_from_slice(&buf[pos..pos + size]);
        if &buf[pos + size..pos + size + 2] != b"\r\n" {
            return Err(invalid("chunk data not CRLF-terminated"));
        }
        pos += size + 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn parse_head_extracts_query_and_headers() {
        let (req, body_len) = parse_head(
            b"POST /validate?engine=parallel&x=a%20b HTTP/1.1\r\n\
              Host: localhost\r\nContent-Length: 12\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/validate");
        assert_eq!(req.query_param("engine"), Some("parallel"));
        assert_eq!(req.query_param("x"), Some("a b"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(body_len, 12);
    }

    #[test]
    fn malformed_heads_are_rejected() {
        assert!(parse_head(b"nonsense\r\n\r\n").is_err());
        assert!(parse_head(b"GET / SPDY/9\r\n\r\n").is_err());
        assert!(parse_head(b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n").is_err());
    }

    #[test]
    fn parse_buffered_resumes_and_leaves_surplus() {
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /y HTTP/1.1\r\n\r\n";
        let mut buf = Vec::new();
        // Byte at a time: each request must surface exactly when its last
        // byte arrives, never on a shorter prefix.
        let mut parsed = Vec::new();
        for (i, b) in wire.iter().enumerate() {
            buf.push(*b);
            if let Some(req) = parse_buffered(&mut buf).unwrap() {
                parsed.push((i, req));
            }
        }
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, 43); // "POST /x … hello" is 44 bytes
        assert_eq!(parsed[0].1.path, "/x");
        assert_eq!(parsed[0].1.body, b"hello");
        assert_eq!(parsed[1].0, wire.len() - 1);
        assert_eq!(parsed[1].1.method, "GET");
        assert_eq!(parsed[1].1.path, "/y");
        assert!(buf.is_empty());
    }

    #[test]
    fn parse_buffered_rejects_oversized_head() {
        let mut buf = vec![b'A'; MAX_HEAD + 8];
        assert!(parse_buffered(&mut buf).is_err());
    }

    #[test]
    fn serialize_matches_content_length_framing() {
        let bytes = Response::json(200, "{}").serialize(false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn serialize_chunked_frames_each_chunk() {
        let bytes = Response::chunked(200, vec![b"abc".to_vec(), Vec::new(), b"defgh".to_vec()])
            .serialize(false)
            .into_iter()
            .collect::<Vec<u8>>();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(!text.contains("content-length"));
        // Empty chunks are dropped: a zero-size chunk terminates the
        // stream, and only the final terminator may do that.
        assert!(text.ends_with("\r\n\r\n3\r\nabc\r\n5\r\ndefgh\r\n0\r\n\r\n"));
    }

    #[test]
    fn chunked_round_trip_over_a_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 64 * i as usize + 1]).collect();
        let expected: Vec<u8> = payload.iter().flatten().copied().collect();
        let wire = Response::chunked(200, payload)
            .with_header("x-wal-next-from", "42")
            .serialize(false);
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            // Dribble the bytes to exercise resumable chunk decoding.
            for piece in wire.chunks(7) {
                sock.write_all(piece).unwrap();
                sock.flush().unwrap();
            }
        });
        let mut sock = TcpStream::connect(addr).unwrap();
        let mut buf = Vec::new();
        let (status, headers, body) = read_response(&mut sock, &mut buf).unwrap();
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, expected);
        assert!(headers
            .iter()
            .any(|(n, v)| n == "x-wal-next-from" && v == "42"));
        assert!(buf.is_empty(), "no surplus bytes after the terminator");
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
