//! Deferred graph materialization for snapshot recovery.
//!
//! A `PGS2` snapshot embeds each session's graph as verbatim `PGCS`
//! columnar bytes (see [`crate::snapshot`]). Recovery validates the
//! container and each graph header/CRC, then hands the caller a
//! [`LazyGraph`] that *points into* the snapshot backing — nothing is
//! deserialized until someone actually needs the graph. Sessions that
//! are never touched again (dormant on a follower, or compacted away)
//! never pay a per-element decode; re-encoding them into the next
//! snapshot ships the mapped bytes verbatim via [`GraphPayload::Pgcs`].

use std::io;
use std::ops::Range;
use std::sync::Arc;

use pgraph::snapshot::SnapshotView;
use pgraph::PropertyGraph;

use crate::mmap::Mapping;

/// Shared immutable bytes underlying one decoded snapshot: either an
/// `mmap` of the snapshot file (recovery) or a heap buffer (snapshots
/// received over HTTP, e.g. follower bootstrap). Cloned per session;
/// the bytes live until the last [`LazyGraph`] drops.
#[derive(Clone, Debug)]
pub(crate) enum Backing {
    Heap(Arc<Vec<u8>>),
    Map(Arc<Mapping>),
}

impl Backing {
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            Backing::Heap(v) => v,
            Backing::Map(m) => m,
        }
    }
}

/// A recovered session graph that may not have been deserialized yet.
///
/// `Loaded` holds a materialized [`PropertyGraph`]; `Mapped` holds a
/// validated `PGCS` byte range inside a snapshot [`Backing`]. The graph
/// header and CRC were checked at decode time, so [`LazyGraph::load`]
/// failures indicate actual corruption races, not routine conditions.
#[derive(Clone, Debug)]
pub struct LazyGraph(Inner);

#[derive(Clone, Debug)]
enum Inner {
    Loaded(PropertyGraph),
    Mapped {
        backing: Backing,
        range: Range<usize>,
    },
}

impl From<PropertyGraph> for LazyGraph {
    fn from(g: PropertyGraph) -> Self {
        LazyGraph(Inner::Loaded(g))
    }
}

impl LazyGraph {
    pub(crate) fn mapped(backing: Backing, range: Range<usize>) -> Self {
        LazyGraph(Inner::Mapped { backing, range })
    }

    /// Still zero-copy: no per-element decode has happened yet.
    pub fn is_mapped(&self) -> bool {
        matches!(self.0, Inner::Mapped { .. })
    }

    /// The materialized graph, if one exists.
    pub fn loaded(&self) -> Option<&PropertyGraph> {
        match &self.0 {
            Inner::Loaded(g) => Some(g),
            Inner::Mapped { .. } => None,
        }
    }

    /// The raw `PGCS` bytes, if still mapped. Snapshot writers use this
    /// to re-ship an untouched graph without a decode/encode cycle.
    pub fn pgcs(&self) -> Option<&[u8]> {
        match &self.0 {
            Inner::Loaded(_) => None,
            Inner::Mapped { backing, range } => Some(&backing.bytes()[range.clone()]),
        }
    }

    fn thaw(bytes: &[u8]) -> io::Result<PropertyGraph> {
        SnapshotView::parse(bytes)
            .and_then(|v| v.thaw())
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("snapshot graph thaw failed: {e}"),
                )
            })
    }

    /// Materialize in place (idempotent) and return the graph mutably.
    pub fn load(&mut self) -> io::Result<&mut PropertyGraph> {
        if let Inner::Mapped { backing, range } = &self.0 {
            let g = Self::thaw(&backing.bytes()[range.clone()])?;
            self.0 = Inner::Loaded(g);
        }
        match &mut self.0 {
            Inner::Loaded(g) => Ok(g),
            Inner::Mapped { .. } => unreachable!("just loaded"),
        }
    }

    /// Materialize by value, releasing the backing reference.
    pub fn into_graph(mut self) -> io::Result<PropertyGraph> {
        self.load()?;
        match self.0 {
            Inner::Loaded(g) => Ok(g),
            Inner::Mapped { .. } => unreachable!("just loaded"),
        }
    }
}

impl PartialEq for LazyGraph {
    /// Structural graph equality; a mapped side is thawed into a
    /// temporary for the comparison (tests compare recovered state —
    /// the cost is irrelevant there, and a thaw failure is `!=`).
    fn eq(&self, other: &Self) -> bool {
        let materialize = |lg: &LazyGraph| -> Option<PropertyGraph> {
            match &lg.0 {
                Inner::Loaded(g) => Some(g.clone()),
                Inner::Mapped { backing, range } => {
                    Self::thaw(&backing.bytes()[range.clone()]).ok()
                }
            }
        };
        match (materialize(self), materialize(other)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialEq<PropertyGraph> for LazyGraph {
    fn eq(&self, other: &PropertyGraph) -> bool {
        match &self.0 {
            Inner::Loaded(g) => g == other,
            Inner::Mapped { backing, range } => {
                Self::thaw(&backing.bytes()[range.clone()]).is_ok_and(|g| &g == other)
            }
        }
    }
}

/// A writer-side view of one session's graph, as accepted by the
/// snapshot encoders ([`crate::Compaction::add_session`] and
/// [`crate::SnapshotHandoff::add_session`]).
///
/// `Pgcs` bytes are embedded verbatim — a dormant mapped session flows
/// from one snapshot generation into the next without ever being
/// deserialized.
#[derive(Clone, Copy, Debug)]
pub enum GraphPayload<'a> {
    /// A live graph; encoded to `PGCS` columnar bytes by the writer.
    Graph(&'a PropertyGraph),
    /// Verbatim, already-validated `PGCS` bytes.
    Pgcs(&'a [u8]),
}

impl<'a> From<&'a PropertyGraph> for GraphPayload<'a> {
    fn from(g: &'a PropertyGraph) -> Self {
        GraphPayload::Graph(g)
    }
}

impl<'a> From<&'a LazyGraph> for GraphPayload<'a> {
    fn from(lg: &'a LazyGraph) -> Self {
        match &lg.0 {
            Inner::Loaded(g) => GraphPayload::Graph(g),
            Inner::Mapped { backing, range } => GraphPayload::Pgcs(&backing.bytes()[range.clone()]),
        }
    }
}
