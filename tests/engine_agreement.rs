//! Property-based tests: the naive, indexed, parallel and incremental
//! validation engines decide the same relation, on random schemas ×
//! random (possibly mutated) graphs, across worker counts, and — for
//! the incremental engine — after every step of arbitrary mutation
//! sequences; generated conforming graphs conform; injected defects are
//! caught. Agreement is checked down to per-rule violation multisets
//! and byte-identical canonical renderings, with and without
//! `max_violations` truncation — the naive oracle versus the shared
//! rule kernels (CI job `kernel-parity`).

use pg_datagen::{DeltaGen, DeltaGenParams, GraphGen, GraphGenParams, SchemaGen, SchemaGenParams};
use pg_schema::{
    validate, Engine, IncrementalEngine, PgSchema, Rule, ValidationOptions, ValidationReport,
};
use proptest::prelude::*;

/// Every engine configuration the agreement suite compares against the
/// naive oracle: serial kernels, the stateless incremental path, and the
/// parallel planner at 1 (degenerate shard), 2 (cross-shard merge) and 8
/// (shards smaller than some label groups) workers.
const KERNEL_CONFIGS: [(Engine, usize); 5] = [
    (Engine::Indexed, 1),
    (Engine::Incremental, 1),
    (Engine::Parallel, 1),
    (Engine::Parallel, 2),
    (Engine::Parallel, 8),
];

fn schema_for(seed: u64) -> PgSchema {
    let sdl = SchemaGen::new(SchemaGenParams {
        num_types: 5,
        attrs_per_type: 3,
        rels_per_type: 2,
        seed,
        ..Default::default()
    })
    .generate();
    PgSchema::parse(&sdl).expect("generated schemas build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engines agree violation-for-violation on arbitrary (conforming or
    /// not) generated graphs — four ways (a bare validate through
    /// `Engine::Incremental` takes the delta engine's full-pass path),
    /// and for the parallel engine across worker counts (1 exercises the
    /// degenerate shard, 2 the cross-shard merge, 8 shards smaller than
    /// some label groups).
    #[test]
    fn engines_agree(schema_seed in 0u64..30, graph_seed in 0u64..30) {
        let schema = schema_for(schema_seed);
        let gen = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 6,
            seed: graph_seed,
            ..Default::default()
        });
        // Raw generate — may or may not conform (target obligations).
        let graph = gen.generate();
        let naive = validate(&graph, &schema, &ValidationOptions::with_engine(Engine::Naive));
        let indexed = validate(&graph, &schema, &ValidationOptions::with_engine(Engine::Indexed));
        prop_assert_eq!(&naive, &indexed, "naive:\n{}indexed:\n{}", naive, indexed);
        let incremental =
            validate(&graph, &schema, &ValidationOptions::with_engine(Engine::Incremental));
        prop_assert_eq!(
            &incremental, &indexed,
            "incremental:\n{}indexed:\n{}", incremental, indexed
        );
        for threads in [1usize, 2, 8] {
            let opts = ValidationOptions::builder()
                .engine(Engine::Parallel)
                .threads(threads)
                .build();
            let parallel = validate(&graph, &schema, &opts);
            prop_assert_eq!(
                &parallel, &indexed,
                "parallel ({} threads):\n{}indexed:\n{}", threads, parallel, indexed
            );
        }
    }

    /// Conforming generation + injection: each applicable defect is
    /// caught by its rule, on both engines.
    #[test]
    fn injected_defects_are_caught(schema_seed in 0u64..12, defect_ix in 0usize..15) {
        let sdl = SchemaGen::new(SchemaGenParams::benchmarkable(5, schema_seed)).generate();
        let schema = PgSchema::parse(&sdl).unwrap();
        let Some(base) = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 6,
            ..Default::default()
        }).generate_conforming(5) else {
            return Ok(()); // schema obligations unsatisfiable — skip
        };
        let defect = pg_datagen::Defect::ALL[defect_ix];
        let mut g = base.clone();
        if !pg_datagen::inject(&mut g, &schema, defect) {
            return Ok(()); // defect not applicable to this schema
        }
        for engine in [
            Engine::Naive,
            Engine::Indexed,
            Engine::Parallel,
            Engine::Incremental,
        ] {
            let report = validate(&g, &schema, &ValidationOptions::with_engine(engine));
            prop_assert!(
                report.by_rule(defect.rule()).next().is_some(),
                "{:?} not caught by {:?}; report:\n{}", defect, engine, report
            );
        }
        // Injected defects survive sharding at any worker count.
        for threads in [2usize, 8] {
            let opts = ValidationOptions::builder()
                .engine(Engine::Parallel)
                .threads(threads)
                .build();
            let report = validate(&g, &schema, &opts);
            prop_assert!(
                report.by_rule(defect.rule()).next().is_some(),
                "{:?} lost at {} threads; report:\n{}", defect, threads, report
            );
        }
    }

    /// The incremental engine's patched report equals a full
    /// revalidation after **every** step of an arbitrary mutation
    /// sequence — the agreement property closes over deltas, not just
    /// static graphs. Sequences are drawn by [`DeltaGen`] against the
    /// engine's own evolving graph, so they mix structural ops
    /// (add/remove node/edge, cascading removals), property churn
    /// (well-typed and deliberately ill-typed writes) and relabels.
    #[test]
    fn incremental_agrees_after_mutation_sequences(
        schema_seed in 0u64..16,
        graph_seed in 0u64..8,
        delta_seed in 0u64..1_000,
    ) {
        let schema = schema_for(schema_seed);
        let graph = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 5,
            seed: graph_seed,
            ..Default::default()
        }).generate();
        let options = ValidationOptions::default();
        let mut engine = IncrementalEngine::new(graph, &schema, &options);
        let gen = DeltaGen::new(&schema, DeltaGenParams {
            ops: 8,
            p_structural: 0.5,
            ..Default::default()
        });
        for step in 0..6u64 {
            let seed = delta_seed.wrapping_mul(31).wrapping_add(step);
            let delta = gen.generate_seeded(engine.graph(), seed);
            engine.apply(&delta).expect("conflict-free by construction");
            let patched = engine.report();
            let full = validate(
                engine.graph(),
                &schema,
                &ValidationOptions::with_engine(Engine::Indexed),
            );
            prop_assert_eq!(
                &patched, &full,
                "step {}:\npatched:\n{}full:\n{}", step, patched, full
            );
        }
        // The end state also agrees with the reference transcription of
        // the paper's formulas.
        let naive = validate(
            engine.graph(),
            &schema,
            &ValidationOptions::with_engine(Engine::Naive),
        );
        let patched = engine.report();
        prop_assert_eq!(
            &patched, &naive,
            "end state:\npatched:\n{}naive:\n{}", patched, naive
        );
    }

    /// Per-rule violation multisets agree across all four engines. Full
    /// report equality already implies this; asserting it per rule keeps
    /// the failure signal sharp (which kernel diverged) and pins the
    /// property the kernel layer promises: each of the fifteen rules has
    /// exactly one implementation, so no engine can disagree on any
    /// rule's violation set.
    #[test]
    fn per_rule_multisets_agree(schema_seed in 0u64..16, graph_seed in 0u64..16) {
        let schema = schema_for(schema_seed);
        let graph = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 6,
            seed: graph_seed,
            ..Default::default()
        }).generate();
        let oracle = validate(&graph, &schema, &ValidationOptions::with_engine(Engine::Naive));
        for (engine, threads) in KERNEL_CONFIGS {
            let opts = ValidationOptions::builder()
                .engine(engine)
                .threads(threads)
                .build();
            let got = validate(&graph, &schema, &opts);
            prop_assert_eq!(got.counts(), oracle.counts(), "{:?}/{}", engine, threads);
            for rule in Rule::ALL {
                let a: Vec<_> = got.by_rule(rule).collect();
                let b: Vec<_> = oracle.by_rule(rule).collect();
                prop_assert_eq!(
                    a, b,
                    "{:?} multiset diverged on {:?} at {} threads", rule, engine, threads
                );
            }
        }
        // Under truncation identical subsets are not promised (engines
        // reach the limit along different scan orders), but every engine
        // must stay within the limit, flag the truncation, and return
        // only genuine violations.
        let total = oracle.len();
        if total > 1 {
            let limit = total / 2;
            for (engine, threads) in KERNEL_CONFIGS {
                let opts = ValidationOptions::builder()
                    .engine(engine)
                    .threads(threads)
                    .max_violations(limit)
                    .build();
                let got = validate(&graph, &schema, &opts);
                prop_assert!(got.truncated(), "{:?}/{} not flagged truncated", engine, threads);
                prop_assert!(!got.conforms());
                prop_assert!(got.len() <= limit, "{:?}/{} exceeded limit", engine, threads);
                for v in got.violations() {
                    prop_assert!(
                        oracle.violations().contains(v),
                        "{:?}/{} fabricated {} under truncation", engine, threads, v
                    );
                }
            }
        }
    }

    /// Canonical ordering makes reports byte-comparable: re-serialising
    /// each engine's violation stream (minus the engine/metrics
    /// identity) yields the identical JSON document and the identical
    /// rendered lines.
    #[test]
    fn reports_render_byte_identically(schema_seed in 0u64..12, graph_seed in 0u64..12) {
        let schema = schema_for(schema_seed);
        let graph = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 6,
            seed: graph_seed,
            ..Default::default()
        }).generate();
        let render = |opts: &ValidationOptions| {
            let r = validate(&graph, &schema, opts);
            let canonical = ValidationReport::new(r.violations().to_vec());
            (canonical.to_json(), canonical.to_string())
        };
        let (oracle_json, oracle_text) =
            render(&ValidationOptions::with_engine(Engine::Naive));
        for (engine, threads) in KERNEL_CONFIGS {
            let opts = ValidationOptions::builder()
                .engine(engine)
                .threads(threads)
                .build();
            let (json, text) = render(&opts);
            prop_assert_eq!(&json, &oracle_json, "{:?}/{} JSON diverged", engine, threads);
            prop_assert_eq!(&text, &oracle_text, "{:?}/{} text diverged", engine, threads);
        }
    }

    /// Per-rule metrics attribute every violation to the kernel that
    /// found it: for each engine the recorded `RuleMetrics.violations`
    /// equals the report's per-rule count, and timing entries stay in
    /// rule order.
    #[test]
    fn rule_metrics_match_report(schema_seed in 0u64..8, graph_seed in 0u64..8) {
        let schema = schema_for(schema_seed);
        let graph = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 6,
            seed: graph_seed,
            ..Default::default()
        }).generate();
        for (engine, threads) in KERNEL_CONFIGS {
            let opts = ValidationOptions::builder()
                .engine(engine)
                .threads(threads)
                .collect_metrics(true)
                .build();
            let report = validate(&graph, &schema, &opts);
            let m = report.metrics().expect("metrics requested");
            prop_assert_eq!(m.rules.len(), Rule::ALL.len(), "{:?}/{}", engine, threads);
            prop_assert!(m.rules.windows(2).all(|w| w[0].rule < w[1].rule));
            for rm in &m.rules {
                // Kernel counts are pre-canonicalization, so duplicate
                // emissions (e.g. one loop edge matching two @noLoops
                // sites) may inflate them — but never fabricate or lose
                // a rule's violations.
                let canonical = report.by_rule(rm.rule).count();
                prop_assert!(
                    rm.violations >= canonical,
                    "{:?} undercounted on {:?} at {} threads: {} < {}",
                    rm.rule, engine, threads, rm.violations, canonical
                );
                prop_assert_eq!(
                    rm.violations == 0,
                    canonical == 0,
                    "{:?} misattributed on {:?} at {} threads", rm.rule, engine, threads
                );
            }
        }
    }

    /// The language axis: a bilingual corpus schema compiled through
    /// the SDL frontend and through its PG-Schema rendering yields
    /// byte-identical canonical violation reports on every engine. This
    /// is the end-to-end translation-parity property — the PG-Schema
    /// compiler lowers onto the same `PgSchema` the SDL path builds, so
    /// no engine can tell which language a schema arrived in.
    #[test]
    fn languages_agree_across_engines(corpus_seed in 0u64..24, graph_seed in 0u64..8) {
        let sdl = pg_pgschema::corpus::corpus_sdl(corpus_seed);
        let via_sdl = PgSchema::parse(&sdl).expect("corpus SDL builds");
        let doc = gql_sdl::parse(&sdl).expect("corpus SDL parses");
        let pgs = pg_pgschema::print_pgschema(&doc, "Corpus", pg_pgschema::TypeMode::Strict)
            .expect("corpus stays inside the PG-Schema fragment");
        let via_pgs = pg_pgschema::compile(&pgs).expect("rendering compiles back").schema;
        let graph = GraphGen::new(&via_sdl, GraphGenParams {
            nodes_per_type: 6,
            seed: graph_seed,
            ..Default::default()
        }).generate();
        let render = |schema: &PgSchema, opts: &ValidationOptions| {
            let r = validate(&graph, schema, opts);
            let canonical = ValidationReport::new(r.violations().to_vec());
            (canonical.to_json(), canonical.to_string())
        };
        let (oracle_json, oracle_text) =
            render(&via_sdl, &ValidationOptions::with_engine(Engine::Naive));
        for (engine, threads) in
            std::iter::once((Engine::Naive, 1)).chain(KERNEL_CONFIGS)
        {
            let opts = ValidationOptions::builder()
                .engine(engine)
                .threads(threads)
                .build();
            let (json, text) = render(&via_pgs, &opts);
            prop_assert_eq!(
                &json, &oracle_json,
                "pgschema-compiled JSON diverged on {:?}/{}", engine, threads
            );
            prop_assert_eq!(
                &text, &oracle_text,
                "pgschema-compiled text diverged on {:?}/{}", engine, threads
            );
        }
        // And the rendering itself is stable: PG-Schema → SDL → PG-Schema
        // reaches a fixpoint, so the two languages stay in lockstep.
        let reprinted = pg_pgschema::print_pgschema(
            &pg_pgschema::compile(&pgs).unwrap().document,
            "Corpus",
            pg_pgschema::TypeMode::Strict,
        )
        .unwrap();
        prop_assert_eq!(&reprinted, &pgs, "PG-Schema rendering is not a fixpoint");
    }

    /// Graphs round-tripped through JSON validate identically.
    #[test]
    fn json_roundtrip_preserves_validation(schema_seed in 0u64..10, graph_seed in 0u64..10) {
        let schema = schema_for(schema_seed);
        let graph = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 5,
            seed: graph_seed,
            ..Default::default()
        }).generate();
        let roundtripped = pgraph::json::from_json(&pgraph::json::to_json(&graph)).unwrap();
        let a = validate(&graph, &schema, &ValidationOptions::default());
        let b = validate(&roundtripped, &schema, &ValidationOptions::default());
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.counts(), b.counts());
    }
}

/// Weak ⊆ strong: a strong-conforming graph is weak-conforming, and
/// violations found in weak-only mode are a subset of the full run.
#[test]
fn weak_violations_are_a_subset_of_strong() {
    for seed in 0..10u64 {
        let schema = schema_for(seed);
        let graph = GraphGen::new(
            &schema,
            GraphGenParams {
                nodes_per_type: 6,
                seed,
                ..Default::default()
            },
        )
        .generate();
        let weak = validate(&graph, &schema, &ValidationOptions::weak_only());
        let full = validate(&graph, &schema, &ValidationOptions::default());
        for v in weak.violations() {
            assert!(
                full.violations().contains(v),
                "weak-only violation missing from full run: {v}"
            );
        }
    }
}
