//! Edge cases of the §5 semantics that the main rule tests don't reach:
//! constraints sited on interfaces, keys over subtype hierarchies,
//! scalar-basetype WS3, empty schemas/graphs, and null-bearing values.

use pg_schema::{validate, Engine, PgSchema, Rule, ValidationOptions};
use pgraph::{GraphBuilder, PropertyGraph, Value};

fn both(g: &PropertyGraph, s: &PgSchema) -> pg_schema::ValidationReport {
    let naive = validate(g, s, &ValidationOptions::with_engine(Engine::Naive));
    let indexed = validate(g, s, &ValidationOptions::with_engine(Engine::Indexed));
    assert_eq!(naive, indexed, "engines disagree:\n{naive}\n{indexed}");
    naive
}

#[test]
fn empty_schema_accepts_only_the_empty_graph() {
    let s = PgSchema::parse("").unwrap();
    assert!(pg_schema::strongly_satisfies(&PropertyGraph::new(), &s));
    let mut g = PropertyGraph::new();
    g.add_node("Anything");
    let report = both(&g, &s);
    assert_eq!(
        report.counts().keys().copied().collect::<Vec<_>>(),
        vec![Rule::SS1]
    );
}

#[test]
fn key_on_interface_spans_implementing_types() {
    // DS7 with an interface site: nodes of *different* object types below
    // the same interface must still differ on the key.
    let s = PgSchema::parse(
        r#"
        interface Entity @key(fields: ["uid"]) { uid: ID! @required }
        type A implements Entity { uid: ID! @required }
        type B implements Entity { uid: ID! @required }
        "#,
    )
    .unwrap();
    let g = GraphBuilder::new()
        .node("a", "A")
        .prop("a", "uid", Value::Id("same".into()))
        .node("b", "B")
        .prop("b", "uid", Value::Id("same".into()))
        .build()
        .unwrap();
    let report = both(&g, &s);
    assert_eq!(report.by_rule(Rule::DS7).count(), 1, "{report}");
    // Distinct uids conform.
    let g = GraphBuilder::new()
        .node("a", "A")
        .prop("a", "uid", Value::Id("one".into()))
        .node("b", "B")
        .prop("b", "uid", Value::Id("two".into()))
        .build()
        .unwrap();
    assert!(both(&g, &s).conforms());
}

#[test]
fn distinct_on_interface_reaches_implementor_edges() {
    let s = PgSchema::parse(
        r#"
        interface Owner { owns: [Thing] @distinct }
        type Person implements Owner { owns: [Thing] }
        type Thing { x: Int }
        "#,
    )
    .unwrap();
    // Person's own field has no @distinct, but the interface site (t=Owner)
    // constrains all sources ⊑ Owner.
    let g = GraphBuilder::new()
        .node("p", "Person")
        .node("t", "Thing")
        .edge("p", "t", "owns")
        .edge("p", "t", "owns")
        .build()
        .unwrap();
    let report = both(&g, &s);
    assert!(report.by_rule(Rule::DS1).next().is_some(), "{report}");
}

#[test]
fn ws3_with_scalar_base_rejects_any_target() {
    // An edge labelled like an attribute field: WS3's subtype condition
    // λ(v2) ⊑ basetype can never hold for a scalar base.
    let s = PgSchema::parse("type T { size: Int }").unwrap();
    let g = GraphBuilder::new()
        .node("a", "T")
        .node("b", "T")
        .edge("a", "b", "size")
        .build()
        .unwrap();
    let report = both(&g, &s);
    let mut rules: Vec<Rule> = report.counts().keys().copied().collect();
    rules.sort();
    assert_eq!(rules, vec![Rule::WS3, Rule::SS4], "{report}");
}

#[test]
fn null_property_value_conforms_to_nullable_types_only() {
    // A *stored* null: member of valuesW(t) for nullable t (WS1 passes),
    // but DS5 still fires for required fields whose stored value is null?
    // DS5 clause 1 only demands (v,f) ∈ dom(σ) — a stored null satisfies
    // it. Faithful to the paper: the null is in dom(σ).
    let s = PgSchema::parse("type T { a: Int b: Int! @required }").unwrap();
    let g = GraphBuilder::new()
        .node("t", "T")
        .prop("t", "a", Value::Null)
        .prop("t", "b", Value::Null)
        .build()
        .unwrap();
    let report = both(&g, &s);
    // a: Int admits null (WS1 ok); b: Int! rejects it (WS1), while DS5 is
    // satisfied by presence.
    assert_eq!(report.len(), 1, "{report}");
    assert_eq!(report.violations()[0].rule(), Rule::WS1);
}

#[test]
fn parallel_edges_without_distinct_are_fine_for_list_fields() {
    let s = PgSchema::parse("type A { rel: [B] } type B { x: Int }").unwrap();
    let g = GraphBuilder::new()
        .node("a", "A")
        .node("b", "B")
        .edge("a", "b", "rel")
        .edge("a", "b", "rel")
        .edge("a", "b", "rel")
        .build()
        .unwrap();
    assert!(both(&g, &s).conforms());
}

#[test]
fn required_for_target_counts_only_sources_below_site() {
    // An incoming edge from the WRONG source type does not discharge DS4.
    let s = PgSchema::parse(
        r#"
        type Publisher { published: [Book] @requiredForTarget }
        type Pirate { published: [Book] }
        type Book { title: String! }
        "#,
    )
    .unwrap();
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("p", "Pirate")
        .edge("p", "b", "published")
        .build()
        .unwrap();
    let report = both(&g, &s);
    assert!(report.by_rule(Rule::DS4).next().is_some(), "{report}");
    // A real publisher discharges it.
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("p", "Publisher")
        .edge("p", "b", "published")
        .build()
        .unwrap();
    assert!(both(&g, &s).conforms());
}

#[test]
fn unique_for_target_ignores_sources_outside_the_site() {
    let s = PgSchema::parse(
        r#"
        type Publisher { published: [Book] @uniqueForTarget }
        type Pirate { published: [Book] }
        type Book { title: String! }
        "#,
    )
    .unwrap();
    // One publisher + one pirate edge: only one source is ⊑ Publisher, so
    // DS3 is satisfied.
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("p", "Publisher")
        .node("q", "Pirate")
        .edge("p", "b", "published")
        .edge("q", "b", "published")
        .build()
        .unwrap();
    assert!(both(&g, &s).conforms());
    // Two publishers violate it.
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("p1", "Publisher")
        .node("p2", "Publisher")
        .edge("p1", "b", "published")
        .edge("p2", "b", "published")
        .build()
        .unwrap();
    assert!(both(&g, &s).by_rule(Rule::DS3).next().is_some());
}

#[test]
fn enum_property_values_are_checked_against_symbols() {
    let s = PgSchema::parse("enum Unit { METER FEET } type M { unit: Unit! @required }").unwrap();
    let ok = GraphBuilder::new()
        .node("m", "M")
        .prop("m", "unit", Value::Enum("METER".into()))
        .build()
        .unwrap();
    assert!(both(&ok, &s).conforms());
    let bad = GraphBuilder::new()
        .node("m", "M")
        .prop("m", "unit", Value::Enum("MILE".into()))
        .build()
        .unwrap();
    assert!(both(&bad, &s).by_rule(Rule::WS1).next().is_some());
    // A string is not an enum symbol.
    let string = GraphBuilder::new()
        .node("m", "M")
        .prop("m", "unit", Value::from("METER"))
        .build()
        .unwrap();
    assert!(both(&string, &s).by_rule(Rule::WS1).next().is_some());
}

#[test]
fn custom_scalars_accept_any_atomic_value() {
    let s = PgSchema::parse("scalar Time type E { at: Time! @required }").unwrap();
    for v in [
        Value::from("2019-06-30"),
        Value::Int(1_561_852_800),
        Value::Float(1.5),
        Value::Bool(true),
    ] {
        let g = GraphBuilder::new()
            .node("e", "E")
            .prop("e", "at", v.clone())
            .build()
            .unwrap();
        assert!(both(&g, &s).conforms(), "{v:?} rejected for custom scalar");
    }
    let g = GraphBuilder::new()
        .node("e", "E")
        .prop("e", "at", Value::List(vec![Value::Int(1)]))
        .build()
        .unwrap();
    assert!(both(&g, &s).by_rule(Rule::WS1).next().is_some());
}

#[test]
fn huge_int_values_violate_32_bit_int() {
    let s = PgSchema::parse("type T { n: Int }").unwrap();
    let g = GraphBuilder::new()
        .node("t", "T")
        .prop("t", "n", Value::Int(i64::from(i32::MAX) + 1))
        .build()
        .unwrap();
    assert!(both(&g, &s).by_rule(Rule::WS1).next().is_some());
}

#[test]
fn self_loop_is_fine_without_noloops() {
    let s = PgSchema::parse("type A { peer: [A] }").unwrap();
    let g = GraphBuilder::new()
        .node("a", "A")
        .edge("a", "a", "peer")
        .build()
        .unwrap();
    assert!(both(&g, &s).conforms());
}

#[test]
fn multiple_keys_are_all_enforced() {
    let s = PgSchema::parse(
        r#"type U @key(fields: ["a"]) @key(fields: ["b"]) {
            a: Int @required
            b: Int @required
        }"#,
    )
    .unwrap();
    // Differ on a but collide on b → DS7 via the second key.
    let g = GraphBuilder::new()
        .node("u", "U")
        .prop("u", "a", 1i64)
        .prop("u", "b", 9i64)
        .node("v", "U")
        .prop("v", "a", 2i64)
        .prop("v", "b", 9i64)
        .build()
        .unwrap();
    let report = both(&g, &s);
    assert_eq!(report.by_rule(Rule::DS7).count(), 1, "{report}");
}
