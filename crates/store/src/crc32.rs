//! CRC-32 (IEEE 802.3 polynomial, reflected), slicing-by-8.
//!
//! The standard library ships no checksum, and the workspace is offline,
//! so the WAL frames carry this hand-rolled implementation. It matches
//! the ubiquitous `crc32(b"123456789") == 0xCBF43926` check value, which
//! keeps the on-disk format compatible with external tooling (`cksum -o
//! 3`, Python's `zlib.crc32`, …) should anyone want to audit a log.
//!
//! The slicing-by-8 variant processes eight input bytes per step through
//! eight derived tables — byte-identical results to the classic
//! byte-at-a-time loop, several times the throughput. Snapshot recovery
//! is one CRC pass over an mmap'd multi-megabyte file, so the checksum
//! is the recovery hot loop.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = crc of byte b followed by k zero bytes.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// The CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &TABLES;
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = t[0][((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic byte-at-a-time loop, kept as the oracle the sliced
    /// implementation must agree with on every input.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &byte in data {
            crc = TABLES[0][((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        !crc
    }

    #[test]
    fn check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn sliced_agrees_with_bytewise_at_every_length() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 131 + 7) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"the quick brown fox".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference);
            }
        }
    }
}
