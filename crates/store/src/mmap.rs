//! Read-only file mappings for zero-copy snapshot loading.
//!
//! Same philosophy as the server's `sys` module: the workspace takes no
//! dependencies, so instead of the `libc`/`memmap2` crates this is a
//! direct `extern "C"` declaration of `mmap(2)`/`munmap(2)`, wrapped in
//! a safe RAII [`Mapping`] that unmaps on drop. The mapping is
//! `PROT_READ`/`MAP_PRIVATE`: the kernel pages snapshot bytes in on
//! demand and the file contents are never copied into the heap.
//!
//! On non-Unix targets (or if `mmap` fails, e.g. on an empty file or an
//! exotic filesystem) [`map_file`] falls back to `fs::read`, preserving
//! behaviour at the cost of one buffered copy.
#![cfg_attr(unix, allow(unsafe_code))]

use std::fs;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// An immutable byte buffer backing a decoded snapshot: either a real
/// `mmap(2)` of the snapshot file or a heap buffer read with `fs::read`.
/// Derefs to `[u8]` so decoding code never cares which.
pub enum Mapping {
    /// A live `PROT_READ` mapping; unmapped on drop.
    #[cfg(unix)]
    Mapped(MmapRegion),
    /// Fallback: the whole file buffered in memory.
    Heap(Vec<u8>),
}

impl Deref for Mapping {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Mapping::Mapped(m) => m.as_slice(),
            Mapping::Heap(v) => v,
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            #[cfg(unix)]
            Mapping::Mapped(_) => "Mapped",
            Mapping::Heap(_) => "Heap",
        };
        write!(f, "Mapping::{kind}({} bytes)", self.len())
    }
}

/// Map `path` read-only. Uses `mmap(2)` where available; any failure —
/// zero-length files cannot be mapped, and some filesystems refuse —
/// falls back to reading the file into memory.
pub fn map_file(path: &Path) -> io::Result<Mapping> {
    #[cfg(unix)]
    {
        let file = fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len > 0 && len <= usize::MAX as u64 {
            if let Ok(region) = MmapRegion::map(&file, len as usize) {
                return Ok(Mapping::Mapped(region));
            }
        }
    }
    Ok(Mapping::Heap(fs::read(path)?))
}

#[cfg(unix)]
pub use unix::MmapRegion;

#[cfg(unix)]
mod unix {
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};

    const PROT_READ: i32 = 0x1;
    const MAP_PRIVATE: i32 = 0x02;
    const MAP_FAILED: *mut u8 = usize::MAX as *mut u8;

    extern "C" {
        fn mmap(
            addr: *mut u8,
            length: usize,
            prot: i32,
            flags: i32,
            fd: RawFd,
            offset: i64,
        ) -> *mut u8;
        fn munmap(addr: *mut u8, length: usize) -> i32;
    }

    /// An owned `PROT_READ`/`MAP_PRIVATE` mapping of a whole file.
    ///
    /// The pointer stays valid for the lifetime of the region regardless
    /// of what happens to the originating `File`; `Drop` unmaps it.
    pub struct MmapRegion {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is read-only and owned: sharing a `&MmapRegion` across
    // threads only ever reads the pages.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        pub(super) fn map(file: &std::fs::File, len: usize) -> io::Result<Self> {
            // SAFETY: NULL hint, a length measured from the file, and a
            // valid borrowed fd; the result is checked against
            // MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapRegion { ptr, len })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; MAP_PRIVATE means later file writes don't alias it.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: exactly the region returned by mmap in `map`.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_matches_file_contents() {
        let dir = std::env::temp_dir().join(format!("pgstore-mmap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob");
        let data: Vec<u8> = (0..100_000u32).flat_map(|i| i.to_le_bytes()).collect();
        fs::write(&path, &data).unwrap();
        let m = map_file(&path).unwrap();
        assert_eq!(&*m, &data[..]);
        #[cfg(unix)]
        assert!(
            matches!(m, Mapping::Mapped(_)),
            "non-empty file should really map"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_falls_back_to_heap() {
        let dir = std::env::temp_dir().join(format!("pgstore-mmap0-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty");
        fs::write(&path, b"").unwrap();
        let m = map_file(&path).unwrap();
        assert!(m.is_empty());
        assert!(matches!(m, Mapping::Heap(_)));
        fs::remove_dir_all(&dir).ok();
    }
}
