//! Mutation logs over Property Graphs.
//!
//! The paper treats validation as a decision problem over a *fixed* graph
//! `G`; a deployed store, by contrast, evolves by small mutations. This
//! module captures such an evolution step as a first-class value: a
//! [`GraphDelta`] is an ordered log of [`DeltaOp`]s — add/remove vertex,
//! add/remove edge, set/unset property, relabel — that can be applied to a
//! [`PropertyGraph`] as one unit.
//!
//! Applying a delta yields a [`DeltaEffect`]: the precise set of elements
//! the delta created, destroyed or modified, with edge endpoints captured
//! *at mutation time* (a removed edge's endpoints are no longer readable
//! from the graph afterwards). The incremental revalidation engine in the
//! `pg-schema` crate consumes this effect to compute the dirty region it
//! must re-check — see that crate's `incremental` module for the rule
//! dependency analysis.
//!
//! Deltas have a JSON interchange form (`{"ops": [...]}`) handled by
//! [`crate::json::delta_to_json`] / [`crate::json::delta_from_json`];
//! the CLI's `validate --watch-delta` consumes it.
//!
//! ```
//! use pgraph::{GraphDelta, PropertyGraph, Value};
//!
//! let mut g = PropertyGraph::new();
//! let u = g.add_node("User");
//!
//! let delta = GraphDelta::new()
//!     .set_node_property(u, "login", Value::from("alice"))
//!     .add_node("UserSession");
//! let effect = delta.apply_to(&mut g).unwrap();
//!
//! assert_eq!(effect.added_nodes.len(), 1);
//! assert_eq!(g.node_property(u, "login"), Some(&Value::from("alice")));
//! assert_eq!(g.node_count(), 2);
//! ```

use crate::{EdgeId, GraphError, NodeId, PropertyGraph, Value};

/// One primitive mutation of a Property Graph.
///
/// Ops refer to elements by their ids in the target graph. Nodes and
/// edges created *earlier in the same delta* can be referenced too: ids
/// are assigned densely, so the `k`-th `AddNode` of a delta gets id
/// `NodeId::from_index(g.node_index_bound() + k)` (and analogously for
/// edges) — [`GraphDelta::apply_to`] reports the assigned ids in the
/// returned [`DeltaEffect`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Add a vertex with the given label.
    AddNode {
        /// The new node's label, `λ(v)`.
        label: String,
    },
    /// Remove a vertex and (cascading) all its incident edges.
    RemoveNode {
        /// The node to remove.
        node: NodeId,
    },
    /// Add an edge `source --label--> target`.
    AddEdge {
        /// Source endpoint.
        source: NodeId,
        /// Target endpoint.
        target: NodeId,
        /// The new edge's label.
        label: String,
    },
    /// Remove an edge.
    RemoveEdge {
        /// The edge to remove.
        edge: EdgeId,
    },
    /// Set `σ(v, name) = value`, replacing any previous value.
    SetNodeProperty {
        /// The node.
        node: NodeId,
        /// Property name.
        name: String,
        /// New value.
        value: Value,
    },
    /// Remove `(v, name)` from `dom(σ)` (a no-op if absent).
    RemoveNodeProperty {
        /// The node.
        node: NodeId,
        /// Property name.
        name: String,
    },
    /// Set `σ(e, name) = value`, replacing any previous value.
    SetEdgeProperty {
        /// The edge.
        edge: EdgeId,
        /// Property name.
        name: String,
        /// New value.
        value: Value,
    },
    /// Remove `(e, name)` from `dom(σ)` (a no-op if absent).
    RemoveEdgeProperty {
        /// The edge.
        edge: EdgeId,
        /// Property name.
        name: String,
    },
    /// Relabel a node.
    SetNodeLabel {
        /// The node.
        node: NodeId,
        /// The new label.
        label: String,
    },
}

/// An edge together with the endpoints it had when the delta touched it.
///
/// Endpoint capture matters for removals: after `apply_to` returns, a
/// removed edge's endpoints can no longer be read from the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeTouch {
    /// The edge.
    pub edge: EdgeId,
    /// Its source node at mutation time.
    pub source: NodeId,
    /// Its target node at mutation time.
    pub target: NodeId,
}

/// What a delta did to the graph, element by element.
///
/// Every vector lists ids in op order; an element can appear in more than
/// one list (e.g. a node added and then relabelled by the same delta).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaEffect {
    /// Nodes created, in op order (ids are dense continuations).
    pub added_nodes: Vec<NodeId>,
    /// Nodes tombstoned.
    pub removed_nodes: Vec<NodeId>,
    /// Live nodes whose label changed.
    pub relabelled_nodes: Vec<NodeId>,
    /// Live nodes whose property map changed.
    pub node_prop_changes: Vec<NodeId>,
    /// Edges created.
    pub added_edges: Vec<EdgeTouch>,
    /// Edges tombstoned — including edges cascaded away by `RemoveNode`.
    pub removed_edges: Vec<EdgeTouch>,
    /// Live edges whose property map changed.
    pub edge_prop_changes: Vec<EdgeTouch>,
}

impl DeltaEffect {
    /// True if the delta changed nothing (it was empty or all ops were
    /// property removals of absent properties).
    pub fn is_empty(&self) -> bool {
        self.added_nodes.is_empty()
            && self.removed_nodes.is_empty()
            && self.relabelled_nodes.is_empty()
            && self.node_prop_changes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.edge_prop_changes.is_empty()
    }
}

/// An ordered log of mutations, built fluently and applied as one unit.
///
/// The builder methods mirror [`PropertyGraph`]'s mutation API one-to-one
/// and consume `self` (like [`crate::GraphBuilder`]); [`push`](Self::push)
/// offers the non-consuming form for generators that assemble ops in a
/// loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    ops: Vec<DeltaOp>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Creates a delta from raw ops.
    pub fn from_ops(ops: Vec<DeltaOp>) -> Self {
        GraphDelta { ops }
    }

    /// Appends one op (non-consuming form of the builder methods).
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the delta holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Logs an `AddNode` op.
    pub fn add_node(mut self, label: impl Into<String>) -> Self {
        self.ops.push(DeltaOp::AddNode {
            label: label.into(),
        });
        self
    }

    /// Logs a `RemoveNode` op.
    pub fn remove_node(mut self, node: NodeId) -> Self {
        self.ops.push(DeltaOp::RemoveNode { node });
        self
    }

    /// Logs an `AddEdge` op.
    pub fn add_edge(mut self, source: NodeId, target: NodeId, label: impl Into<String>) -> Self {
        self.ops.push(DeltaOp::AddEdge {
            source,
            target,
            label: label.into(),
        });
        self
    }

    /// Logs a `RemoveEdge` op.
    pub fn remove_edge(mut self, edge: EdgeId) -> Self {
        self.ops.push(DeltaOp::RemoveEdge { edge });
        self
    }

    /// Logs a `SetNodeProperty` op.
    pub fn set_node_property(
        mut self,
        node: NodeId,
        name: impl Into<String>,
        value: Value,
    ) -> Self {
        self.ops.push(DeltaOp::SetNodeProperty {
            node,
            name: name.into(),
            value,
        });
        self
    }

    /// Logs a `RemoveNodeProperty` op.
    pub fn remove_node_property(mut self, node: NodeId, name: impl Into<String>) -> Self {
        self.ops.push(DeltaOp::RemoveNodeProperty {
            node,
            name: name.into(),
        });
        self
    }

    /// Logs a `SetEdgeProperty` op.
    pub fn set_edge_property(
        mut self,
        edge: EdgeId,
        name: impl Into<String>,
        value: Value,
    ) -> Self {
        self.ops.push(DeltaOp::SetEdgeProperty {
            edge,
            name: name.into(),
            value,
        });
        self
    }

    /// Logs a `RemoveEdgeProperty` op.
    pub fn remove_edge_property(mut self, edge: EdgeId, name: impl Into<String>) -> Self {
        self.ops.push(DeltaOp::RemoveEdgeProperty {
            edge,
            name: name.into(),
        });
        self
    }

    /// Logs a `SetNodeLabel` op.
    pub fn set_node_label(mut self, node: NodeId, label: impl Into<String>) -> Self {
        self.ops.push(DeltaOp::SetNodeLabel {
            node,
            label: label.into(),
        });
        self
    }

    /// Applies the ops in order, reporting everything they touched.
    ///
    /// On error the graph keeps the effects of the ops that preceded the
    /// failing one (the returned error names the missing element). Callers
    /// that need all-or-nothing semantics should apply to a clone.
    pub fn apply_to(&self, g: &mut PropertyGraph) -> Result<DeltaEffect, GraphError> {
        let mut eff = DeltaEffect::default();
        for op in &self.ops {
            match op {
                DeltaOp::AddNode { label } => {
                    eff.added_nodes.push(g.add_node(label.clone()));
                }
                DeltaOp::RemoveNode { node } => {
                    if !g.contains_node(*node) {
                        return Err(GraphError::MissingNode(*node));
                    }
                    // Capture the cascade before the graph forgets it.
                    for e in g.out_edges(*node).chain(g.in_edges(*node)) {
                        let touch = EdgeTouch {
                            edge: e.id,
                            source: e.source(),
                            target: e.target(),
                        };
                        // A self-loop shows up in both scans; record once.
                        if !eff.removed_edges.contains(&touch) {
                            eff.removed_edges.push(touch);
                        }
                    }
                    g.remove_node(*node)?;
                    eff.removed_nodes.push(*node);
                }
                DeltaOp::AddEdge {
                    source,
                    target,
                    label,
                } => {
                    let edge = g.add_edge(*source, *target, label.clone())?;
                    eff.added_edges.push(EdgeTouch {
                        edge,
                        source: *source,
                        target: *target,
                    });
                }
                DeltaOp::RemoveEdge { edge } => {
                    let (source, target) = g
                        .edge_endpoints(*edge)
                        .ok_or(GraphError::MissingEdge(*edge))?;
                    g.remove_edge(*edge)?;
                    eff.removed_edges.push(EdgeTouch {
                        edge: *edge,
                        source,
                        target,
                    });
                }
                DeltaOp::SetNodeProperty { node, name, value } => {
                    if !g.contains_node(*node) {
                        return Err(GraphError::MissingNode(*node));
                    }
                    g.set_node_property(*node, name.clone(), value.clone());
                    eff.node_prop_changes.push(*node);
                }
                DeltaOp::RemoveNodeProperty { node, name } => {
                    if !g.contains_node(*node) {
                        return Err(GraphError::MissingNode(*node));
                    }
                    if g.remove_node_property(*node, name).is_some() {
                        eff.node_prop_changes.push(*node);
                    }
                }
                DeltaOp::SetEdgeProperty { edge, name, value } => {
                    if !g.contains_edge(*edge) {
                        return Err(GraphError::MissingEdge(*edge));
                    }
                    let (source, target) = g.edge_endpoints(*edge).expect("checked live");
                    g.set_edge_property(*edge, name.clone(), value.clone());
                    eff.edge_prop_changes.push(EdgeTouch {
                        edge: *edge,
                        source,
                        target,
                    });
                }
                DeltaOp::RemoveEdgeProperty { edge, name } => {
                    let (source, target) = g
                        .edge_endpoints(*edge)
                        .ok_or(GraphError::MissingEdge(*edge))?;
                    if g.remove_edge_property(*edge, name).is_some() {
                        eff.edge_prop_changes.push(EdgeTouch {
                            edge: *edge,
                            source,
                            target,
                        });
                    }
                }
                DeltaOp::SetNodeLabel { node, label } => {
                    g.set_node_label(*node, label.clone())?;
                    eff.relabelled_nodes.push(*node);
                }
            }
        }
        Ok(eff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> (PropertyGraph, NodeId, NodeId, EdgeId) {
        let mut g = PropertyGraph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let e = g.add_edge(a, b, "rel").unwrap();
        (g, a, b, e)
    }

    #[test]
    fn add_ops_assign_dense_ids() {
        let (mut g, a, _, _) = seeded();
        let next_node = NodeId::from_index(g.node_index_bound());
        let delta = GraphDelta::new()
            .add_node("C")
            .add_edge(a, next_node, "to_c");
        let eff = delta.apply_to(&mut g).unwrap();
        assert_eq!(eff.added_nodes, vec![next_node]);
        assert_eq!(eff.added_edges.len(), 1);
        assert_eq!(g.node_label(next_node), Some("C"));
        assert_eq!(
            g.edge_endpoints(eff.added_edges[0].edge),
            Some((a, next_node))
        );
    }

    #[test]
    fn remove_node_captures_cascaded_edges() {
        let (mut g, a, b, e) = seeded();
        let back = g.add_edge(b, a, "back").unwrap();
        let loop_e = g.add_edge(a, a, "self").unwrap();
        let eff = GraphDelta::new().remove_node(a).apply_to(&mut g).unwrap();
        assert_eq!(eff.removed_nodes, vec![a]);
        let removed: Vec<EdgeId> = eff.removed_edges.iter().map(|t| t.edge).collect();
        assert!(removed.contains(&e));
        assert!(removed.contains(&back));
        assert!(removed.contains(&loop_e));
        // The self-loop is listed once despite appearing in both scans.
        assert_eq!(eff.removed_edges.len(), 3);
        assert_eq!(eff.removed_edges[0].source, a);
        assert!(!g.contains_node(a));
    }

    #[test]
    fn property_ops_report_changes_and_noops() {
        let (mut g, a, _, e) = seeded();
        let eff = GraphDelta::new()
            .set_node_property(a, "x", Value::Int(1))
            .remove_node_property(a, "absent")
            .set_edge_property(e, "w", Value::Float(0.5))
            .remove_edge_property(e, "w")
            .apply_to(&mut g)
            .unwrap();
        assert_eq!(eff.node_prop_changes, vec![a]);
        assert_eq!(eff.edge_prop_changes.len(), 2); // set + remove
        assert_eq!(g.node_property(a, "x"), Some(&Value::Int(1)));
        assert_eq!(g.edge_property(e, "w"), None);
    }

    #[test]
    fn errors_name_the_missing_element() {
        let (mut g, a, ..) = seeded();
        let ghost = NodeId::from_index(99);
        let err = GraphDelta::new()
            .set_node_property(ghost, "x", Value::Int(1))
            .apply_to(&mut g)
            .unwrap_err();
        assert_eq!(err, GraphError::MissingNode(ghost));
        // Ops preceding the failure stay applied.
        let partial = GraphDelta::new()
            .set_node_property(a, "ok", Value::Bool(true))
            .remove_node(ghost);
        assert!(partial.apply_to(&mut g).is_err());
        assert_eq!(g.node_property(a, "ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn relabel_is_reported() {
        let (mut g, a, ..) = seeded();
        let eff = GraphDelta::new()
            .set_node_label(a, "Admin")
            .apply_to(&mut g)
            .unwrap();
        assert_eq!(eff.relabelled_nodes, vec![a]);
        assert_eq!(g.node_label(a), Some("Admin"));
        assert!(!eff.is_empty());
        assert!(GraphDelta::new().apply_to(&mut g).unwrap().is_empty());
    }
}
