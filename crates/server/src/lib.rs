//! # pg-server — the `pg-schemad` validation daemon
//!
//! Long-lived serving layer over the validation engines of [`pg_schema`]:
//! the paper frames schema validation as the decision problem a graph
//! database runs *continuously* (Theorem 1), and this crate is that
//! database-side service. It is built on `std` alone — `std::net` plus a
//! hand-rolled HTTP/1.1 — to match the workspace's offline vendoring
//! constraint.
//!
//! ## Architecture
//!
//! * one **accept thread** owns the listener, pushing connections onto a
//!   [bounded queue](pool::BoundedQueue); when the queue is full the
//!   accept thread itself answers `503` + `Retry-After` and closes the
//!   socket, so saturation sheds load instead of queueing unboundedly;
//! * a **worker pool** ([`ServerConfig::threads`]) pops connections and
//!   serves keep-alive request loops;
//! * a **session registry** ([`registry::SessionRegistry`]) holds one
//!   [`pg_schema::IncrementalEngine`] per session behind a per-session
//!   mutex — deltas to different sessions never contend;
//! * **graceful shutdown**: SIGTERM / ctrl-c (see [`signal`]) flips a
//!   shared flag; the accept loop stops, queued connections drain, and
//!   each worker finishes its in-flight request before exiting.
//!
//! ## HTTP surface
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /validate?engine=naive\|indexed\|parallel\|incremental` | stateless one-shot validation |
//! | `POST /sessions` | create an incremental session (schema + graph) |
//! | `POST /sessions/{id}/deltas` | apply a [`pgraph::GraphDelta`], returns the patched report |
//! | `GET /sessions/{id}/report` | current report |
//! | `GET /sessions/{id}/graph` | current graph document |
//! | `POST /sessions/{id}/compact` | snapshot the store, drop superseded WAL segments |
//! | `DELETE /sessions/{id}` | drop the session |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | Prometheus text format ([`metrics::Metrics`]) |
//!
//! ## Durability
//!
//! With `--data-dir` the registry is backed by a [`pg_store::Store`]:
//! session creates, deltas and deletes are appended to a checksummed WAL
//! before the response is acknowledged (fsync timing set by `--fsync
//! always|interval[:millis]|never`), and startup replays newest valid
//! snapshot + WAL tail, tolerating torn tails. Sessions come back
//! *dormant* and revalidate lazily on their first report. `--max-sessions`
//! bounds the registry with LRU eviction; evicted ids answer `410 Gone`.
//!
//! Request and response bodies reuse the `pgraph::json` value types and
//! (de)serializers — the server adds no JSON parser of its own.
//!
//! The `pgload` binary (in `src/bin`) is the matching load generator:
//! N concurrent connections of mixed one-shot/delta traffic, reporting
//! throughput and p50/p95/p99 latency (EXPERIMENTS.md §E3s), plus a
//! `--smoke` mode CI uses to exercise the surface end to end.

#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod server;
pub mod signal;
pub mod workload;

pub use server::{LogFormat, Server, ServerConfig};
