//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    /// Bounds as an inclusive `(lo, hi)` pair.
    pub fn bounds(self) -> (usize, usize) {
        (self.lo, self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing a `Vec` whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`](fn@vec).
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let (lo, hi) = self.size.bounds();
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn length_respects_all_size_range_forms() {
        let mut rng = TestRng::for_case("vec-sizes", 0);
        for _ in 0..200 {
            assert_eq!(vec(Just(0u8), 3usize).generate(&mut rng).len(), 3);
            let a = vec(Just(0u8), 1..4).generate(&mut rng).len();
            assert!((1..4).contains(&a));
            let b = vec(Just(0u8), 2..=5).generate(&mut rng).len();
            assert!((2..=5).contains(&b));
        }
    }
}
