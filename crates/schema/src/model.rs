//! The schema data model (Definition 4.1).

use std::collections::HashMap;

use pgraph::Value;

use crate::wrap::WrappedType;

/// Index of a named type in a [`Schema`] (an element of `T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(u32);

impl TypeId {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Constructs from a raw index (used by tests and generators).
    pub fn from_index(ix: usize) -> Self {
        TypeId(ix as u32)
    }
}

/// The five built-in scalar types (§3.5 of the GraphQL spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinScalar {
    /// 32-bit signed integers (spec §3.5.1).
    Int,
    /// IEEE-754 doubles (spec §3.5.2).
    Float,
    /// UTF-8 strings (spec §3.5.3).
    String,
    /// Booleans (spec §3.5.4).
    Boolean,
    /// Identifiers (spec §3.5.5); serialised as strings, also accepting
    /// integer input.
    Id,
}

impl BuiltinScalar {
    /// The scalar's SDL name.
    pub fn name(self) -> &'static str {
        match self {
            BuiltinScalar::Int => "Int",
            BuiltinScalar::Float => "Float",
            BuiltinScalar::String => "String",
            BuiltinScalar::Boolean => "Boolean",
            BuiltinScalar::Id => "ID",
        }
    }

    /// All five built-ins.
    pub const ALL: [BuiltinScalar; 5] = [
        BuiltinScalar::Int,
        BuiltinScalar::Float,
        BuiltinScalar::String,
        BuiltinScalar::Boolean,
        BuiltinScalar::Id,
    ];
}

/// Detail of a scalar type (an element of `S`). Following footnote 1 of
/// the paper, enums are folded into the scalars: an enum is a scalar whose
/// `values(t)` is its symbol set.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarInfo {
    /// One of the five built-ins.
    Builtin(BuiltinScalar),
    /// A user-declared `scalar` type. Its value set is unconstrained
    /// (any atomic value), which is the only sound reading of an opaque
    /// scalar like `scalar Time` in the paper's Example 3.1.
    Custom,
    /// An enum type; the payload is its symbol set.
    Enum(Vec<String>),
}

/// An applied directive — a pair `(d, argvals) ∈ D × AV` (Definition 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedDirective {
    /// The directive name `d`.
    pub name: String,
    /// The partial function `argvals : A ⇀ values`.
    pub args: Vec<(String, Value)>,
}

impl AppliedDirective {
    /// Value of argument `name`, if supplied.
    pub fn arg(&self, name: &str) -> Option<&Value> {
        self.args.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// A field argument definition (one entry of `typeAF`).
#[derive(Debug, Clone, PartialEq)]
pub struct ArgInfo {
    /// The argument's name (an element of `A`).
    pub name: String,
    /// The argument's type — an element of `S ∪ W_S` if the argument is
    /// usable as an edge-property specification; arguments whose declared
    /// type is not scalar-based are recorded with `scalar_based == false`
    /// and ignored by the Property-Graph semantics (paper §3.6).
    pub ty: WrappedType,
    /// True if `ty`'s base is a scalar (incl. enum) type.
    pub scalar_based: bool,
    /// Default value, if declared (kept for SDL fidelity; the paper's
    /// semantics does not use defaults).
    pub default: Option<Value>,
    /// Directives applied to the argument (`directivesAF`).
    pub directives: Vec<AppliedDirective>,
}

/// A field definition (one entry of `typeF`).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldInfo {
    /// The field's name (an element of `F`).
    pub name: String,
    /// The field's (possibly wrapped) type.
    pub ty: WrappedType,
    /// Argument definitions.
    pub args: Vec<ArgInfo>,
    /// Directives applied to the field (`directivesF`).
    pub directives: Vec<AppliedDirective>,
}

impl FieldInfo {
    /// The argument named `name`, if declared.
    pub fn arg(&self, name: &str) -> Option<&ArgInfo> {
        self.args.iter().find(|a| a.name == name)
    }

    /// True if a directive with this name is applied to the field.
    pub fn has_directive(&self, name: &str) -> bool {
        self.directives.iter().any(|d| d.name == name)
    }
}

/// Data common to object and interface types: an ordered field list with
/// an index by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObjectInfo {
    /// Interfaces this object type implements (object types only; always
    /// empty for interfaces — interface hierarchies don't exist in the
    /// June 2018 SDL).
    pub implements: Vec<TypeId>,
    /// Field definitions in declaration order.
    pub fields: Vec<FieldInfo>,
    pub(crate) field_index: HashMap<String, usize>,
}

impl ObjectInfo {
    /// The field named `name` (the paper's `fieldsS(t)` membership +
    /// `typeF` lookup in one).
    pub fn field(&self, name: &str) -> Option<&FieldInfo> {
        self.field_index.get(name).map(|&ix| &self.fields[ix])
    }
}

/// What a named type is (partition of `T` into `OT ∪ IT ∪ UT ∪ S`).
#[derive(Debug, Clone, PartialEq)]
pub enum TypeKind {
    /// An object type (element of `OT`).
    Object(ObjectInfo),
    /// An interface type (element of `IT`).
    Interface(ObjectInfo),
    /// A union type (element of `UT`) with its member object types.
    Union(Vec<TypeId>),
    /// A scalar or enum type (element of `S`).
    Scalar(ScalarInfo),
}

/// One named type with its metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeInfo {
    /// The type's name.
    pub name: String,
    /// The type's kind and payload.
    pub kind: TypeKind,
    /// Directives applied to the type definition (`directivesT`), e.g.
    /// `@key(fields: ["id"])`.
    pub directives: Vec<AppliedDirective>,
}

/// A directive declaration — one row of `typeAD` per argument.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectiveDecl {
    /// The directive's name (without `@`).
    pub name: String,
    /// Declared arguments with their (scalar-based) types.
    pub args: Vec<ArgInfo>,
    /// Declared locations (upper-case SDL location names). Empty means
    /// "anywhere" (used for the built-ins, which the paper declares
    /// without location restrictions).
    pub locations: Vec<String>,
}

impl DirectiveDecl {
    /// The declared argument named `name`.
    pub fn arg(&self, name: &str) -> Option<&ArgInfo> {
        self.args.iter().find(|a| a.name == name)
    }
}

/// A consistent-by-construction GraphQL schema over `(F, A, T, S, D)`.
///
/// Build one with [`crate::build_schema`]; query it through the accessor
/// methods. Type ids are dense indexes, so downstream engines can use
/// plain vectors keyed by `TypeId`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    pub(crate) types: Vec<TypeInfo>,
    pub(crate) by_name: HashMap<String, TypeId>,
    pub(crate) directive_decls: Vec<DirectiveDecl>,
    pub(crate) dir_by_name: HashMap<String, usize>,
    /// implementors\[it.index()\] = object types implementing `it`
    /// (empty vec for non-interfaces).
    pub(crate) implementors: Vec<Vec<TypeId>>,
    /// Names of input object types that were present in the SDL document
    /// but are ignored by the Property-Graph semantics (paper §3.6).
    pub(crate) ignored_input_types: Vec<String>,
}

impl Schema {
    /// Looks a type up by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// The type's name.
    pub fn type_name(&self, id: TypeId) -> &str {
        &self.types[id.index()].name
    }

    /// The type's full metadata.
    pub fn type_info(&self, id: TypeId) -> &TypeInfo {
        &self.types[id.index()]
    }

    /// Number of named types, `|T|`.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// All type ids.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> {
        (0..self.types.len() as u32).map(TypeId)
    }

    /// All object types (`OT`).
    pub fn object_types(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.type_ids()
            .filter(|id| matches!(self.types[id.index()].kind, TypeKind::Object(_)))
    }

    /// All interface types (`IT`).
    pub fn interface_types(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.type_ids()
            .filter(|id| matches!(self.types[id.index()].kind, TypeKind::Interface(_)))
    }

    /// All union types (`UT`).
    pub fn union_types(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.type_ids()
            .filter(|id| matches!(self.types[id.index()].kind, TypeKind::Union(_)))
    }

    /// The object payload if `id` is an object type.
    pub fn object_type(&self, id: TypeId) -> Option<&ObjectInfo> {
        match &self.types[id.index()].kind {
            TypeKind::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The interface payload if `id` is an interface type.
    pub fn interface_type(&self, id: TypeId) -> Option<&ObjectInfo> {
        match &self.types[id.index()].kind {
            TypeKind::Interface(o) => Some(o),
            _ => None,
        }
    }

    /// The fields of an object or interface type (`fieldsS(t)`), empty for
    /// other kinds.
    pub fn fields(&self, id: TypeId) -> impl Iterator<Item = &FieldInfo> {
        let obj = match &self.types[id.index()].kind {
            TypeKind::Object(o) | TypeKind::Interface(o) => Some(o),
            _ => None,
        };
        obj.into_iter().flat_map(|o| o.fields.iter())
    }

    /// `typeF(t, f)` together with the rest of the field definition.
    pub fn field(&self, t: TypeId, name: &str) -> Option<&FieldInfo> {
        match &self.types[t.index()].kind {
            TypeKind::Object(o) | TypeKind::Interface(o) => o.field(name),
            _ => None,
        }
    }

    /// `unionS(t)` — member object types of a union.
    pub fn union_members(&self, id: TypeId) -> &[TypeId] {
        match &self.types[id.index()].kind {
            TypeKind::Union(ms) => ms,
            _ => &[],
        }
    }

    /// `implementationS(t)` — object types implementing interface `t`.
    pub fn implementors(&self, id: TypeId) -> &[TypeId] {
        self.implementors.get(id.index()).map_or(&[], Vec::as_slice)
    }

    /// True if `id` is a scalar (including enum) type — membership in `S`.
    pub fn is_scalar(&self, id: TypeId) -> bool {
        matches!(self.types[id.index()].kind, TypeKind::Scalar(_))
    }

    /// True if `id` is an object type — membership in `OT`.
    pub fn is_object(&self, id: TypeId) -> bool {
        matches!(self.types[id.index()].kind, TypeKind::Object(_))
    }

    /// The scalar payload if `id` is a scalar type.
    pub fn scalar_info(&self, id: TypeId) -> Option<&ScalarInfo> {
        match &self.types[id.index()].kind {
            TypeKind::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// Directives applied to a type definition (`directivesT(t)`).
    pub fn type_directives(&self, id: TypeId) -> &[AppliedDirective] {
        &self.types[id.index()].directives
    }

    /// The declaration of directive `name` (`typeAD` rows).
    pub fn directive_decl(&self, name: &str) -> Option<&DirectiveDecl> {
        self.dir_by_name
            .get(name)
            .map(|&ix| &self.directive_decls[ix])
    }

    /// All declared directives (the set `D`).
    pub fn directive_decls(&self) -> &[DirectiveDecl] {
        &self.directive_decls
    }

    /// Input object types that appeared in the source document but are not
    /// part of the formal schema (paper §3.6).
    pub fn ignored_input_types(&self) -> &[String] {
        &self.ignored_input_types
    }

    /// Renders a wrapped type using this schema's names.
    pub fn display_type(&self, ty: &WrappedType) -> String {
        let name = self.type_name(ty.base);
        match ty.wrap {
            crate::Wrap::Bare => name.to_owned(),
            crate::Wrap::NonNull => format!("{name}!"),
            crate::Wrap::List {
                inner_non_null,
                outer_non_null,
            } => format!(
                "[{name}{}]{}",
                if inner_non_null { "!" } else { "" },
                if outer_non_null { "!" } else { "" }
            ),
        }
    }
}
