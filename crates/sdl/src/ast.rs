//! Abstract syntax of SDL documents (spec §3, type-system definitions).
//!
//! Spans are recorded on every definition and field so that later layers
//! (schema building, consistency checking) can point diagnostics at source
//! locations. Span values are ignored by `PartialEq` comparisons of the
//! *printer round-trip tests* by re-parsing, so they do not obstruct
//! structural equality where it matters.

use std::fmt;

use crate::token::Span;

/// A parsed SDL document.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// All type-system definitions in source order.
    pub definitions: Vec<Definition>,
}

impl Document {
    /// All object type definitions.
    pub fn object_types(&self) -> impl Iterator<Item = &ObjectTypeDef> {
        self.definitions.iter().filter_map(|d| match d {
            Definition::Type(TypeDef::Object(o)) => Some(o),
            _ => None,
        })
    }

    /// All interface type definitions.
    pub fn interface_types(&self) -> impl Iterator<Item = &InterfaceTypeDef> {
        self.definitions.iter().filter_map(|d| match d {
            Definition::Type(TypeDef::Interface(i)) => Some(i),
            _ => None,
        })
    }

    /// All union type definitions.
    pub fn union_types(&self) -> impl Iterator<Item = &UnionTypeDef> {
        self.definitions.iter().filter_map(|d| match d {
            Definition::Type(TypeDef::Union(u)) => Some(u),
            _ => None,
        })
    }

    /// Finds a type definition by name.
    pub fn type_def(&self, name: &str) -> Option<&TypeDef> {
        self.definitions.iter().find_map(|d| match d {
            Definition::Type(t) if t.name() == name => Some(t),
            _ => None,
        })
    }
}

/// A top-level definition.
#[derive(Debug, Clone, PartialEq)]
pub enum Definition {
    /// A `schema { query: ... }` block (root operation types). Recognised
    /// and representable, but the Property-Graph-schema semantics ignores
    /// it (§3.6 of the paper).
    Schema(SchemaDef),
    /// A named type definition.
    Type(TypeDef),
    /// A type extension, e.g. `extend type User { … }` (spec §3.4.3).
    /// The payload reuses [`TypeDef`]; its name is the extension target.
    /// Fold extensions away with [`crate::extensions::merge_extensions`].
    Extend(TypeDef),
    /// A `directive @name(...) on ...` definition.
    Directive(DirectiveDef),
}

/// A `schema` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaDef {
    /// Directives applied to the schema block.
    pub directives: Vec<DirectiveUse>,
    /// `(operation, type name)` pairs: `query`, `mutation`, `subscription`.
    pub operations: Vec<(OperationKind, String)>,
    /// Source location.
    pub span: Span,
}

/// One of the three root operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperationKind {
    /// `query`
    Query,
    /// `mutation`
    Mutation,
    /// `subscription`
    Subscription,
}

impl fmt::Display for OperationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OperationKind::Query => "query",
            OperationKind::Mutation => "mutation",
            OperationKind::Subscription => "subscription",
        })
    }
}

/// Any named type definition.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeDef {
    /// `scalar Time`
    Scalar(ScalarTypeDef),
    /// `type User { ... }`
    Object(ObjectTypeDef),
    /// `interface Food { ... }`
    Interface(InterfaceTypeDef),
    /// `union Food = Pizza | Pasta`
    Union(UnionTypeDef),
    /// `enum LenUnit { METER FEET }`
    Enum(EnumTypeDef),
    /// `input Point { x: Float y: Float }`
    InputObject(InputObjectTypeDef),
}

impl TypeDef {
    /// The defined type's name.
    pub fn name(&self) -> &str {
        match self {
            TypeDef::Scalar(d) => &d.name,
            TypeDef::Object(d) => &d.name,
            TypeDef::Interface(d) => &d.name,
            TypeDef::Union(d) => &d.name,
            TypeDef::Enum(d) => &d.name,
            TypeDef::InputObject(d) => &d.name,
        }
    }

    /// The definition's source location.
    pub fn span(&self) -> Span {
        match self {
            TypeDef::Scalar(d) => d.span,
            TypeDef::Object(d) => d.span,
            TypeDef::Interface(d) => d.span,
            TypeDef::Union(d) => d.span,
            TypeDef::Enum(d) => d.span,
            TypeDef::InputObject(d) => d.span,
        }
    }
}

/// `scalar Name`
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarTypeDef {
    /// Optional description string.
    pub description: Option<String>,
    /// The scalar's name.
    pub name: String,
    /// Applied directives.
    pub directives: Vec<DirectiveUse>,
    /// Source location.
    pub span: Span,
}

/// `type Name implements A & B @dir { fields }`
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectTypeDef {
    /// Optional description string.
    pub description: Option<String>,
    /// The object type's name.
    pub name: String,
    /// Names of implemented interfaces.
    pub implements: Vec<String>,
    /// Applied directives (e.g. `@key(fields: ["id"])`).
    pub directives: Vec<DirectiveUse>,
    /// Field definitions.
    pub fields: Vec<FieldDef>,
    /// Source location.
    pub span: Span,
}

/// `interface Name { fields }`
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceTypeDef {
    /// Optional description string.
    pub description: Option<String>,
    /// The interface's name.
    pub name: String,
    /// Applied directives.
    pub directives: Vec<DirectiveUse>,
    /// Field definitions.
    pub fields: Vec<FieldDef>,
    /// Source location.
    pub span: Span,
}

/// `union Name = A | B`
#[derive(Debug, Clone, PartialEq)]
pub struct UnionTypeDef {
    /// Optional description string.
    pub description: Option<String>,
    /// The union's name.
    pub name: String,
    /// Applied directives.
    pub directives: Vec<DirectiveUse>,
    /// The member type names (must be object types).
    pub members: Vec<String>,
    /// Source location.
    pub span: Span,
}

/// `enum Name { VALUES }`
#[derive(Debug, Clone, PartialEq)]
pub struct EnumTypeDef {
    /// Optional description string.
    pub description: Option<String>,
    /// The enum's name.
    pub name: String,
    /// Applied directives.
    pub directives: Vec<DirectiveUse>,
    /// The enum's values.
    pub values: Vec<EnumValueDef>,
    /// Source location.
    pub span: Span,
}

/// One value of an enum type.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumValueDef {
    /// Optional description string.
    pub description: Option<String>,
    /// The symbol, e.g. `METER`.
    pub name: String,
    /// Applied directives.
    pub directives: Vec<DirectiveUse>,
}

/// `input Name { fields }` — representable but ignored by the
/// Property-Graph-schema semantics (paper §3.6 / §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct InputObjectTypeDef {
    /// Optional description string.
    pub description: Option<String>,
    /// The input type's name.
    pub name: String,
    /// Applied directives.
    pub directives: Vec<DirectiveUse>,
    /// Input field definitions.
    pub fields: Vec<InputValueDef>,
    /// Source location.
    pub span: Span,
}

/// A field definition: `name(args): Type @directives`.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDef {
    /// Optional description string.
    pub description: Option<String>,
    /// The field's name.
    pub name: String,
    /// Argument definitions.
    pub args: Vec<InputValueDef>,
    /// The field's (possibly wrapped) type.
    pub ty: Type,
    /// Applied directives.
    pub directives: Vec<DirectiveUse>,
    /// Source location.
    pub span: Span,
}

/// An input value definition: `name: Type = default @directives`.
#[derive(Debug, Clone, PartialEq)]
pub struct InputValueDef {
    /// Optional description string.
    pub description: Option<String>,
    /// The argument's name.
    pub name: String,
    /// The argument's (possibly wrapped) type.
    pub ty: Type,
    /// Optional default value.
    pub default: Option<ConstValue>,
    /// Applied directives.
    pub directives: Vec<DirectiveUse>,
    /// Source location.
    pub span: Span,
}

/// `directive @name(args) repeatable? on LOCATION | ...`
#[derive(Debug, Clone, PartialEq)]
pub struct DirectiveDef {
    /// Optional description string.
    pub description: Option<String>,
    /// The directive's name (without `@`).
    pub name: String,
    /// Argument definitions.
    pub args: Vec<InputValueDef>,
    /// Declared locations, e.g. `FIELD_DEFINITION`.
    pub locations: Vec<String>,
    /// Source location.
    pub span: Span,
}

/// A type reference: named, list-wrapped, or non-null-wrapped.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `Name`
    Named(String),
    /// `[T]`
    List(Box<Type>),
    /// `T!` (the inner type is never itself `NonNull`).
    NonNull(Box<Type>),
}

impl Type {
    /// The underlying named type — the paper's `basetype` function.
    pub fn base_name(&self) -> &str {
        match self {
            Type::Named(n) => n,
            Type::List(t) | Type::NonNull(t) => t.base_name(),
        }
    }

    /// True if a list type occurs anywhere in the wrapping.
    pub fn contains_list(&self) -> bool {
        match self {
            Type::Named(_) => false,
            Type::List(_) => true,
            Type::NonNull(t) => t.contains_list(),
        }
    }

    /// True if the outermost type is non-null.
    pub fn is_non_null(&self) -> bool {
        matches!(self, Type::NonNull(_))
    }

    /// Wrapping depth (number of `List`/`NonNull` layers).
    pub fn depth(&self) -> usize {
        match self {
            Type::Named(_) => 0,
            Type::List(t) | Type::NonNull(t) => 1 + t.depth(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Named(n) => f.write_str(n),
            Type::List(t) => write!(f, "[{t}]"),
            Type::NonNull(t) => write!(f, "{t}!"),
        }
    }
}

/// A constant value (no variables in SDL).
#[derive(Debug, Clone, PartialEq)]
pub enum ConstValue {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    String(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`
    Null,
    /// Enum symbol, e.g. `METER`.
    Enum(String),
    /// List literal.
    List(Vec<ConstValue>),
    /// Input object literal.
    Object(Vec<(String, ConstValue)>),
}

impl fmt::Display for ConstValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstValue::Int(i) => write!(f, "{i}"),
            ConstValue::Float(x) => {
                // Ensure a float round-trips as a float token.
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            ConstValue::String(s) => write!(f, "{s:?}"),
            ConstValue::Bool(b) => write!(f, "{b}"),
            ConstValue::Null => f.write_str("null"),
            ConstValue::Enum(n) => f.write_str(n),
            ConstValue::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            ConstValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// An applied directive: `@name(arg: value, ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectiveUse {
    /// The directive's name (without `@`).
    pub name: String,
    /// Supplied arguments in source order.
    pub args: Vec<(String, ConstValue)>,
    /// Source location.
    pub span: Span,
}

impl DirectiveUse {
    /// The value of argument `name`, if supplied.
    pub fn arg(&self, name: &str) -> Option<&ConstValue> {
        self.args.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Pos, Span};

    fn span() -> Span {
        Span::at(Pos::start())
    }

    #[test]
    fn type_display_covers_the_four_paper_wrappings() {
        let t = Type::Named("T".into());
        assert_eq!(t.to_string(), "T");
        assert_eq!(Type::NonNull(Box::new(t.clone())).to_string(), "T!");
        assert_eq!(Type::List(Box::new(t.clone())).to_string(), "[T]");
        let inner_nn = Type::List(Box::new(Type::NonNull(Box::new(t.clone()))));
        assert_eq!(inner_nn.to_string(), "[T!]");
        assert_eq!(Type::NonNull(Box::new(inner_nn)).to_string(), "[T!]!");
    }

    #[test]
    fn base_name_unwraps() {
        let t = Type::NonNull(Box::new(Type::List(Box::new(Type::NonNull(Box::new(
            Type::Named("X".into()),
        ))))));
        assert_eq!(t.base_name(), "X");
        assert!(t.contains_list());
        assert!(t.is_non_null());
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn const_value_display() {
        assert_eq!(ConstValue::Int(3).to_string(), "3");
        assert_eq!(ConstValue::Float(2.0).to_string(), "2.0");
        assert_eq!(ConstValue::Float(2.5).to_string(), "2.5");
        assert_eq!(ConstValue::String("a\"b".into()).to_string(), r#""a\"b""#);
        assert_eq!(
            ConstValue::List(vec![ConstValue::Int(1), ConstValue::Enum("E".into())]).to_string(),
            "[1, E]"
        );
        assert_eq!(
            ConstValue::Object(vec![("x".into(), ConstValue::Null)]).to_string(),
            "{x: null}"
        );
    }

    #[test]
    fn directive_arg_lookup() {
        let d = DirectiveUse {
            name: "key".into(),
            args: vec![(
                "fields".into(),
                ConstValue::List(vec![ConstValue::String("id".into())]),
            )],
            span: span(),
        };
        assert!(d.arg("fields").is_some());
        assert!(d.arg("other").is_none());
    }
}
