//! Abstract syntax of PG-Schema documents (the supported subset).
//!
//! A document is a single `CREATE GRAPH TYPE` statement. Node types,
//! edge types and key constraints are kept in declaration order; spans
//! are recorded on every construct so the lowering pass can point
//! unsupported-construct and resolution errors at source locations.

use crate::token::Span;

/// Whether a graph type is closed (`STRICT`) or open (`LOOSE`) —
/// PG-Schema's type-mode switch. `STRICT` is the default and maps onto
/// the paper's full rule set (weak + directive + strong); `LOOSE`
/// disables the strong (closed-world) family, leaving the open-world
/// checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TypeMode {
    /// Closed-world: graphs must not use labels/properties/edges outside
    /// the schema (paper rules SS1–SS4 stay on).
    #[default]
    Strict,
    /// Open-world: the strong rule family is off.
    Loose,
}

impl TypeMode {
    /// The canonical lowercase keyword spellings.
    pub const NAMES: &'static [&'static str] = &["strict", "loose"];

    /// The canonical lowercase spelling.
    pub fn name(self) -> &'static str {
        match self {
            TypeMode::Strict => "strict",
            TypeMode::Loose => "loose",
        }
    }
}

impl std::str::FromStr for TypeMode {
    type Err = pgraph::ParseEnumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "strict" => Ok(TypeMode::Strict),
            "loose" => Ok(TypeMode::Loose),
            other => Err(pgraph::ParseEnumError::new("type mode", other, Self::NAMES)),
        }
    }
}

/// A parsed `CREATE GRAPH TYPE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphType {
    /// The graph type's name.
    pub name: String,
    /// `STRICT` (default) or `LOOSE`.
    pub mode: TypeMode,
    /// Node types in declaration order.
    pub nodes: Vec<NodeType>,
    /// Edge types in declaration order.
    pub edges: Vec<EdgeType>,
    /// Key constraints in declaration order.
    pub keys: Vec<KeyConstraint>,
    /// Source location of the statement head.
    pub span: Span,
}

/// A node type: `(Person {name STRING, OPTIONAL age INT})`, optionally
/// `ABSTRACT`, optionally inheriting abstract types through a label
/// conjunction: `(: Message & Post {...})`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeType {
    /// Declared with the `ABSTRACT` prefix — lowered to an interface.
    pub is_abstract: bool,
    /// Declared with a per-type `OPEN` marker. Parsed, but rejected by
    /// lowering: per-type openness has no SDL counterpart (the policy
    /// error names this construct).
    pub open: bool,
    /// The label conjunction, in source order. Exactly one conjunct must
    /// be fresh (it becomes the label = SDL type name); the others must
    /// name previously declared `ABSTRACT` node types (the supertypes).
    pub labels: Vec<String>,
    /// Property definitions.
    pub props: Vec<PropDef>,
    /// Source location.
    pub span: Span,
}

/// One property definition: `OPTIONAL? name TYPE ARRAY?`.
#[derive(Debug, Clone, PartialEq)]
pub struct PropDef {
    /// `OPTIONAL` prefix: the property may be absent.
    pub optional: bool,
    /// The property name.
    pub name: String,
    /// The value type name as written (`STRING`, `INT`, … or a custom
    /// scalar name used verbatim).
    pub ty: String,
    /// `ARRAY` suffix: the property holds a list of values.
    pub array: bool,
    /// Source location.
    pub span: Span,
}

/// An inclusive cardinality interval `min..max`, `max = None` meaning
/// unbounded (`*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cardinality {
    /// Lower bound.
    pub min: u64,
    /// Upper bound; `None` is `*`.
    pub max: Option<u64>,
    /// Source location.
    pub span: Span,
}

/// An edge type:
/// `(:Src)-[:label {props}]->(:Tgt) OUTGOING 0..1 INCOMING 1..* DISTINCT NO LOOPS`.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeType {
    /// The source node label (may be abstract).
    pub source: String,
    /// The edge label — becomes the SDL field name.
    pub label: String,
    /// The target node label.
    pub target: String,
    /// Edge-property definitions.
    pub props: Vec<PropDef>,
    /// Per-source out-degree bounds (`OUTGOING m..n`); default `0..*`.
    pub outgoing: Option<Cardinality>,
    /// Per-target in-degree bounds (`INCOMING m..n`); default `0..*`.
    pub incoming: Option<Cardinality>,
    /// `DISTINCT`: parallel edges collapse (DS1).
    pub distinct: bool,
    /// `NO LOOPS`: self-loops forbidden (DS2).
    pub no_loops: bool,
    /// Source location.
    pub span: Span,
}

/// A key constraint: `FOR (x : Person) KEY x.name, x.birthday`.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyConstraint {
    /// The bound variable (`x`).
    pub var: String,
    /// The constrained node label.
    pub label: String,
    /// The property names forming the key.
    pub fields: Vec<String>,
    /// Source location.
    pub span: Span,
}
