//! Random mutation workloads over live graphs.
//!
//! [`DeltaGen`] draws [`GraphDelta`]s that are **conflict-free by
//! construction** against a given graph: every op references an element
//! that is live at the point the op executes, so
//! [`GraphDelta::apply_to`] never fails. This is what the incremental
//! benchmark (E2i) and the four-way engine-agreement property test feed
//! to [`pg_schema::IncrementalEngine`].
//!
//! Conflict-freedom without cloning the graph relies on the dense
//! continuation-id contract documented on [`GraphDelta`]: the `k`-th
//! `AddNode` of a delta creates `NodeId::from_index(bound + k)` where
//! `bound` is the graph's [`node_index_bound`] at apply time (edges
//! analogously). The generator predicts those ids, so later ops in the
//! same delta can mutate, connect, relabel or remove elements the delta
//! itself creates. Removing a node also retires its incident edges from
//! the generator's live set, mirroring the cascade in `apply_to`.
//!
//! Ops are drawn schema-aware: property writes pick declared attribute
//! fields and (usually) well-typed values, new edges pick declared
//! relationship fields with (usually) subtype-correct targets. A tunable
//! fraction ([`DeltaGenParams::p_break`]) of writes is deliberately
//! ill-typed or mis-targeted, so a generated sequence both introduces
//! and repairs violations — exactly the churn an incremental engine has
//! to track.
//!
//! [`node_index_bound`]: PropertyGraph::node_index_bound

use gql_schema::{BuiltinScalar, ScalarInfo, WrappedType};
use pg_schema::PgSchema;
use pgraph::{EdgeId, GraphDelta, NodeId, PropertyGraph, Value};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters for [`DeltaGen`].
#[derive(Debug, Clone, Copy)]
pub struct DeltaGenParams {
    /// Ops per generated delta.
    pub ops: usize,
    /// Probability an op is structural (add/remove node/edge) rather
    /// than a property write or relabel.
    pub p_structural: f64,
    /// Within structural ops, probability of a removal over an addition.
    pub p_remove: f64,
    /// Probability a property write is deliberately ill-typed, or an
    /// added edge deliberately mis-targeted (violation churn).
    pub p_break: f64,
    /// Base RNG seed for [`DeltaGen::generate`].
    pub seed: u64,
}

impl Default for DeltaGenParams {
    fn default() -> Self {
        DeltaGenParams {
            ops: 16,
            p_structural: 0.3,
            p_remove: 0.35,
            p_break: 0.25,
            seed: 0,
        }
    }
}

/// Draws conflict-free random [`GraphDelta`]s against a schema and a
/// target graph. See the [module docs](self) for the guarantees.
#[derive(Debug, Clone, Copy)]
pub struct DeltaGen<'s> {
    schema: &'s PgSchema,
    params: DeltaGenParams,
}

/// Live elements as the generated delta would leave them, tracked
/// without mutating (or cloning) the target graph.
struct LiveSet {
    /// `(id, current label)` of every live node.
    nodes: Vec<(NodeId, String)>,
    /// `(id, source, target)` of every live edge.
    edges: Vec<(EdgeId, NodeId, NodeId)>,
    next_node: usize,
    next_edge: usize,
}

impl LiveSet {
    fn of(g: &PropertyGraph) -> Self {
        LiveSet {
            nodes: g.nodes().map(|n| (n.id, n.label().to_owned())).collect(),
            edges: g.edges().map(|e| (e.id, e.source(), e.target())).collect(),
            next_node: g.node_index_bound(),
            next_edge: g.edge_index_bound(),
        }
    }

    fn add_node(&mut self, label: String) -> NodeId {
        let id = NodeId::from_index(self.next_node);
        self.next_node += 1;
        self.nodes.push((id, label));
        id
    }

    fn add_edge(&mut self, source: NodeId, target: NodeId) -> EdgeId {
        let id = EdgeId::from_index(self.next_edge);
        self.next_edge += 1;
        self.edges.push((id, source, target));
        id
    }

    /// Retires a node and (mirroring the `apply_to` cascade) its
    /// incident edges.
    fn remove_node(&mut self, ix: usize) -> NodeId {
        let (id, _) = self.nodes.swap_remove(ix);
        self.edges.retain(|&(_, s, t)| s != id && t != id);
        id
    }
}

impl<'s> DeltaGen<'s> {
    /// A generator for mutations of graphs typed against `schema`.
    pub fn new(schema: &'s PgSchema, params: DeltaGenParams) -> Self {
        DeltaGen { schema, params }
    }

    /// Draws one delta against `g` using [`DeltaGenParams::seed`].
    pub fn generate(&self, g: &PropertyGraph) -> GraphDelta {
        self.generate_seeded(g, self.params.seed)
    }

    /// Draws one delta against `g` from an explicit seed — use
    /// ascending seeds for a reproducible mutation *sequence* (apply
    /// each delta before generating the next, so the live set the
    /// generator predicts matches the graph).
    pub fn generate_seeded(&self, g: &PropertyGraph, seed: u64) -> GraphDelta {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live = LiveSet::of(g);
        let mut delta = GraphDelta::new();
        let mut uniq = (seed as usize).wrapping_mul(1_000_003);
        for _ in 0..self.params.ops {
            uniq += 1;
            let op_is_structural = live.nodes.is_empty() || rng.gen_bool(self.params.p_structural);
            if op_is_structural {
                delta = self.structural_op(delta, &mut live, &mut rng, uniq);
            } else {
                delta = self.local_op(delta, &mut live, &mut rng, uniq);
            }
        }
        delta
    }

    fn structural_op(
        &self,
        delta: GraphDelta,
        live: &mut LiveSet,
        rng: &mut StdRng,
        uniq: usize,
    ) -> GraphDelta {
        let removal = !live.nodes.is_empty() && rng.gen_bool(self.params.p_remove);
        if removal {
            if !live.edges.is_empty() && rng.gen_bool(0.6) {
                let ix = rng.gen_range(0..live.edges.len());
                let (e, _, _) = live.edges.swap_remove(ix);
                return delta.remove_edge(e);
            }
            let ix = rng.gen_range(0..live.nodes.len());
            return delta.remove_node(live.remove_node(ix));
        }
        // Addition: an edge needs a live source with a declared
        // relationship field; fall back to a node otherwise.
        if !live.nodes.is_empty() && rng.gen_bool(0.5) {
            let six = rng.gen_range(0..live.nodes.len());
            let (source, ref slabel) = live.nodes[six];
            let rels = self
                .schema
                .label_type(slabel)
                .map_or(&[][..], |t| self.schema.relationships(t));
            if let Some(rel) = rels.choose(rng) {
                let target = self.pick_target(live, rng, &rel.ty);
                live.add_edge(source, target);
                return delta.add_edge(source, target, rel.name.clone());
            }
        }
        let label = self.random_label(rng, uniq);
        live.add_node(label.clone());
        delta.add_node(label)
    }

    fn local_op(
        &self,
        delta: GraphDelta,
        live: &mut LiveSet,
        rng: &mut StdRng,
        uniq: usize,
    ) -> GraphDelta {
        let nix = rng.gen_range(0..live.nodes.len());
        let (node, ref label) = live.nodes[nix];
        let on_edges = !live.edges.is_empty() && rng.gen_bool(0.2);
        if on_edges {
            let &(edge, _, _) = live.edges.choose(rng).expect("non-empty");
            if rng.gen_bool(0.75) {
                return delta.set_edge_property(edge, "since", Value::Int(uniq as i64));
            }
            return delta.remove_edge_property(edge, "since");
        }
        let attrs = self
            .schema
            .label_type(label)
            .map_or(&[][..], |t| self.schema.attributes(t));
        let roll = rng.gen_range(0..10u32);
        match roll {
            0 => {
                let label = self.random_label(rng, uniq);
                live.nodes[nix].1 = label.clone();
                delta.set_node_label(node, label)
            }
            1 | 2 => match attrs.choose(rng) {
                Some(attr) => delta.remove_node_property(node, attr.name.clone()),
                None => delta.remove_node_property(node, "p0"),
            },
            _ => match attrs.choose(rng) {
                Some(attr) => {
                    let value = if rng.gen_bool(self.params.p_break) {
                        self.breaking_value(&attr.ty)
                    } else {
                        self.value_for(&attr.ty, uniq)
                    };
                    delta.set_node_property(node, attr.name.clone(), value)
                }
                // No declared attributes: an unjustified property (SS2).
                None => delta.set_node_property(node, "p0", Value::Int(uniq as i64)),
            },
        }
    }

    /// A target for a new edge: subtype-correct for `ty` unless the
    /// break roll says otherwise (or no legal target is live).
    fn pick_target(&self, live: &LiveSet, rng: &mut StdRng, ty: &WrappedType) -> NodeId {
        if !rng.gen_bool(self.params.p_break) {
            let legal: Vec<NodeId> = live
                .nodes
                .iter()
                .filter(|(_, l)| self.schema.label_subtype_wrapped(l, ty))
                .map(|&(id, _)| id)
                .collect();
            if let Some(&id) = legal.choose(rng) {
                return id;
            }
        }
        live.nodes.choose(rng).expect("non-empty").0
    }

    /// A label for a new or relabelled node: usually a declared object
    /// type, occasionally unknown (SS1 churn).
    fn random_label(&self, rng: &mut StdRng, uniq: usize) -> String {
        let s = self.schema.schema();
        let types: Vec<_> = s.object_types().collect();
        match types.choose(rng) {
            Some(&t) if !rng.gen_bool(self.params.p_break / 4.0) => s.type_name(t).to_owned(),
            _ => format!("Unknown{}", uniq % 3),
        }
    }

    /// A well-typed value for `ty` (mirrors `GraphGen`'s construction).
    fn value_for(&self, ty: &WrappedType, uniq: usize) -> Value {
        let s = self.schema.schema();
        let scalar = match s.scalar_info(ty.base) {
            Some(ScalarInfo::Builtin(b)) => match b {
                BuiltinScalar::Int => Value::Int((uniq as i64) % (i32::MAX as i64)),
                BuiltinScalar::Float => Value::Float(uniq as f64 * 0.25),
                BuiltinScalar::String => Value::String(format!("d{uniq}")),
                BuiltinScalar::Boolean => Value::Bool(uniq.is_multiple_of(2)),
                BuiltinScalar::Id => Value::Id(format!("did{uniq}")),
            },
            Some(ScalarInfo::Enum(symbols)) if !symbols.is_empty() => {
                Value::Enum(symbols[uniq % symbols.len()].clone())
            }
            _ => Value::String(format!("custom{uniq}")),
        };
        if ty.is_list() {
            Value::List(vec![scalar])
        } else {
            scalar
        }
    }

    /// A value certain to violate WS1 for `ty`: wrong scalar kind, and
    /// unwrapped where a list is expected.
    fn breaking_value(&self, ty: &WrappedType) -> Value {
        let s = self.schema.schema();
        match s.scalar_info(ty.base) {
            Some(ScalarInfo::Builtin(BuiltinScalar::Int)) => Value::String("not-an-int".to_owned()),
            _ => Value::Int(-1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::{GraphGen, GraphGenParams};
    use crate::schemagen::social_schema;

    fn setup() -> (PgSchema, PropertyGraph) {
        let schema = PgSchema::parse(social_schema()).unwrap();
        let gen = GraphGen::new(
            &schema,
            GraphGenParams {
                nodes_per_type: 12,
                seed: 7,
                ..Default::default()
            },
        );
        let g = gen.generate_conforming(3).expect("social graph generable");
        (schema, g)
    }

    #[test]
    fn generated_deltas_apply_cleanly() {
        let (schema, g) = setup();
        for seed in 0..20 {
            let gen = DeltaGen::new(
                &schema,
                DeltaGenParams {
                    ops: 40,
                    seed,
                    ..Default::default()
                },
            );
            let delta = gen.generate(&g);
            assert_eq!(delta.len(), 40);
            let mut h = g.clone();
            delta.apply_to(&mut h).unwrap_or_else(|e| {
                panic!("seed {seed}: conflict-free delta failed to apply: {e}")
            });
        }
    }

    #[test]
    fn sequences_apply_cleanly_when_interleaved() {
        let (schema, mut g) = setup();
        let gen = DeltaGen::new(
            &schema,
            DeltaGenParams {
                ops: 25,
                p_structural: 0.6,
                p_remove: 0.5,
                ..Default::default()
            },
        );
        for seed in 100..110 {
            let delta = gen.generate_seeded(&g, seed);
            delta
                .apply_to(&mut g)
                .unwrap_or_else(|e| panic!("step {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (schema, g) = setup();
        let gen = DeltaGen::new(&schema, DeltaGenParams::default());
        let a = gen.generate_seeded(&g, 42);
        let b = gen.generate_seeded(&g, 42);
        assert_eq!(a.ops(), b.ops());
        let c = gen.generate_seeded(&g, 43);
        assert_ne!(a.ops(), c.ops());
    }

    #[test]
    fn deltas_churn_violations_both_ways() {
        let (schema, mut g) = setup();
        let gen = DeltaGen::new(
            &schema,
            DeltaGenParams {
                ops: 30,
                p_break: 0.5,
                ..Default::default()
            },
        );
        let mut counts = Vec::new();
        for seed in 0..12 {
            gen.generate_seeded(&g, seed).apply_to(&mut g).unwrap();
            let report = pg_schema::validate(&g, &schema, &pg_schema::ValidationOptions::default());
            counts.push(report.violations().len());
        }
        assert!(
            counts.windows(2).any(|w| w[1] > w[0]),
            "no delta ever introduced a violation: {counts:?}"
        );
        assert!(
            counts.windows(2).any(|w| w[1] < w[0]),
            "no delta ever repaired a violation: {counts:?}"
        );
    }
}
