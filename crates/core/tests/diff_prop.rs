//! Property tests for `pg_schema::diff` — the contract the migration
//! subsystem stands on:
//!
//! 1. `diff(s, s)` is empty (the diff never invents changes);
//! 2. a diff with no breaking changes really is *compatible*: every
//!    graph that conforms to the old schema still conforms to the new
//!    one. The new schemas are derived from random generated schemas by
//!    the transformations `SchemaChange::compat` classifies as
//!    compatible (type/field additions, constraint/key removals), so a
//!    counterexample indicts the classification itself.

use pg_datagen::{GraphGen, GraphGenParams, SchemaGen, SchemaGenParams};
use pg_schema::diff::diff;
use pg_schema::{validate, PgSchema, ValidationOptions};
use proptest::prelude::*;

fn parse(sdl: &str) -> PgSchema {
    PgSchema::parse(sdl).expect("generated SDL parses")
}

/// Removes the first ` @{name}` directive occurrence whose match is not
/// a prefix of a longer directive name (`@required` inside
/// `@requiredForTarget`).
fn drop_directive(sdl: &str, name: &str) -> String {
    let needle = format!(" @{name}");
    let mut from = 0;
    while let Some(i) = sdl[from..].find(&needle) {
        let at = from + i;
        let end = at + needle.len();
        let next = sdl[end..].chars().next();
        if !next.is_some_and(|c| c.is_ascii_alphanumeric()) {
            return format!("{}{}", &sdl[..at], &sdl[end..]);
        }
        from = end;
    }
    sdl.to_owned()
}

/// Removes the first `@key(...)` clause, if any.
fn drop_key(sdl: &str) -> String {
    match sdl.find(" @key(") {
        Some(at) => {
            let close = sdl[at..].find(')').expect("@key clause closes") + at + 1;
            format!("{}{}", &sdl[..at], &sdl[close..])
        }
        None => sdl.to_owned(),
    }
}

/// Applies one compatible transformation, selected by `which`; `i`
/// uniquifies added names so repeated additions stay well-formed.
fn compatible_mutation(sdl: &str, which: usize, i: usize) -> String {
    match which {
        0 => format!("{sdl}type Zadded{i} {{\n    z0: Int\n    z1: [String!]\n}}\n"),
        1 => {
            // An optional attribute on the first type.
            match sdl.find("}\n") {
                Some(at) => format!("{}    zextra{i}: String\n{}", &sdl[..at], &sdl[at..]),
                None => sdl.to_owned(),
            }
        }
        2 => drop_directive(sdl, "required"),
        3 => drop_directive(sdl, "distinct"),
        4 => drop_directive(sdl, "noLoops"),
        5 => drop_directive(sdl, "uniqueForTarget"),
        6 => drop_directive(sdl, "requiredForTarget"),
        _ => drop_key(sdl),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The diff of a schema against itself is empty, whatever the
    /// schema's shape.
    #[test]
    fn diff_of_a_schema_with_itself_is_empty(seed in any::<u64>(), num_types in 1usize..6) {
        let params = SchemaGenParams { num_types, seed, ..Default::default() };
        let sdl = SchemaGen::new(params).generate();
        let a = parse(&sdl);
        let b = parse(&sdl);
        let d = diff(&a, &b);
        prop_assert!(d.is_empty(), "non-empty self diff:\n{d}\nschema:\n{sdl}");
    }

    /// Compatible-by-construction changes are classified compatible by
    /// the diff, and old-conforming graphs stay clean under the new
    /// schema.
    #[test]
    fn compatible_diffs_preserve_conformance(
        seed in any::<u64>(),
        num_types in 1usize..5,
        mutations in prop::collection::vec(0usize..8, 1..4),
    ) {
        // Benchmarkable parameters: no target-side obligations, so a
        // conforming instance generates on the first attempt.
        let params = SchemaGenParams::benchmarkable(num_types, seed);
        let old_sdl = SchemaGen::new(params).generate();
        let mut new_sdl = old_sdl.clone();
        for (i, which) in mutations.into_iter().enumerate() {
            new_sdl = compatible_mutation(&new_sdl, which, i);
        }
        let old = parse(&old_sdl);
        let new = parse(&new_sdl);

        let d = diff(&old, &new);
        prop_assert!(
            !d.is_breaking(),
            "compatible-by-construction diff classified breaking:\n{d}\nold:\n{old_sdl}\nnew:\n{new_sdl}"
        );

        let graph = GraphGen::new(&old, GraphGenParams { seed, ..Default::default() })
            .generate_conforming(10)
            .expect("benchmarkable schemas admit conforming graphs");
        let report = validate(&graph, &new, &ValidationOptions::default());
        prop_assert!(
            report.conforms(),
            "old-conforming graph violates the compatibly-changed schema:\n{report}\nold:\n{old_sdl}\nnew:\n{new_sdl}"
        );
    }
}
