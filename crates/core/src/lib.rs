//! # pg-schema — GraphQL SDL schemas for Property Graphs
//!
//! The primary contribution of Hartig & Hidders: interpreting a GraphQL
//! schema as a schema *for Property Graphs* and deciding whether a graph
//! satisfies it.
//!
//! The semantics (paper §5) is split into three nested notions, all
//! implemented here rule-by-rule:
//!
//! * **weak satisfaction** — rules [`Rule::WS1`]–[`Rule::WS4`]: typed
//!   node/edge properties, typed edge targets, at-most-one edge for
//!   non-list relationship fields;
//! * **directives satisfaction** — rules [`Rule::DS1`]–[`Rule::DS7`]:
//!   `@distinct`, `@noLoops`, `@uniqueForTarget`, `@requiredForTarget`,
//!   `@required` (for properties and for edges), and `@key`;
//! * **strong satisfaction** — rules [`Rule::SS1`]–[`Rule::SS4`]: every
//!   node, property and edge must be *justified* by a schema element.
//!
//! Four interchangeable engines decide the same relation:
//!
//! * [`Engine::Naive`] transcribes the paper's first-order formulas
//!   directly (nested loops; the `O(n²)`–`O(n³)` algorithm discussed after
//!   Theorem 1),
//! * [`Engine::Indexed`] is the serial production engine: one
//!   `O(|V| + |E|)` indexing pass plus hash-group checks, near-linear in
//!   practice,
//! * [`Engine::Parallel`] shards the node/edge id spaces over worker
//!   threads running the indexed engine's rule checks, merging shard
//!   reports deterministically, and
//! * [`Engine::Incremental`] is the stateless face of the
//!   [`IncrementalEngine`], which keeps a report up to date across
//!   [`pgraph::GraphDelta`] mutations by re-checking only the dirty
//!   region (see the [`incremental`] module for the rule dependency
//!   analysis).
//!
//! Four-way engine agreement is property-tested — including agreement of
//! the incremental engine with full revalidation after arbitrary mutation
//! sequences; benchmarks E2 and E2i in EXPERIMENTS.md measure the
//! separations.
//!
//! ```
//! use pg_schema::{PgSchema, validate, ValidationOptions};
//! use pgraph::GraphBuilder;
//!
//! let doc = gql_sdl::parse(r#"
//!     type User { id: ID! @required login: String! @required }
//! "#).unwrap();
//! let schema = PgSchema::from_document(&doc).unwrap();
//! let graph = GraphBuilder::new()
//!     .node("u", "User")
//!     .prop("u", "id", "u-1")
//!     .prop("u", "login", "alice")
//!     .build()
//!     .unwrap();
//! let report = validate(&graph, &schema, &ValidationOptions::default());
//! assert!(report.conforms());
//! ```
//!
//! Non-default runs are configured through the builder:
//!
//! ```
//! use pg_schema::{Engine, ValidationOptions};
//!
//! let options = ValidationOptions::builder()
//!     .engine(Engine::Parallel)
//!     .threads(4)
//!     .max_violations(100)
//!     .collect_metrics(true)
//!     .build();
//! assert_eq!(options.engine, Engine::Parallel);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api_extension;
pub mod diff;
pub mod incremental;
mod indexed;
mod metrics;
pub mod migrate;
mod naive;
mod parallel;
mod pgschema;
pub mod report;
mod rules;

pub use api_extension::ApiExtensionError;
pub use incremental::{DeltaOutcome, IncrementalEngine};
pub use migrate::{ChangeImpact, MigrationPlan};
pub use pgschema::{
    AttributeDef, ConstraintSite, FieldClass, KeyConstraint, PgSchema, PgSchemaError,
    RelationshipDef,
};
pub use report::{
    FamilyMetrics, Rule, RuleFamily, RuleMetrics, ValidationMetrics, ValidationReport, Violation,
};

/// Which implementation decides satisfaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Direct transcription of the paper's first-order rules
    /// (quadratic/cubic nested loops). Reference implementation.
    Naive,
    /// Index-assisted serial engine (near-linear). Default.
    #[default]
    Indexed,
    /// Sharded multi-threaded engine: the id space is partitioned into
    /// per-worker slices running the indexed checks; cross-shard rules
    /// (`@key`) aggregate shard-local tables in one merge pass. Worker
    /// count comes from [`ValidationOptions::threads`].
    Parallel,
    /// Delta-driven engine. A bare [`validate`] call has no prior report
    /// to patch, so this degenerates to one full indexed-library pass;
    /// the speedup comes from holding an [`IncrementalEngine`] session
    /// and feeding it [`pgraph::GraphDelta`]s.
    Incremental,
}

impl Engine {
    /// The engine's wire name, as reported by
    /// [`ValidationReport::engine`] and the CLI's `--engine` flag.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Naive => "naive",
            Engine::Indexed => "indexed",
            Engine::Parallel => "parallel",
            Engine::Incremental => "incremental",
        }
    }

    /// The accepted spellings of [`FromStr`](std::str::FromStr), in
    /// declaration order.
    pub const NAMES: &'static [&'static str] = &["naive", "indexed", "parallel", "incremental"];
}

/// Parses a wire name back into an engine — the inverse of
/// [`Engine::name`], shared by the CLI's `--engine` flag and the
/// validation server's `?engine=` query parameter. The error lists the
/// accepted spellings.
impl std::str::FromStr for Engine {
    type Err = pgraph::ParseEnumError;

    fn from_str(name: &str) -> Result<Engine, Self::Err> {
        match name {
            "naive" => Ok(Engine::Naive),
            "indexed" => Ok(Engine::Indexed),
            "parallel" => Ok(Engine::Parallel),
            "incremental" => Ok(Engine::Incremental),
            _ => Err(pgraph::ParseEnumError::new("engine", name, Engine::NAMES)),
        }
    }
}

/// Which rule families to check, with which engine, and under which
/// resource limits.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`ValidationOptions::builder`] (or the [`Default`]/
/// [`with_engine`](Self::with_engine)/[`weak_only`](Self::weak_only)
/// shorthands) rather than a struct literal, so adding options stays a
/// compatible change.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationOptions {
    /// The engine to use.
    pub engine: Engine,
    /// Check weak satisfaction (WS1–WS4). Default true.
    pub weak: bool,
    /// Check directive satisfaction (DS1–DS7). Default true.
    pub directives: bool,
    /// Check strong satisfaction (SS1–SS4). Default true.
    pub strong: bool,
    /// Worker threads for [`Engine::Parallel`]; `0` (default) means one
    /// per available CPU. Serial engines ignore this.
    pub threads: usize,
    /// Stop collecting after this many violations and mark the report
    /// [`truncated`](ValidationReport::truncated). `None` (default)
    /// reports everything.
    pub max_violations: Option<usize>,
    /// Record [`ValidationMetrics`] (per-family wall time, scan counters,
    /// shard sizes) on the report. Default false.
    pub collect_metrics: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            engine: Engine::Indexed,
            weak: true,
            directives: true,
            strong: true,
            threads: 0,
            max_violations: None,
            collect_metrics: false,
        }
    }
}

impl ValidationOptions {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> ValidationOptionsBuilder {
        ValidationOptionsBuilder {
            options: ValidationOptions::default(),
        }
    }

    /// All rule families with the given engine.
    pub fn with_engine(engine: Engine) -> Self {
        ValidationOptions {
            engine,
            ..Default::default()
        }
    }

    /// Only weak satisfaction (Definition 5.1).
    pub fn weak_only() -> Self {
        ValidationOptions {
            weak: true,
            directives: false,
            strong: false,
            ..Default::default()
        }
    }
}

/// Builder for [`ValidationOptions`].
///
/// ```
/// use pg_schema::{Engine, ValidationOptions};
///
/// // Weak + directives only, naive engine, stop after 10 violations.
/// let options = ValidationOptions::builder()
///     .engine(Engine::Naive)
///     .families(true, true, false)
///     .max_violations(10)
///     .build();
/// assert!(!options.strong);
/// assert_eq!(options.max_violations, Some(10));
/// ```
#[derive(Debug, Clone)]
pub struct ValidationOptionsBuilder {
    options: ValidationOptions,
}

impl ValidationOptionsBuilder {
    /// Selects the engine (default [`Engine::Indexed`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.options.engine = engine;
        self
    }

    /// Selects the rule families to check: weak (WS1–WS4), directives
    /// (DS1–DS7), strong (SS1–SS4). Default all three.
    pub fn families(mut self, weak: bool, directives: bool, strong: bool) -> Self {
        self.options.weak = weak;
        self.options.directives = directives;
        self.options.strong = strong;
        self
    }

    /// Worker threads for [`Engine::Parallel`] (`0` = one per CPU).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Stops collecting after `max` violations; the report is then marked
    /// [`truncated`](ValidationReport::truncated).
    pub fn max_violations(mut self, max: usize) -> Self {
        self.options.max_violations = Some(max);
        self
    }

    /// Records [`ValidationMetrics`] on the report.
    pub fn collect_metrics(mut self, collect: bool) -> Self {
        self.options.collect_metrics = collect;
        self
    }

    /// Finishes, yielding the configuration.
    pub fn build(self) -> ValidationOptions {
        self.options
    }
}

/// Validates `graph` against `schema` — the Schema Validation Problem of
/// §6.1 ("Does G strongly satisfy S?"), with per-rule violation reporting.
pub fn validate(
    graph: &pgraph::PropertyGraph,
    schema: &PgSchema,
    options: &ValidationOptions,
) -> ValidationReport {
    let mut report = match options.engine {
        Engine::Naive => naive::run(graph, schema, options),
        Engine::Indexed => indexed::run(graph, schema, options),
        Engine::Parallel => parallel::run(graph, schema, options),
        Engine::Incremental => incremental::run(graph, schema, options),
    };
    report.set_engine(options.engine.name());
    // Once the limit is reached the engines stop scanning, so whether
    // further violations exist is unknown — that is what `truncated`
    // reports. Checked before canonicalisation, which may dedup the
    // report back below the limit.
    if report.at_limit() {
        report.set_truncated(true);
    }
    report.canonicalize();
    report
}

/// Convenience: true iff `graph` strongly satisfies `schema`
/// (Definition 5.3).
pub fn strongly_satisfies(graph: &pgraph::PropertyGraph, schema: &PgSchema) -> bool {
    validate(graph, schema, &ValidationOptions::default()).conforms()
}
