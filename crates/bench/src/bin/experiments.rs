//! Regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p pg-bench --bin experiments            # all
//! cargo run --release -p pg-bench --bin experiments -- E2 E4   # subset
//! cargo run --release -p pg-bench --bin experiments -- --quick # small sizes
//! ```

use pg_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let run = |id: &str| wanted.is_empty() || wanted.contains(&id);

    if run("E1") {
        println!("## E1 — cardinality combinations (§3.3 table)\n");
        println!("{}", tables::cardinality_table());
    }
    if run("E2") {
        println!("## E2 — validation scaling (Theorem 1)\n");
        let (sizes, cap, iters): (&[usize], usize, usize) = if quick {
            (&[100, 200, 400], 400, 3)
        } else {
            (&[250, 500, 1000, 2000, 4000, 8000], 1000, 5)
        };
        println!("{}", tables::validation_scaling(sizes, cap, iters));
    }
    if run("E2i") {
        println!("## E2i — incremental revalidation vs full re-validation\n");
        let (sizes, iters): (&[usize], usize) = if quick {
            (&[200, 400], 3)
        } else {
            (&[1000, 4000, 16000], 5)
        };
        println!("{}", tables::incremental_scaling(sizes, iters));
    }
    if run("E2c") {
        println!("## E2c — columnar core: CSR adjacency and zero-copy recovery\n");
        let (sizes, iters): (&[usize], usize) = if quick {
            (&[200, 400], 2)
        } else {
            (&[1000, 4000, 16000], 5)
        };
        println!("{}", tables::columnar_core(sizes, iters));
    }
    if run("E3") {
        println!("## E3 — validation vs schema size (combined complexity)\n");
        let counts: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16, 32, 64] };
        println!(
            "{}",
            tables::schema_scaling(counts, 3000, if quick { 2 } else { 5 })
        );
    }
    if run("E4m") {
        println!("## E4m — migration planning vs full revalidation\n");
        let (types, npt, iters) = if quick { (8, 50, 2) } else { (16, 6500, 5) };
        println!("{}", tables::migration_planning(types, npt, iters));
    }
    if run("E4") {
        println!("## E4a — random 3-SAT phase transition (DPLL oracle)\n");
        let (vars, instances) = if quick { (15, 10) } else { (30, 40) };
        println!("{}", tables::phase_transition(vars, instances));
        println!("## E4b — Theorem 2 reduction pipeline\n");
        let var_counts: &[usize] = if quick { &[3, 4] } else { &[3, 4, 5, 6] };
        println!(
            "{}",
            tables::reduction_scaling(var_counts, 1.5, if quick { 2 } else { 5 })
        );
    }
    if run("E5") {
        println!("## E5 — tableau scaling (Theorem 3)\n");
        let depths: &[usize] = if quick {
            &[1, 2, 4]
        } else {
            &[1, 2, 4, 8, 12, 16]
        };
        println!(
            "{}",
            tables::reasoner_scaling(depths, if quick { 1 } else { 3 })
        );
    }
    if run("E6") {
        println!("## E6 — §6.2 satisfiability verdicts\n");
        println!("{}", tables::satisfiability_verdicts());
    }
    if run("E9") {
        println!("## E9 — consistency checking scaling (Defs. 4.3–4.5)\n");
        let counts: &[usize] = if quick {
            &[4, 8]
        } else {
            &[8, 16, 32, 64, 128]
        };
        println!(
            "{}",
            tables::consistency_scaling(counts, if quick { 2 } else { 10 })
        );
    }
    if run("E10") {
        println!("## E10 — violation detection matrix\n");
        println!("{}", tables::detection_matrix());
    }
    if run("E11") {
        println!("## E11 — ablation: symmetry breaking in the finite-model search\n");
        let counts: &[usize] = if quick { &[3, 4] } else { &[3, 4, 5, 6] };
        println!("{}", tables::symmetry_ablation(counts));
    }
    if run("E12") {
        println!("## E12 — ablation: DPLL vs CDCL at the phase transition\n");
        let (counts, instances): (&[usize], u64) = if quick {
            (&[15, 20], 6)
        } else {
            (&[20, 30, 40, 50], 20)
        };
        println!("{}", tables::solver_ablation(counts, instances));
    }
    if run("headline") && !quick {
        let (n, e, t) = tables::throughput(5000);
        println!(
            "headline: validated {n} nodes / {e} edges in {} ({:.1}k elements/s)\n",
            pg_bench::fmt_duration(t),
            (n + e) as f64 / t.as_secs_f64() / 1e3
        );
    }
}
