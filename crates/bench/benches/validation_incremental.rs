//! Criterion benches for the incremental revalidation engine (E2i):
//! per-delta absorption cost vs a full indexed pass, across graph sizes
//! and delta shapes.
//!
//! The claim under test is the one the `IncrementalEngine` module docs
//! make: absorbing a delta costs `O(k·d)` in the dirty-region size, not
//! `O(|V| + |E|)`. So `incremental/1op` should stay flat as the graph
//! grows while `full_indexed` scales linearly — the gap at the largest
//! size is the E2i headline number. `seed` measures the one-off cost of
//! opening a session (a full pass plus adjacency/key-table builds),
//! which amortizes over the deltas that follow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_datagen::{DeltaGen, DeltaGenParams, GraphGen, GraphGenParams};
use pg_schema::{validate, Engine, IncrementalEngine, PgSchema, ValidationOptions};
use pgraph::{GraphDelta, NodeId, PropertyGraph, Value};

fn social_graph(nodes_per_type: usize) -> (PgSchema, PropertyGraph) {
    let schema = PgSchema::parse(pg_datagen::schemagen::social_schema()).unwrap();
    let graph = GraphGen::new(
        &schema,
        GraphGenParams {
            nodes_per_type,
            ..Default::default()
        },
    )
    .generate_conforming(5)
    .expect("generable");
    (schema, graph)
}

/// A 1-op delta toggling one declared attribute of `node`.
fn toggle_delta(schema: &PgSchema, g: &PropertyGraph, node: NodeId, flip: bool) -> GraphDelta {
    let attr = g
        .node_label(node)
        .and_then(|l| schema.label_type(l))
        .and_then(|t| schema.attributes(t).first())
        .map_or_else(|| "x".to_owned(), |a| a.name.clone());
    let v = Value::String(if flip { "bench-a" } else { "bench-b" }.to_owned());
    GraphDelta::new().set_node_property(node, attr, v)
}

/// E2i: full pass vs 1-op and 16-op incremental absorption per size.
fn bench_incremental_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2i_incremental_vs_full");
    group.sample_size(10);
    for npt in [400usize, 1600, 6400] {
        let (schema, graph) = social_graph(npt);
        let elements = (graph.node_count() + graph.edge_count()) as u64;
        group.throughput(Throughput::Elements(elements));
        group.bench_with_input(
            BenchmarkId::new("full_indexed", graph.node_count()),
            &graph,
            |b, g| {
                b.iter(|| validate(g, &schema, &ValidationOptions::with_engine(Engine::Indexed)))
            },
        );

        let options = ValidationOptions::default();
        let target = graph.node_ids().next().expect("non-empty");
        let mut engine = IncrementalEngine::new(graph.clone(), &schema, &options);
        let mut flip = false;
        group.bench_function(
            BenchmarkId::new("incremental/1op", graph.node_count()),
            |b| {
                b.iter(|| {
                    flip = !flip;
                    engine
                        .apply(&toggle_delta(&schema, &graph, target, flip))
                        .expect("applies")
                })
            },
        );

        // Pre-generate a long conflict-free random sequence so delta
        // generation (which scans the graph) stays out of the timing.
        let gen = DeltaGen::new(
            &schema,
            DeltaGenParams {
                ops: 16,
                ..Default::default()
            },
        );
        let mut scratch = graph.clone();
        let deltas: Vec<GraphDelta> = (0..256u64)
            .map(|seed| {
                let d = gen.generate_seeded(&scratch, seed);
                d.apply_to(&mut scratch).expect("conflict-free");
                d
            })
            .collect();
        let mut batch_engine = IncrementalEngine::new(graph.clone(), &schema, &options);
        let mut i = 0;
        group.bench_function(
            BenchmarkId::new("incremental/16op", graph.node_count()),
            |b| {
                b.iter(|| {
                    let d = &deltas[i % deltas.len()];
                    i += 1;
                    // The sequence is conflict-free only on its first
                    // replay; later laps may hit ids the sequence
                    // already removed. A failed apply reseeds the
                    // engine (a full pass) — rare enough to stay noise,
                    // and exactly the recovery path a long-running
                    // session would take.
                    let _ = batch_engine.apply(d);
                })
            },
        );
    }
    group.finish();
}

/// Session-opening cost: `IncrementalEngine::new` is a full pass plus
/// adjacency and key-table construction.
fn bench_seed_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2i_seed_cost");
    group.sample_size(10);
    for npt in [400usize, 1600] {
        let (schema, graph) = social_graph(npt);
        let options = ValidationOptions::default();
        group.bench_with_input(
            BenchmarkId::new("seed", graph.node_count()),
            &graph,
            |b, g| b.iter(|| IncrementalEngine::new(g.clone(), &schema, &options)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_full, bench_seed_cost);
criterion_main!(benches);
