//! # gql-sdl — GraphQL Schema Definition Language front-end
//!
//! A from-scratch implementation of the type-system half of the GraphQL
//! *June 2018* specification — the edition the paper targets ("The GraphQL
//! schema definition language (SDL) … has been officially introduced in the
//! June 2018 Edition of the GraphQL specification"). It covers:
//!
//! * the full lexical grammar (§2.1 of the spec): names, int/float/string
//!   and block-string literals, punctuators, comments, and the
//!   insignificant-comma rule;
//! * type-system definitions (spec §3): `schema`, `scalar`, `type`,
//!   `interface`, `union`, `enum`, `input`, and `directive` definitions,
//!   descriptions, field arguments with default values, `implements`
//!   clauses, and directive applications with constant arguments;
//! * wrapping types `T!`, `[T]`, `[T!]`, `[T!]!` and arbitrary nesting
//!   (the formal schema layer later enforces the paper's restriction to the
//!   four wrappings of §4.1);
//! * a canonical pretty-printer ([`print_document`]) such that
//!   `parse(print(doc)) == doc` (round-tripping is property-tested).
//!
//! Executable-definition syntax (queries, mutations, fragments) is out of
//! scope: the paper repurposes only the *schema* language.
//!
//! ```
//! let doc = gql_sdl::parse(r#"
//!     type User @key(fields: ["id"]) {
//!         id: ID! @required
//!         nicknames: [String!]!
//!     }
//! "#).unwrap();
//! assert_eq!(doc.definitions.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
pub mod extensions;
mod lexer;
mod parser;
mod printer;
mod token;

pub use error::{ParseError, ParseErrorKind};
pub use lexer::Lexer;
pub use printer::print_document;
pub use token::{Pos, Span, Token, TokenKind};

/// Parses an SDL document.
pub fn parse(source: &str) -> Result<ast::Document, ParseError> {
    parser::Parser::new(source)?.parse_document()
}
