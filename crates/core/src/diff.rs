//! Schema evolution: diffing two Property Graph schemas.
//!
//! [`diff`] compares an old and a new schema and reports every change,
//! classified by **instance compatibility**: a change is *breaking* if
//! some Property Graph that strongly satisfies the old schema may violate
//! the new one, and *compatible* if every old-conforming instance still
//! conforms (data never has to migrate). The classification is per
//! change, conservative (when in doubt, breaking), and documented on each
//! variant. The overall verdict of a migration is
//! [`SchemaDiff::is_breaking`].
//!
//! This is the operational payoff of having a *schema* at all — the gap
//! the paper's introduction describes ("rigid forms of logical schemas
//! that define exactly how a valid instance … has to look like").

use std::collections::BTreeSet;
use std::fmt;

use gql_schema::TypeId;

use crate::pgschema::{PgSchema, RelationshipDef};

/// Compatibility of one change with existing conforming instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compat {
    /// Every old-conforming graph still conforms.
    Compatible,
    /// Some old-conforming graph may now violate the schema.
    Breaking,
}

/// One observed change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaChange {
    /// A new object type. Compatible: old instances have no such nodes.
    TypeAdded {
        /// The type's name.
        name: String,
    },
    /// An object type was removed. Breaking: its nodes lose justification
    /// (SS1).
    TypeRemoved {
        /// The type's name.
        name: String,
    },
    /// An attribute/relationship field was added. Compatible unless
    /// `@required`-style obligations come with it (reported separately).
    FieldAdded {
        /// The enclosing type.
        ty: String,
        /// The field's name.
        field: String,
    },
    /// A field was removed. Breaking: properties/edges using it lose
    /// justification (SS2/SS4).
    FieldRemoved {
        /// The enclosing type.
        ty: String,
        /// The field's name.
        field: String,
    },
    /// A field's type changed. Breaking unless the new value space
    /// contains the old one (e.g. `Int! → Int`); `relaxed` records the
    /// contains-check outcome.
    FieldTypeChanged {
        /// The enclosing type.
        ty: String,
        /// The field's name.
        field: String,
        /// Rendered old type.
        old: String,
        /// Rendered new type.
        new: String,
        /// True if every old-legal value/target is still legal.
        relaxed: bool,
    },
    /// A constraining directive (`@required`, `@distinct`, `@noLoops`,
    /// `@uniqueForTarget`, `@requiredForTarget`) was added. Breaking.
    ConstraintAdded {
        /// The enclosing type.
        ty: String,
        /// The field's name.
        field: String,
        /// The directive's name.
        directive: String,
    },
    /// A constraining directive was removed. Compatible.
    ConstraintRemoved {
        /// The enclosing type.
        ty: String,
        /// The field's name.
        field: String,
        /// The directive's name.
        directive: String,
    },
    /// A `@key` was added. Breaking: old instances may collide.
    KeyAdded {
        /// The keyed type.
        ty: String,
        /// The key's property names.
        fields: Vec<String>,
    },
    /// A `@key` was removed. Compatible.
    KeyRemoved {
        /// The keyed type.
        ty: String,
        /// The key's property names.
        fields: Vec<String>,
    },
    /// An edge-property argument was added/removed/retyped. Removal is
    /// breaking (SS3); addition is compatible; retyping follows the
    /// value-space check.
    EdgePropChanged {
        /// The enclosing type.
        ty: String,
        /// The relationship field.
        field: String,
        /// The property/argument name.
        prop: String,
        /// What happened, e.g. "added", "removed", "Float! → String".
        what: String,
        /// The classification.
        compat: Compat,
    },
}

impl SchemaChange {
    /// The change's instance-compatibility class.
    pub fn compat(&self) -> Compat {
        match self {
            SchemaChange::TypeAdded { .. }
            | SchemaChange::FieldAdded { .. }
            | SchemaChange::ConstraintRemoved { .. }
            | SchemaChange::KeyRemoved { .. } => Compat::Compatible,
            SchemaChange::TypeRemoved { .. }
            | SchemaChange::FieldRemoved { .. }
            | SchemaChange::ConstraintAdded { .. }
            | SchemaChange::KeyAdded { .. } => Compat::Breaking,
            SchemaChange::FieldTypeChanged { relaxed, .. } => {
                if *relaxed {
                    Compat::Compatible
                } else {
                    Compat::Breaking
                }
            }
            SchemaChange::EdgePropChanged { compat, .. } => *compat,
        }
    }

    /// The human-readable description, without the compatibility tag
    /// ([`Display`](fmt::Display) prepends it).
    pub fn describe(&self) -> String {
        match self {
            SchemaChange::TypeAdded { name } => format!("type {name} added"),
            SchemaChange::TypeRemoved { name } => format!("type {name} removed"),
            SchemaChange::FieldAdded { ty, field } => format!("field {ty}.{field} added"),
            SchemaChange::FieldRemoved { ty, field } => {
                format!("field {ty}.{field} removed")
            }
            SchemaChange::FieldTypeChanged {
                ty,
                field,
                old,
                new,
                ..
            } => format!("field {ty}.{field}: {old} → {new}"),
            SchemaChange::ConstraintAdded {
                ty,
                field,
                directive,
            } => {
                format!("@{directive} added on {ty}.{field}")
            }
            SchemaChange::ConstraintRemoved {
                ty,
                field,
                directive,
            } => {
                format!("@{directive} removed from {ty}.{field}")
            }
            SchemaChange::KeyAdded { ty, fields } => {
                format!("@key({}) added on {ty}", fields.join(", "))
            }
            SchemaChange::KeyRemoved { ty, fields } => {
                format!("@key({}) removed from {ty}", fields.join(", "))
            }
            SchemaChange::EdgePropChanged {
                ty,
                field,
                prop,
                what,
                ..
            } => format!("edge property {ty}.{field}({prop}:) {what}"),
        }
    }
}

impl fmt::Display for SchemaChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.compat() {
            Compat::Compatible => "compatible",
            Compat::Breaking => "BREAKING",
        };
        write!(f, "[{tag}] {}", self.describe())
    }
}

/// The result of [`diff`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaDiff {
    /// All changes, old-schema order.
    pub changes: Vec<SchemaChange>,
}

impl SchemaDiff {
    /// True if any change is breaking.
    pub fn is_breaking(&self) -> bool {
        self.changes.iter().any(|c| c.compat() == Compat::Breaking)
    }

    /// Only the breaking changes.
    pub fn breaking(&self) -> impl Iterator<Item = &SchemaChange> {
        self.changes
            .iter()
            .filter(|c| c.compat() == Compat::Breaking)
    }

    /// True if the schemas are identical under the diff.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Renders the diff as a JSON document for machine consumption
    /// (`pgschema diff --json`), following the report JSON conventions:
    ///
    /// ```json
    /// {"equivalent": false, "breaking": true,
    ///  "changes": [{"change": "type T removed", "compat": "breaking"}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"equivalent\": {}, \"breaking\": {}, \"changes\": [",
            self.is_empty(),
            self.is_breaking()
        );
        for (i, c) in self.changes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let compat = match c.compat() {
                Compat::Compatible => "compatible",
                Compat::Breaking => "breaking",
            };
            out.push_str(&format!(
                "{{\"change\": \"{}\", \"compat\": \"{compat}\"}}",
                crate::report::esc(&c.describe())
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for SchemaDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.changes.is_empty() {
            return writeln!(f, "schemas are equivalent");
        }
        for c in &self.changes {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

/// `valuesW(old) ⊆ valuesW(new)`-style check on wrapped types: true when
/// every old-legal value (or edge multiset) remains legal.
fn type_relaxed(
    old_s: &PgSchema,
    new_s: &PgSchema,
    old: &gql_schema::WrappedType,
    new: &gql_schema::WrappedType,
) -> bool {
    // Base types must have the same name (structural identity across the
    // two schemas).
    if old_s.schema().type_name(old.base) != new_s.schema().type_name(new.base) {
        return false;
    }
    use gql_schema::Wrap;
    match (old.wrap, new.wrap) {
        (a, b) if a == b => true,
        // Dropping an outer/inner non-null only widens.
        (Wrap::NonNull, Wrap::Bare) => true,
        (
            Wrap::List {
                inner_non_null: i1,
                outer_non_null: o1,
            },
            Wrap::List {
                inner_non_null: i2,
                outer_non_null: o2,
            },
        ) => (i1 || !i2) && (o1 || !o2),
        // Non-list → list relaxes WS4 for relationships, but *changes*
        // the value space for attributes (scalar vs array) — breaking
        // for attributes; for relationships it widens. The caller knows
        // which; be conservative here and let relationship diffs handle
        // multiplicity via this same rule (single edges remain legal).
        (Wrap::Bare | Wrap::NonNull, Wrap::List { .. }) => {
            // Only relaxing for relationship fields; attribute values
            // would change shape. Conservatively breaking unless both
            // bases are object-like (checked by the caller via
            // `is_relationship`).
            !old_s.schema().is_scalar(old.base)
        }
        _ => false,
    }
}

const CONSTRAINT_DIRECTIVES: [&str; 5] = [
    "required",
    "distinct",
    "noLoops",
    "uniqueForTarget",
    "requiredForTarget",
];

fn rel_flags(rel: &RelationshipDef) -> Vec<&'static str> {
    let mut out = Vec::new();
    if rel.required {
        out.push("required");
    }
    if rel.distinct {
        out.push("distinct");
    }
    if rel.no_loops {
        out.push("noLoops");
    }
    if rel.unique_for_target {
        out.push("uniqueForTarget");
    }
    if rel.required_for_target {
        out.push("requiredForTarget");
    }
    out
}

/// Computes the change set from `old` to `new`.
pub fn diff(old: &PgSchema, new: &PgSchema) -> SchemaDiff {
    let mut changes = Vec::new();
    let old_types: Vec<TypeId> = old.schema().object_types().collect();
    let new_types: Vec<TypeId> = new.schema().object_types().collect();
    let old_names: BTreeSet<&str> = old_types
        .iter()
        .map(|&t| old.schema().type_name(t))
        .collect();
    let new_names: BTreeSet<&str> = new_types
        .iter()
        .map(|&t| new.schema().type_name(t))
        .collect();

    for &name in new_names.difference(&old_names) {
        changes.push(SchemaChange::TypeAdded {
            name: name.to_owned(),
        });
    }
    for &name in old_names.difference(&new_names) {
        changes.push(SchemaChange::TypeRemoved {
            name: name.to_owned(),
        });
    }

    for &name in old_names.intersection(&new_names) {
        let ot = old.label_type(name).unwrap();
        let nt = new.label_type(name).unwrap();
        diff_fields(old, new, name, ot, nt, &mut changes);
    }

    // Keys (compared by (type name, field list)).
    let key_set = |s: &PgSchema| -> BTreeSet<(String, Vec<String>)> {
        s.keys()
            .iter()
            .map(|k| (s.schema().type_name(k.site).to_owned(), k.fields.clone()))
            .collect()
    };
    let old_keys = key_set(old);
    let new_keys = key_set(new);
    for (ty, fields) in new_keys.difference(&old_keys) {
        changes.push(SchemaChange::KeyAdded {
            ty: ty.clone(),
            fields: fields.clone(),
        });
    }
    for (ty, fields) in old_keys.difference(&new_keys) {
        changes.push(SchemaChange::KeyRemoved {
            ty: ty.clone(),
            fields: fields.clone(),
        });
    }
    SchemaDiff { changes }
}

fn diff_fields(
    old: &PgSchema,
    new: &PgSchema,
    name: &str,
    ot: TypeId,
    nt: TypeId,
    changes: &mut Vec<SchemaChange>,
) {
    let old_fields: Vec<&str> = old.schema().fields(ot).map(|f| f.name.as_str()).collect();
    let new_fields: Vec<&str> = new.schema().fields(nt).map(|f| f.name.as_str()).collect();
    for f in &new_fields {
        if !old_fields.contains(f) {
            changes.push(SchemaChange::FieldAdded {
                ty: name.to_owned(),
                field: (*f).to_owned(),
            });
            // A new @required attribute/relationship immediately breaks
            // old instances of the type (they lack it).
            if has_node_instances_obligation(new, name, f) {
                changes.push(SchemaChange::ConstraintAdded {
                    ty: name.to_owned(),
                    field: (*f).to_owned(),
                    directive: "required".to_owned(),
                });
            }
        }
    }
    for f in &old_fields {
        if !new_fields.contains(f) {
            changes.push(SchemaChange::FieldRemoved {
                ty: name.to_owned(),
                field: (*f).to_owned(),
            });
        }
    }
    for f in old_fields.iter().filter(|f| new_fields.contains(f)) {
        let of = old.schema().field(ot, f).unwrap();
        let nf = new.schema().field(nt, f).unwrap();
        if of.ty.wrap != nf.ty.wrap
            || old.schema().type_name(of.ty.base) != new.schema().type_name(nf.ty.base)
        {
            changes.push(SchemaChange::FieldTypeChanged {
                ty: name.to_owned(),
                field: (*f).to_owned(),
                old: old.schema().display_type(&of.ty),
                new: new.schema().display_type(&nf.ty),
                relaxed: type_relaxed(old, new, &of.ty, &nf.ty),
            });
        }
        // Constraint flags (relationships; @required also applies to
        // attributes).
        let old_flags = constraint_flags(old, name, f);
        let new_flags = constraint_flags(new, name, f);
        for d in CONSTRAINT_DIRECTIVES {
            let was = old_flags.contains(&d);
            let is = new_flags.contains(&d);
            if !was && is {
                changes.push(SchemaChange::ConstraintAdded {
                    ty: name.to_owned(),
                    field: (*f).to_owned(),
                    directive: d.to_owned(),
                });
            } else if was && !is {
                changes.push(SchemaChange::ConstraintRemoved {
                    ty: name.to_owned(),
                    field: (*f).to_owned(),
                    directive: d.to_owned(),
                });
            }
        }
        // Edge properties.
        diff_edge_props(old, new, name, f, changes);
    }
}

fn constraint_flags(s: &PgSchema, ty: &str, field: &str) -> Vec<&'static str> {
    if let Some(rel) = s.relationship(ty, field) {
        rel_flags(rel)
    } else if s.attribute(ty, field).is_some_and(|a| a.required) {
        vec!["required"]
    } else {
        Vec::new()
    }
}

fn has_node_instances_obligation(s: &PgSchema, ty: &str, field: &str) -> bool {
    !constraint_flags(s, ty, field).is_empty()
        && constraint_flags(s, ty, field).contains(&"required")
}

fn diff_edge_props(
    old: &PgSchema,
    new: &PgSchema,
    ty: &str,
    field: &str,
    changes: &mut Vec<SchemaChange>,
) {
    let (Some(or), Some(nr)) = (old.relationship(ty, field), new.relationship(ty, field)) else {
        return;
    };
    for p in &nr.edge_props {
        if !or.edge_props.iter().any(|x| x.name == p.name) {
            changes.push(SchemaChange::EdgePropChanged {
                ty: ty.to_owned(),
                field: field.to_owned(),
                prop: p.name.clone(),
                what: "added".to_owned(),
                compat: Compat::Compatible,
            });
        }
    }
    for p in &or.edge_props {
        match nr.edge_props.iter().find(|x| x.name == p.name) {
            None => changes.push(SchemaChange::EdgePropChanged {
                ty: ty.to_owned(),
                field: field.to_owned(),
                prop: p.name.clone(),
                what: "removed".to_owned(),
                compat: Compat::Breaking,
            }),
            Some(np) if np.ty != p.ty => {
                let relaxed = type_relaxed(old, new, &p.ty, &np.ty);
                changes.push(SchemaChange::EdgePropChanged {
                    ty: ty.to_owned(),
                    field: field.to_owned(),
                    prop: p.name.clone(),
                    what: format!(
                        "{} → {}",
                        old.schema().display_type(&p.ty),
                        new.schema().display_type(&np.ty)
                    ),
                    compat: if relaxed {
                        Compat::Compatible
                    } else {
                        Compat::Breaking
                    },
                });
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(old: &str, new: &str) -> SchemaDiff {
        diff(
            &PgSchema::parse(old).unwrap(),
            &PgSchema::parse(new).unwrap(),
        )
    }

    #[test]
    fn identical_schemas_are_equivalent() {
        let s = r#"type U @key(fields: ["id"]) { id: ID! @required n: [U] @distinct }"#;
        let diff = d(s, s);
        assert!(diff.is_empty(), "{diff}");
        assert!(!diff.is_breaking());
    }

    #[test]
    fn added_type_and_field_are_compatible() {
        let diff = d(
            "type A { x: Int }",
            "type A { x: Int y: Float } type B { z: Int }",
        );
        assert!(!diff.is_breaking(), "{diff}");
        assert_eq!(diff.changes.len(), 2);
    }

    #[test]
    fn removed_type_and_field_break() {
        let diff = d(
            "type A { x: Int y: Int } type B { z: Int }",
            "type A { x: Int }",
        );
        assert!(diff.is_breaking());
        assert_eq!(diff.breaking().count(), 2);
    }

    #[test]
    fn adding_required_field_is_breaking() {
        let diff = d("type A { x: Int }", "type A { x: Int y: Int @required }");
        assert!(diff.is_breaking(), "{diff}");
        assert!(diff
            .changes
            .iter()
            .any(|c| matches!(c, SchemaChange::ConstraintAdded { directive, .. } if directive == "required")));
    }

    #[test]
    fn nullability_relaxation_is_compatible_narrowing_is_breaking() {
        let relax = d("type A { x: Int! }", "type A { x: Int }");
        assert!(!relax.is_breaking(), "{relax}");
        let narrow = d("type A { x: Int }", "type A { x: Int! }");
        assert!(narrow.is_breaking(), "{narrow}");
        // List inner-null relaxation.
        let relax = d("type A { xs: [Int!]! }", "type A { xs: [Int] }");
        assert!(!relax.is_breaking(), "{relax}");
    }

    #[test]
    fn relationship_list_promotion_is_compatible() {
        // B → [B] lifts WS4; every old single edge stays legal.
        let diff = d(
            "type A { b: B } type B { x: Int }",
            "type A { b: [B] } type B { x: Int }",
        );
        assert!(!diff.is_breaking(), "{diff}");
        // [B] → B is breaking.
        let diff = d(
            "type A { b: [B] } type B { x: Int }",
            "type A { b: B } type B { x: Int }",
        );
        assert!(diff.is_breaking());
    }

    #[test]
    fn attribute_scalar_to_list_is_breaking() {
        let diff = d("type A { x: Int }", "type A { x: [Int] }");
        assert!(diff.is_breaking(), "{diff}");
    }

    #[test]
    fn directive_changes_classify() {
        let add = d("type A { r: [A] }", "type A { r: [A] @distinct @noLoops }");
        assert!(add.is_breaking());
        assert_eq!(add.breaking().count(), 2);
        let remove = d("type A { r: [A] @distinct @noLoops }", "type A { r: [A] }");
        assert!(!remove.is_breaking(), "{remove}");
        assert_eq!(remove.changes.len(), 2);
    }

    #[test]
    fn key_changes_classify() {
        let add = d(
            "type A { id: ID! }",
            r#"type A @key(fields: ["id"]) { id: ID! }"#,
        );
        assert!(add.is_breaking());
        let remove = d(
            r#"type A @key(fields: ["id"]) { id: ID! }"#,
            "type A { id: ID! }",
        );
        assert!(!remove.is_breaking());
    }

    #[test]
    fn edge_property_changes_classify() {
        let base = "type A { r(w: Float!): B } type B { x: Int }";
        let added = d("type A { r: B } type B { x: Int }", base);
        assert!(!added.is_breaking(), "{added}");
        let removed = d(base, "type A { r: B } type B { x: Int }");
        assert!(removed.is_breaking());
        let relaxed = d(base, "type A { r(w: Float): B } type B { x: Int }");
        assert!(!relaxed.is_breaking(), "{relaxed}");
        let retyped = d(base, "type A { r(w: String!): B } type B { x: Int }");
        assert!(retyped.is_breaking());
    }

    #[test]
    fn base_type_change_is_breaking() {
        let diff = d("type A { x: Int }", "type A { x: Float }");
        assert!(diff.is_breaking(), "{diff}");
    }

    #[test]
    fn display_tags_changes() {
        let diff = d("type A { x: Int }", "type A { x: Int! }");
        let text = diff.to_string();
        assert!(text.contains("[BREAKING]"), "{text}");
        assert!(text.contains("Int → Int!"), "{text}");
        assert!(d("type A { x: Int }", "type A { x: Int }")
            .to_string()
            .contains("equivalent"));
    }
}
