//! Table generators for EXPERIMENTS.md — one function per experiment id.
//!
//! Each generator returns a Markdown table as a `String`; the
//! `experiments` binary prints them, and the unit tests smoke-run scaled-
//! down versions so the harness cannot rot.

use std::fmt::Write as _;
use std::time::Duration;

use dpll::KsatParams;
use pg_datagen::{
    inject, Defect, DeltaGen, DeltaGenParams, GraphGen, GraphGenParams, SchemaGen, SchemaGenParams,
};
use pg_reason::{check_object_type, ReasonerConfig, Satisfiability};
use pg_schema::{validate, Engine, IncrementalEngine, PgSchema, ValidationOptions};
use pgraph::{GraphDelta, Value};

use crate::{fit_exponent, fmt_duration, time_median};

/// E1 — the §3.3 cardinality table, with measured verdicts.
pub fn cardinality_table() -> String {
    let mut out = String::from(
        "| rel is a | definition in A | fan-out (1 A → 2 Bs) | fan-in (2 As → 1 B) |\n\
         |---|---|---|---|\n",
    );
    let rows = [
        ("1:1", "rel: B @uniqueForTarget"),
        ("1:N", "rel: B"),
        ("N:1", "rel: [B] @uniqueForTarget"),
        ("N:M", "rel: [B]"),
    ];
    for (kind, def) in rows {
        let schema = PgSchema::parse(&format!("type A {{ {def} }}\ntype B {{ x: Int }}")).unwrap();
        let fan_out = pgraph::GraphBuilder::new()
            .node("a", "A")
            .node("b1", "B")
            .node("b2", "B")
            .edge("a", "b1", "rel")
            .edge("a", "b2", "rel")
            .build()
            .unwrap();
        let fan_in = pgraph::GraphBuilder::new()
            .node("a1", "A")
            .node("a2", "A")
            .node("b", "B")
            .edge("a1", "b", "rel")
            .edge("a2", "b", "rel")
            .build()
            .unwrap();
        let verdict = |g: &pgraph::PropertyGraph| {
            let r = validate(g, &schema, &ValidationOptions::default());
            if r.conforms() {
                "allowed".to_owned()
            } else {
                let rules: Vec<String> = r.counts().keys().map(|k| k.to_string()).collect();
                format!("rejected ({})", rules.join(", "))
            }
        };
        let _ = writeln!(
            out,
            "| {kind} | `{def}` | {} | {} |",
            verdict(&fan_out),
            verdict(&fan_in)
        );
    }
    out
}

/// E2 — validation wall-time vs graph size, naive vs indexed engine.
///
/// `sizes` are nodes-per-type over the 3-type social schema;
/// `naive_cap` bounds the sizes the quadratic engine is run on.
pub fn validation_scaling(sizes: &[usize], naive_cap: usize, iters: usize) -> String {
    let schema = PgSchema::parse(pg_datagen::schemagen::social_schema()).unwrap();
    let mut out = String::from(
        "| nodes | edges | indexed | naive | naive/indexed |\n|---|---|---|---|---|\n",
    );
    let mut indexed_pts = Vec::new();
    let mut naive_pts = Vec::new();
    for &npt in sizes {
        let graph = GraphGen::new(
            &schema,
            GraphGenParams {
                nodes_per_type: npt,
                ..Default::default()
            },
        )
        .generate_conforming(5)
        .expect("social schema generable");
        let n = graph.node_count();
        let e = graph.edge_count();
        let t_indexed = time_median(iters, || {
            validate(
                &graph,
                &schema,
                &ValidationOptions::with_engine(Engine::Indexed),
            )
        });
        indexed_pts.push((n as f64, t_indexed.as_secs_f64()));
        let (naive_cell, ratio_cell) = if npt <= naive_cap {
            let t_naive = time_median(iters, || {
                validate(
                    &graph,
                    &schema,
                    &ValidationOptions::with_engine(Engine::Naive),
                )
            });
            naive_pts.push((n as f64, t_naive.as_secs_f64()));
            (
                fmt_duration(t_naive),
                format!("{:.1}×", t_naive.as_secs_f64() / t_indexed.as_secs_f64()),
            )
        } else {
            ("—".to_owned(), "—".to_owned())
        };
        let _ = writeln!(
            out,
            "| {n} | {e} | {} | {naive_cell} | {ratio_cell} |",
            fmt_duration(t_indexed)
        );
    }
    let _ = writeln!(
        out,
        "\nfitted growth exponent: indexed ≈ n^{:.2}, naive ≈ n^{:.2}",
        fit_exponent(&indexed_pts),
        fit_exponent(&naive_pts)
    );
    out
}

/// E2i — incremental revalidation vs full re-validation, per delta.
///
/// For each graph size, a full indexed pass is timed against an
/// [`IncrementalEngine`] absorbing (a) a single-op delta toggling one
/// node property and (b) a pre-generated 16-op random [`DeltaGen`]
/// batch. The `re-checked` column is the dirty-region size the 1-op
/// delta actually touched, out of all live elements.
pub fn incremental_scaling(sizes: &[usize], iters: usize) -> String {
    let schema = PgSchema::parse(pg_datagen::schemagen::social_schema()).unwrap();
    let mut out = String::from(
        "| nodes | edges | full indexed | 1-op delta | speedup | 16-op delta | re-checked (1-op) |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for &npt in sizes {
        let graph = GraphGen::new(
            &schema,
            GraphGenParams {
                nodes_per_type: npt,
                ..Default::default()
            },
        )
        .generate_conforming(5)
        .expect("social schema generable");
        let n = graph.node_count();
        let e = graph.edge_count();
        let t_full = time_median(iters, || {
            validate(
                &graph,
                &schema,
                &ValidationOptions::with_engine(Engine::Indexed),
            )
        });

        // (a) Single-op deltas: toggle one declared attribute of the
        // first node between two well-typed values.
        let options = ValidationOptions::default();
        let mut engine = IncrementalEngine::new(graph.clone(), &schema, &options);
        let target = graph.node_ids().next().expect("non-empty graph");
        let attr = graph
            .node_label(target)
            .and_then(|l| schema.label_type(l))
            .and_then(|t| schema.attributes(t).first())
            .map_or_else(|| "x".to_owned(), |a| a.name.clone());
        let outcome = engine
            .apply(&GraphDelta::new().set_node_property(
                target,
                attr.clone(),
                Value::String("e2i-prime".to_owned()),
            ))
            .expect("1-op delta applies");
        let mut flip = false;
        let t_one = time_median(iters.max(20) * 5, || {
            flip = !flip;
            let v = Value::String(if flip { "e2i-a" } else { "e2i-b" }.to_owned());
            engine
                .apply(&GraphDelta::new().set_node_property(target, attr.clone(), v))
                .expect("1-op delta applies");
        });

        // (b) 16-op random batches, pre-generated against a scratch
        // clone so generation cost stays out of the timing.
        let gen = DeltaGen::new(
            &schema,
            DeltaGenParams {
                ops: 16,
                ..Default::default()
            },
        );
        let mut scratch = graph.clone();
        let deltas: Vec<GraphDelta> = (0..iters.max(10) as u64)
            .map(|seed| {
                let d = gen.generate_seeded(&scratch, seed);
                d.apply_to(&mut scratch)
                    .expect("conflict-free by construction");
                d
            })
            .collect();
        let mut batch_engine = IncrementalEngine::new(graph.clone(), &schema, &options);
        let mut i = 0;
        let t_batch = time_median(deltas.len(), || {
            batch_engine.apply(&deltas[i]).expect("applies");
            i += 1;
        });

        let _ = writeln!(
            out,
            "| {n} | {e} | {} | {} | {:.0}× | {} | {} of {} |",
            fmt_duration(t_full),
            fmt_duration(t_one),
            t_full.as_secs_f64() / t_one.as_secs_f64(),
            fmt_duration(t_batch),
            outcome.elements_rechecked,
            outcome.elements_total,
        );
    }
    out
}

/// E2c — the columnar graph core: CSR adjacency vs the hash-map
/// `GraphIndex`, and snapshot recovery time (legacy `PGS1` eager decode
/// vs the mmap'd zero-copy `PGS2` path).
///
/// The adjacency workload is identical on both sides: for every live
/// node and every edge label, the labelled out- and in-edge groups are
/// fetched and their lengths summed. The recovery workload times
/// `Store::open` on a one-session data directory whose snapshot holds
/// the same graph in both formats; the `materialize` column is the
/// deferred first-use cost of thawing the mapped columnar image.
pub fn columnar_core(sizes: &[usize], iters: usize) -> String {
    use pgraph::index::GraphIndex;
    use pgraph::ColumnarGraph;

    let schema = PgSchema::parse(pg_datagen::schemagen::social_schema()).unwrap();
    let mut out = String::from(
        "| nodes | edges | index build | freeze | hash-map scan | CSR scan | scan speedup |\n\
         |---|---|---|---|---|---|---|\n",
    );
    let mut recovery = String::from(
        "| elements | snapshot bytes | open (PGS1 eager) | open (PGS2 mmap) | speedup | materialize |\n\
         |---|---|---|---|---|---|\n",
    );
    for &npt in sizes {
        let graph = GraphGen::new(
            &schema,
            GraphGenParams {
                nodes_per_type: npt,
                ..Default::default()
            },
        )
        .generate_conforming(5)
        .expect("social schema generable");
        let n = graph.node_count();
        let e = graph.edge_count();

        // --- adjacency: the same labelled-neighbourhood sweep, both ways.
        let mut edge_labels: Vec<String> = graph.edges().map(|e| e.label().to_owned()).collect();
        edge_labels.sort();
        edge_labels.dedup();
        let t_build = time_median(iters, || GraphIndex::build(&graph));
        let t_freeze = time_median(iters, || ColumnarGraph::freeze(&graph));
        let ix = GraphIndex::build(&graph);
        let cols = ColumnarGraph::freeze(&graph);
        let syms: Vec<pgraph::Sym> = edge_labels
            .iter()
            .filter_map(|l| cols.symbols().lookup(l))
            .collect();
        let nodes: Vec<pgraph::NodeId> = graph.node_ids().collect();
        let t_hash = time_median(iters, || {
            let mut total = 0usize;
            for &v in &nodes {
                for l in &edge_labels {
                    total += ix.out_edges_labelled(v, l).len();
                    total += ix.in_edges_labelled(v, l).len();
                }
            }
            total
        });
        let t_csr = time_median(iters, || {
            let mut total = 0usize;
            for &v in &nodes {
                for &l in &syms {
                    total += cols.out_edges_labelled(v, l).len();
                    total += cols.in_edges_labelled(v, l).len();
                }
            }
            total
        });
        let _ = writeln!(
            out,
            "| {n} | {e} | {} | {} | {} | {} | {:.1}× |",
            fmt_duration(t_build),
            fmt_duration(t_freeze),
            fmt_duration(t_hash),
            fmt_duration(t_csr),
            t_hash.as_secs_f64() / t_csr.as_secs_f64(),
        );

        // --- recovery: the same session, PGS1-eager vs PGS2-mmap.
        let sdl = pg_datagen::schemagen::social_schema();
        let tag = std::process::id();
        let legacy_dir = std::env::temp_dir().join(format!("pgbench-e2c-v1-{tag}-{npt}"));
        let mapped_dir = std::env::temp_dir().join(format!("pgbench-e2c-v2-{tag}-{npt}"));
        for d in [&legacy_dir, &mapped_dir] {
            let _ = std::fs::remove_dir_all(d);
            std::fs::create_dir_all(d).unwrap();
        }
        write_legacy_snapshot(&legacy_dir, 1, sdl, &graph);
        {
            let (store, _) = pg_store::Store::open(&mapped_dir, pg_store::FsyncPolicy::Never)
                .expect("store opens");
            store.append_create(1, sdl, &graph).unwrap();
            let mut compaction = store.try_begin_compaction().unwrap().unwrap();
            compaction.add_session(1, 1, 0, sdl, &graph, None);
            compaction.finish(2).unwrap();
        }
        let snap_bytes = std::fs::read_dir(&mapped_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
            .map(|e| e.metadata().unwrap().len())
            .max()
            .unwrap();
        let t_eager = time_median(iters, || {
            pg_store::Store::open(&legacy_dir, pg_store::FsyncPolicy::Never).expect("legacy opens")
        });
        let t_mmap = time_median(iters, || {
            pg_store::Store::open(&mapped_dir, pg_store::FsyncPolicy::Never).expect("reopens")
        });
        let (_store, recovered) =
            pg_store::Store::open(&mapped_dir, pg_store::FsyncPolicy::Never).unwrap();
        assert!(
            recovered.sessions[0].graph.is_mapped(),
            "PGS2 recovery must be zero-copy"
        );
        let t_thaw = time_median(iters, || {
            recovered.sessions[0].graph.clone().into_graph().unwrap()
        });
        let _ = writeln!(
            recovery,
            "| {} | {snap_bytes} | {} | {} | {:.0}× | {} |",
            n + e,
            fmt_duration(t_eager),
            fmt_duration(t_mmap),
            t_eager.as_secs_f64() / t_mmap.as_secs_f64(),
            fmt_duration(t_thaw),
        );
        for d in [&legacy_dir, &mapped_dir] {
            let _ = std::fs::remove_dir_all(d);
        }
    }
    let _ = writeln!(out, "\nrecovery (one session, WAL fully compacted):\n");
    out.push_str(&recovery);
    out
}

/// Writes a snapshot file exactly as the pre-columnar build's `PGS1`
/// encoder did, so the eager decode path is measurable from this build.
fn write_legacy_snapshot(dir: &std::path::Path, id: u64, sdl: &str, graph: &pgraph::PropertyGraph) {
    let graph_bytes = pgraph::binary::graph_to_bytes(graph);
    let mut payload = Vec::new();
    payload.extend_from_slice(&pg_store::wire::SNAPSHOT_MAGIC);
    payload.extend_from_slice(&1u64.to_le_bytes()); // base_seq
    payload.extend_from_slice(&(id + 1).to_le_bytes()); // next_session_id
    payload.extend_from_slice(&1u32.to_le_bytes()); // count
    payload.extend_from_slice(&id.to_le_bytes());
    payload.extend_from_slice(&1u64.to_le_bytes()); // last_seq
    payload.extend_from_slice(&0u64.to_le_bytes()); // deltas_applied
    payload.extend_from_slice(&(sdl.len() as u32).to_le_bytes());
    payload.extend_from_slice(sdl.as_bytes());
    payload.extend_from_slice(&(graph_bytes.len() as u32).to_le_bytes());
    payload.extend_from_slice(&graph_bytes);
    payload.push(0); // no pending migration
    let mut file = Vec::new();
    file.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    file.extend_from_slice(&pgraph::snapshot::crc32(&payload).to_le_bytes());
    file.extend_from_slice(&payload);
    std::fs::write(dir.join("snapshot-000001.snap"), file).unwrap();
}

/// E4m — migration planning: dirty-region impact preview vs a full
/// revalidation under the candidate schema.
///
/// The schema is a ring of `num_types` otherwise-identical types; the
/// two candidates change only `T0` (an added optional attribute and an
/// `@required` tightening), so `migrate::plan`'s dirty region is one
/// type's nodes plus their incident edges while the full pass touches
/// everything.
pub fn migration_planning(num_types: usize, nodes_per_type: usize, iters: usize) -> String {
    fn sdl(num_types: usize, tighten: bool, extend: bool) -> String {
        let mut s = String::new();
        for t in 0..num_types {
            let req = if tighten && t == 0 { " @required" } else { "" };
            let _ = writeln!(s, "type T{t} {{");
            let _ = writeln!(s, "    name: String{req}");
            if extend && t == 0 {
                let _ = writeln!(s, "    zmig: String");
            }
            let _ = writeln!(s, "    next: [T{}] @distinct", (t + 1) % num_types);
            let _ = writeln!(s, "}}");
        }
        s
    }
    let old = PgSchema::parse(&sdl(num_types, false, false)).unwrap();
    let graph = GraphGen::new(
        &old,
        GraphGenParams {
            nodes_per_type,
            ..Default::default()
        },
    )
    .generate_conforming(10)
    .expect("constraint-free ring schema admits conforming graphs");
    let options = ValidationOptions::default();
    let mut out = String::from(
        "| candidate | nodes | edges | full revalidation | `migrate plan` | speedup | dirty region |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for (label, tighten, extend) in [
        ("add optional `T0.zmig`", false, true),
        ("tighten `T0.name @required`", true, false),
    ] {
        let candidate = PgSchema::parse(&sdl(num_types, tighten, extend)).unwrap();
        let t_full = time_median(iters, || {
            validate(
                &graph,
                &candidate,
                &ValidationOptions::with_engine(Engine::Indexed),
            )
        });
        let t_plan = time_median(iters.max(5), || {
            pg_schema::migrate::plan(&graph, &old, &candidate, &options)
        });
        let p = pg_schema::migrate::plan(&graph, &old, &candidate, &options);
        let _ = writeln!(
            out,
            "| {label} | {} | {} | {} | {} | {:.0}× | {} nodes + {} edges of {} |",
            graph.node_count(),
            graph.edge_count(),
            fmt_duration(t_full),
            fmt_duration(t_plan),
            t_full.as_secs_f64() / t_plan.as_secs_f64(),
            p.dirty_nodes,
            p.dirty_edges,
            p.elements_total,
        );
    }
    out
}

/// E3 — validation time vs schema size at (roughly) constant graph size.
pub fn schema_scaling(type_counts: &[usize], total_nodes: usize, iters: usize) -> String {
    let mut out =
        String::from("| object types | nodes | edges | indexed validation |\n|---|---|---|---|\n");
    for &nt in type_counts {
        let sdl = SchemaGen::new(SchemaGenParams::benchmarkable(nt, 42)).generate();
        let schema = PgSchema::parse(&sdl).unwrap();
        let graph = GraphGen::new(
            &schema,
            GraphGenParams {
                nodes_per_type: (total_nodes / nt).max(1),
                ..Default::default()
            },
        )
        .generate();
        let t = time_median(iters, || {
            validate(&graph, &schema, &ValidationOptions::default())
        });
        let _ = writeln!(
            out,
            "| {nt} | {} | {} | {} |",
            graph.node_count(),
            graph.edge_count(),
            fmt_duration(t)
        );
    }
    out
}

/// E4a — the classic random 3-SAT phase transition, via the DPLL oracle.
pub fn phase_transition(num_vars: usize, instances: u64) -> String {
    let mut out =
        String::from("| clause/var ratio | SAT fraction | median decisions |\n|---|---|---|\n");
    for ratio10 in [10u32, 20, 30, 38, 43, 48, 60, 80] {
        let ratio = ratio10 as f64 / 10.0;
        let mut sat = 0u64;
        let mut decisions: Vec<u64> = Vec::new();
        for seed in 0..instances {
            let f = dpll::random_ksat(&KsatParams::three_sat(num_vars, ratio, seed));
            let (model, stats) = dpll::solve_with_stats(&f);
            if model.is_some() {
                sat += 1;
            }
            decisions.push(stats.decisions);
        }
        decisions.sort();
        let _ = writeln!(
            out,
            "| {ratio:.1} | {:.2} | {} |",
            sat as f64 / instances as f64,
            decisions[decisions.len() / 2]
        );
    }
    out
}

/// E4b — the Theorem 2 pipeline: DPLL verdict vs reduction + finite
/// search, with wall time, as formula size grows.
pub fn reduction_scaling(var_counts: &[usize], ratio: f64, seeds: u64) -> String {
    let mut out = String::from(
        "| vars | clauses | agree | median oracle | median reduction pipeline |\n\
         |---|---|---|---|---|\n",
    );
    for &n in var_counts {
        let clauses = (n as f64 * ratio).round() as usize;
        let mut oracle_times = Vec::new();
        let mut pipeline_times = Vec::new();
        let mut agree = true;
        for seed in 0..seeds {
            let f = dpll::random_ksat(&KsatParams {
                num_vars: n,
                num_clauses: clauses,
                k: 2,
                seed,
            });
            let t0 = std::time::Instant::now();
            let oracle = dpll::solve(&f).is_some();
            oracle_times.push(t0.elapsed());
            let t1 = std::time::Instant::now();
            let via = pg_reason::reduction::decide_via_reduction(&f).is_some();
            pipeline_times.push(t1.elapsed());
            agree &= oracle == via;
        }
        oracle_times.sort();
        pipeline_times.sort();
        let _ = writeln!(
            out,
            "| {n} | {clauses} | {} | {} | {} |",
            if agree { "yes" } else { "NO" },
            fmt_duration(oracle_times[oracle_times.len() / 2]),
            fmt_duration(pipeline_times[pipeline_times.len() / 2]),
        );
    }
    out
}

/// E5 — tableau scaling on required-chain schemas of growing depth.
pub fn reasoner_scaling(depths: &[usize], iters: usize) -> String {
    let mut out =
        String::from("| chain depth | types | tableau verdict | time |\n|---|---|---|---|\n");
    for &d in depths {
        let mut sdl = String::new();
        for i in 0..d {
            let _ = writeln!(sdl, "type C{i} {{ next: C{} @required }}", i + 1);
        }
        let _ = writeln!(sdl, "type C{d} {{ x: Int }}");
        let schema = PgSchema::parse(&sdl).unwrap();
        let tbox = pg_reason::translate::translate(&schema);
        let config = ReasonerConfig::default();
        let outcome = pg_reason::tableau::check_concept_by_name(&tbox, "C0", &config);
        let t = time_median(iters, || {
            pg_reason::tableau::check_concept_by_name(&tbox, "C0", &config)
        });
        let _ = writeln!(
            out,
            "| {d} | {} | {outcome:?} | {} |",
            d + 1,
            fmt_duration(t)
        );
    }
    out
}

/// E6 — the §6.2 satisfiability verdicts (Example 6.1 / diagrams a–c).
pub fn satisfiability_verdicts() -> String {
    let cases: [(&str, &str, &str); 4] = [
        (
            "diagram (a) / Example 6.1",
            r#"
            type OT1 { }
            interface IT { hasOT1: [OT1] @uniqueForTarget }
            type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
            type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
            "#,
            "OT1",
        ),
        (
            "diagram (b): infinite chain",
            r#"
            type OT1 { toOT3: [OT3] @required @uniqueForTarget }
            interface IT { toOT1: [OT1] @uniqueForTarget }
            type OT2 implements IT { toOT1: [OT1] @required }
            type OT3 implements IT { toOT1: [OT1] @required }
            "#,
            "OT2",
        ),
        (
            "diagram (c): forced coincidence",
            r#"
            type OT1 { }
            interface IT { f: [OT1] @uniqueForTarget }
            type OT2 implements IT { f: [OT1] @required }
            type OT3 implements IT { f: [OT1] @requiredForTarget }
            "#,
            "OT2",
        ),
        (
            "control (satisfiable)",
            r#"
            type Author { favoriteBook: Book }
            type Book { title: String! author: [Author] @required }
            "#,
            "Book",
        ),
    ];
    let mut out = String::from("| schema | queried type | verdict |\n|---|---|---|\n");
    for (name, sdl, ty) in cases {
        let schema = PgSchema::parse(sdl).unwrap();
        let verdict = match check_object_type(&schema, ty, &ReasonerConfig::default()) {
            Satisfiability::Satisfiable { size, .. } => {
                format!("satisfiable (witness: {size} nodes)")
            }
            Satisfiability::Unsatisfiable => "UNSATISFIABLE".to_owned(),
            Satisfiability::NoFiniteModelFound {
                bound,
                tableau_satisfiable,
            } => match tableau_satisfiable {
                Some(true) => format!("no finite model ≤ {bound}; infinite model exists"),
                _ => format!("no finite model ≤ {bound}; tableau inconclusive"),
            },
        };
        let _ = writeln!(out, "| {name} | {ty} | {verdict} |");
    }
    out
}

/// E9 — consistency-checking time vs schema size.
pub fn consistency_scaling(type_counts: &[usize], iters: usize) -> String {
    let mut out = String::from("| object types | check time |\n|---|---|\n");
    for &nt in type_counts {
        let sdl = SchemaGen::new(SchemaGenParams::benchmarkable(nt, 7)).generate();
        let doc = gql_sdl::parse(&sdl).unwrap();
        let schema = gql_schema::build_schema(&doc).unwrap();
        let t = time_median(iters, || gql_schema::consistency::check(&schema));
        let _ = writeln!(out, "| {nt} | {} |", fmt_duration(t));
    }
    out
}

/// E10 — the defect-detection matrix. Defects are injected into the
/// social schema's graph where applicable, falling back to the library
/// schema (Examples 3.6 + 3.8) whose target-side directives give the
/// remaining defects a site.
pub fn detection_matrix() -> String {
    let fixtures: Vec<(&str, PgSchema)> = vec![
        (
            "social",
            PgSchema::parse(pg_datagen::schemagen::social_schema()).unwrap(),
        ),
        (
            "library",
            PgSchema::parse(pg_datagen::schemagen::library_schema()).unwrap(),
        ),
    ];
    let bases: Vec<pgraph::PropertyGraph> = fixtures
        .iter()
        .map(|(name, schema)| {
            GraphGen::new(
                schema,
                GraphGenParams {
                    nodes_per_type: 30,
                    ..Default::default()
                },
            )
            .generate_conforming(10)
            .unwrap_or_else(|| panic!("{name} schema generable"))
        })
        .collect();
    let mut out = String::from(
        "| injected defect | target rule | schema | detected | total violations |\n\
         |---|---|---|---|---|\n",
    );
    for defect in Defect::ALL {
        let mut placed = false;
        for ((name, schema), base) in fixtures.iter().zip(&bases) {
            let mut g = base.clone();
            if !inject(&mut g, schema, defect) {
                continue;
            }
            placed = true;
            let report = validate(&g, schema, &ValidationOptions::default());
            let caught = report.by_rule(defect.rule()).next().is_some();
            let _ = writeln!(
                out,
                "| {defect:?} | {} | {name} | {} | {} |",
                defect.rule(),
                if caught { "yes" } else { "MISSED" },
                report.len()
            );
            break;
        }
        if !placed {
            let _ = writeln!(
                out,
                "| {defect:?} | {} | — | n/a (no site) | — |",
                defect.rule()
            );
        }
    }
    out
}

/// E11 — ablation: the symmetry-breaking clauses of the bounded
/// finite-model search (DESIGN.md design-choice index), measured on the
/// Theorem 2 reduction of an UNSAT formula (worst case: the whole space
/// must be refuted).
pub fn symmetry_ablation(var_counts: &[usize]) -> String {
    use pg_reason::finite::{find_model_with_options, FiniteSearchOptions};
    let mut out =
        String::from("| vars | clauses | with symmetry breaking | without |\n|---|---|---|---|\n");
    for &n in var_counts {
        // Pigeonhole-flavoured UNSAT: x1 … xn all true, plus pairwise
        // exclusion of the first two — guaranteed UNSAT, structured.
        let mut f = dpll::Cnf::new(n);
        for v in 0..n {
            f.add_clause([dpll::Lit::pos(v)]);
        }
        f.add_clause([dpll::Lit::neg(0), dpll::Lit::neg(1)]);
        let red = pg_reason::reduction::reduce_cnf(&f);
        let schema = PgSchema::parse(&red.sdl).unwrap();
        let mut cells = Vec::new();
        for sb in [true, false] {
            let options = FiniteSearchOptions {
                symmetry_breaking: sb,
            };
            let t = time_median(1, || {
                for k in 1..=red.bound {
                    if find_model_with_options(&schema, &red.object_type, k, &options).is_some() {
                        panic!("UNSAT formula produced a model");
                    }
                }
            });
            cells.push(fmt_duration(t));
        }
        let _ = writeln!(
            out,
            "| {n} | {} | {} | {} |",
            f.num_clauses(),
            cells[0],
            cells[1]
        );
    }
    out
}

/// E12 — solver ablation: plain DPLL vs CDCL on random 3-SAT around the
/// phase transition.
pub fn solver_ablation(num_vars: &[usize], instances: u64) -> String {
    let mut out = String::from(
        "| vars (ratio 4.3) | agree | median DPLL | median CDCL |\n|---|---|---|---|\n",
    );
    for &n in num_vars {
        let mut dpll_times = Vec::new();
        let mut cdcl_times = Vec::new();
        let mut agree = true;
        for seed in 0..instances {
            let f = dpll::random_ksat(&KsatParams::three_sat(n, 4.3, seed));
            let t0 = std::time::Instant::now();
            let a = dpll::solve(&f).is_some();
            dpll_times.push(t0.elapsed());
            let t1 = std::time::Instant::now();
            let b = dpll::solve_cdcl(&f).is_some();
            cdcl_times.push(t1.elapsed());
            agree &= a == b;
        }
        dpll_times.sort();
        cdcl_times.sort();
        let _ = writeln!(
            out,
            "| {n} | {} | {} | {} |",
            if agree { "yes" } else { "NO" },
            fmt_duration(dpll_times[dpll_times.len() / 2]),
            fmt_duration(cdcl_times[cdcl_times.len() / 2]),
        );
    }
    out
}

/// Validation throughput in elements/second for one large instance —
/// headline number for the README.
pub fn throughput(nodes_per_type: usize) -> (usize, usize, Duration) {
    let schema = PgSchema::parse(pg_datagen::schemagen::social_schema()).unwrap();
    let graph = GraphGen::new(
        &schema,
        GraphGenParams {
            nodes_per_type,
            ..Default::default()
        },
    )
    .generate_conforming(5)
    .expect("generable");
    let t = time_median(3, || {
        validate(&graph, &schema, &ValidationOptions::default())
    });
    (graph.node_count(), graph.edge_count(), t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_table_matches_paper() {
        let t = cardinality_table();
        assert!(
            t.contains("| 1:1 | `rel: B @uniqueForTarget` | rejected (WS4) | rejected (DS3) |"),
            "{t}"
        );
        assert!(
            t.contains("| N:M | `rel: [B]` | allowed | allowed |"),
            "{t}"
        );
    }

    #[test]
    fn validation_scaling_smoke() {
        let t = validation_scaling(&[20, 40], 40, 1);
        assert!(t.contains("fitted growth exponent"), "{t}");
    }

    #[test]
    fn incremental_scaling_smoke() {
        let t = incremental_scaling(&[20], 1);
        assert!(t.contains("of "), "{t}");
        assert_eq!(t.lines().count(), 3, "{t}");
    }

    #[test]
    fn columnar_core_smoke() {
        let t = columnar_core(&[30], 1);
        assert!(t.contains("scan speedup"), "{t}");
        assert!(
            t.contains("| open (PGS1 eager) | open (PGS2 mmap) |"),
            "{t}"
        );
        // One adjacency row + one recovery row for the single size.
        assert!(t.matches('×').count() >= 2, "{t}");
    }

    #[test]
    fn migration_planning_smoke() {
        let t = migration_planning(4, 20, 1);
        assert!(t.contains("tighten `T0.name @required`"), "{t}");
        assert_eq!(t.lines().count(), 4, "{t}");
    }

    #[test]
    fn schema_scaling_smoke() {
        let t = schema_scaling(&[3, 6], 60, 1);
        assert_eq!(t.lines().count(), 4, "{t}");
    }

    #[test]
    fn phase_transition_smoke() {
        let t = phase_transition(10, 4);
        assert!(t.contains("| 4.3 |"), "{t}");
    }

    #[test]
    fn reduction_scaling_smoke() {
        let t = reduction_scaling(&[3], 1.5, 2);
        assert!(t.contains("| yes |") || t.contains("| 3 |"), "{t}");
        assert!(!t.contains("| NO |"), "oracle disagreement:\n{t}");
    }

    #[test]
    fn reasoner_scaling_smoke() {
        let t = reasoner_scaling(&[1, 3], 1);
        assert!(t.contains("Satisfiable"), "{t}");
    }

    #[test]
    fn satisfiability_verdicts_match_section_6_2() {
        let t = satisfiability_verdicts();
        assert!(t.contains("| OT1 | UNSATISFIABLE |"), "{t}");
        assert!(t.contains("infinite model exists"), "{t}");
        assert!(t.contains("| Book | satisfiable"), "{t}");
    }

    #[test]
    fn consistency_scaling_smoke() {
        let t = consistency_scaling(&[3], 1);
        assert_eq!(t.lines().count(), 3, "{t}");
    }

    #[test]
    fn symmetry_ablation_smoke() {
        let t = symmetry_ablation(&[2]);
        assert!(t.contains("| 2 |"), "{t}");
    }

    #[test]
    fn solver_ablation_smoke() {
        let t = solver_ablation(&[10], 3);
        assert!(t.contains("| yes |"), "{t}");
    }

    #[test]
    fn detection_matrix_has_no_misses() {
        let t = detection_matrix();
        assert!(!t.contains("MISSED"), "{t}");
        assert!(t.contains("| yes |"), "{t}");
    }
}
