//! The shared error type for parsing closed enumerations from flag and
//! query-parameter text.
//!
//! Several crates expose small wire vocabularies — `pg_schema::Engine`
//! (`naive|indexed|…`), `pg_server::LogFormat` (`text|json|off`),
//! `pg_store::FsyncPolicy` (`always|interval[:millis]|never`) — and all
//! of them are parsed from user-typed strings: CLI flags, `?engine=`
//! query parameters, config values. Each implements [`std::str::FromStr`]
//! with this error, so every "unknown variant" message lists what *would*
//! have parsed, in one shared format, instead of each call site
//! hand-rolling its own hint.

use std::fmt;

/// A string failed to parse as a closed enumeration: carries what was
/// being parsed, the offending input, and the accepted spellings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEnumError {
    /// What kind of value was expected, e.g. `"engine"`.
    pub what: &'static str,
    /// The input that did not match any variant.
    pub got: String,
    /// The accepted spellings (patterns like `interval[:millis]` allowed).
    pub expected: &'static [&'static str],
}

impl ParseEnumError {
    /// A new error for `what` with the accepted `expected` spellings.
    pub fn new(what: &'static str, got: &str, expected: &'static [&'static str]) -> Self {
        ParseEnumError {
            what,
            got: got.to_owned(),
            expected,
        }
    }
}

impl fmt::Display for ParseEnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {} `{}` (expected {})",
            self.what,
            self.got,
            self.expected.join("|")
        )
    }
}

impl std::error::Error for ParseEnumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_lists_variants() {
        let e = ParseEnumError::new("engine", "quantum", &["naive", "indexed"]);
        assert_eq!(
            e.to_string(),
            "unknown engine `quantum` (expected naive|indexed)"
        );
    }
}
