//! Quickstart: define a schema in GraphQL SDL, build a Property Graph,
//! and validate it — the paper's Examples 3.1–3.5 end to end.
//!
//! Run with: `cargo run --example quickstart`

use pg_schema::{validate, PgSchema, ValidationOptions};
use pgraph::{GraphBuilder, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The schema of Example 3.1, with the edge properties of Example 3.12
    // and the key of Example 3.4.
    let schema = PgSchema::parse(
        r#"
        type UserSession {
            id: ID! @required
            user(certainty: Float! comment: String): User! @required
            startTime: Time! @required
            endTime: Time!
        }
        type User @key(fields: ["id"]) {
            id: ID! @required
            login: String! @required
            nicknames: [String!]!
        }
        scalar Time
        "#,
    )?;

    // A conforming instance.
    let mut graph = GraphBuilder::new()
        .node("alice", "User")
        .prop("alice", "id", Value::Id("u-1".into()))
        .prop("alice", "login", "alice")
        .prop("alice", "nicknames", Value::from(vec!["al", "lice"]))
        .node("s1", "UserSession")
        .prop("s1", "id", Value::Id("s-1".into()))
        .prop("s1", "startTime", "2019-06-30T10:00:00Z")
        .edge("s1", "alice", "user")
        .edge_prop("certainty", 0.97)
        .build()?;

    let report = validate(&graph, &schema, &ValidationOptions::default());
    println!(
        "conforming graph: {}",
        if report.conforms() { "OK" } else { "FAIL" }
    );
    assert!(report.conforms());

    // Break it three ways and watch the rules fire.
    let alice = graph.nodes().find(|n| n.label() == "User").unwrap().id;
    graph.set_node_property(alice, "login", Value::Int(42)); // WS1
    graph.remove_node_property(alice, "id"); // DS5
    graph.set_node_property(alice, "shoeSize", Value::Int(43)); // SS2

    let report = validate(&graph, &schema, &ValidationOptions::default());
    println!("\nafter injecting three defects:\n{report}");
    assert_eq!(report.len(), 3);

    // Serialise the graph for the CLI:
    //   pgschema validate schema.graphql graph.json
    let json = pgraph::json::to_json(&graph);
    println!("graph as JSON ({} bytes)", json.len());
    Ok(())
}
