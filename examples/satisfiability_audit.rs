//! Schema satisfiability audit — reproduces §6.2 of the paper: Example
//! 6.1 / diagram (a), plus the diagrams (b) and (c) conflict patterns.
//!
//! Diagram (a): an object type whose targets need incoming edges from two
//! different implementors of an interface that allows at most one.
//! Diagram (b): a schema whose only models are infinite chains — finitely
//! unsatisfiable although the tableau (unrestricted semantics) finds a
//! model.
//! Diagram (c): a type forced to coincide with a differently-labelled
//! node.
//!
//! Note: the paper prints Example 6.1's interface field as `hasOT1: OT1`,
//! which is interface-inconsistent under its own Definition 4.3
//! (`[OT1] ⊑ OT1` is not derivable); we use `[OT1]`, which preserves the
//! conflict. Run with: `cargo run --example satisfiability_audit`

use pg_reason::{check_object_type, ReasonerConfig, Satisfiability};
use pg_schema::PgSchema;

fn audit(name: &str, sdl: &str, types: &[&str]) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {name} ===");
    let schema = PgSchema::parse(sdl)?;
    let config = ReasonerConfig::default();
    for ty in types {
        match check_object_type(&schema, ty, &config) {
            Satisfiability::Satisfiable { size, witness } => {
                println!(
                    "  {ty}: satisfiable (witness: {size} node(s), {} edge(s))",
                    witness.edge_count()
                );
                assert!(pg_schema::strongly_satisfies(&witness, &schema));
            }
            Satisfiability::Unsatisfiable => println!("  {ty}: UNSATISFIABLE"),
            Satisfiability::NoFiniteModelFound {
                bound,
                tableau_satisfiable,
            } => match tableau_satisfiable {
                Some(true) => {
                    println!("  {ty}: no finite model (≤ {bound} nodes) — infinite models exist")
                }
                _ => println!("  {ty}: no finite model (≤ {bound} nodes) — tableau inconclusive"),
            },
        }
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 6.1 / diagram (a): OT1 conflicts.
    audit(
        "Example 6.1 / diagram (a)",
        r#"
        type OT1 { }
        interface IT { hasOT1: [OT1] @uniqueForTarget }
        type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
        type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
        "#,
        &["OT1", "OT2", "OT3"],
    )?;

    // Diagram (b): every OT2 node starts an infinite alternating chain of
    // OT1/OT3 nodes, none of which may coincide.
    audit(
        "diagram (b): infinite chains only",
        r#"
        type OT1 { toOT3: [OT3] @required @uniqueForTarget }
        interface IT { toOT1: [OT1] @uniqueForTarget }
        type OT2 implements IT { toOT1: [OT1] @required }
        type OT3 implements IT { toOT1: [OT1] @required }
        "#,
        &["OT2"],
    )?;

    // Diagram (c): an OT2 node would have to *be* an OT3 node.
    audit(
        "diagram (c): forced label coincidence",
        r#"
        type OT1 { }
        interface IT { f: [OT1] @uniqueForTarget }
        type OT2 implements IT { f: [OT1] @required }
        type OT3 implements IT { f: [OT1] @requiredForTarget }
        "#,
        &["OT2", "OT3", "OT1"],
    )?;

    // A healthy schema for contrast.
    audit(
        "satisfiable control schema",
        r#"
        type Author { favoriteBook: Book relatedAuthor: [Author] @distinct @noLoops }
        type Book { title: String! author: [Author] @required @distinct }
        "#,
        &["Author", "Book"],
    )?;
    Ok(())
}
