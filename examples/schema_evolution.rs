//! Schema evolution: diff two versions of a Property Graph schema and
//! classify every change by instance compatibility — will existing
//! conforming databases keep conforming?
//!
//! Run with: `cargo run --example schema_evolution`

use pg_datagen::{GraphGen, GraphGenParams};
use pg_schema::diff::{diff, Compat};
use pg_schema::{validate, PgSchema, ValidationOptions};

const V1: &str = r#"
type User {
    id: ID! @required
    login: String!
    follows: [User]
}
type Post {
    title: String!
    author: User
}
"#;

const V2: &str = r#"
type User @key(fields: ["id"]) {
    id: ID! @required
    login: String! @required
    follows: [User] @distinct @noLoops
    bio: String
}
type Post {
    title: String!
    author: User @required
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let v1 = PgSchema::parse(V1)?;
    let v2 = PgSchema::parse(V2)?;

    let changes = diff(&v1, &v2);
    println!("v1 → v2 changes:\n{changes}");
    assert!(changes.is_breaking());
    let breaking = changes.breaking().count();
    let compatible = changes
        .changes
        .iter()
        .filter(|c| c.compat() == Compat::Compatible)
        .count();
    println!("{breaking} breaking, {compatible} compatible change(s)\n");

    // Demonstrate the classification empirically: generate a v1-conforming
    // instance and validate it against v2 — the violations correspond to
    // the breaking changes.
    let g = GraphGen::new(
        &v1,
        GraphGenParams {
            nodes_per_type: 15,
            seed: 4,
            ..Default::default()
        },
    )
    .generate_conforming(10)
    .ok_or("v1 graph generable")?;
    assert!(validate(&g, &v1, &ValidationOptions::default()).conforms());
    let report = validate(&g, &v2, &ValidationOptions::default());
    println!(
        "a v1-conforming instance has {} violation(s) under v2; rules: {:?}",
        report.len(),
        report.counts().keys().collect::<Vec<_>>()
    );
    assert!(!report.conforms(), "breaking diff must break some instance");

    // The reverse direction (v2 → v1) only removes constraints.
    let relaxing = diff(&v2, &v1);
    println!("\nv2 → v1 changes:\n{relaxing}");
    let g2 = GraphGen::new(
        &v2,
        GraphGenParams {
            nodes_per_type: 15,
            seed: 4,
            ..Default::default()
        },
    )
    .generate_conforming(10)
    .ok_or("v2 graph generable")?;
    let back = validate(&g2, &v1, &ValidationOptions::default());
    // Everything except the *removed* bio field stays justified; bio was
    // only ever optional, and the generator may have filled it → field
    // removal is exactly the breaking part.
    println!(
        "a v2-conforming instance has {} violation(s) under v1",
        back.len()
    );
    Ok(())
}
