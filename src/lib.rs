//! Umbrella crate: re-exports the workspace public API for examples and integration tests.
pub use gql_schema as schema;
pub use gql_sdl as sdl;
pub use pg_reason as reason;
pub use pg_schema as core;
pub use pgraph as graph;
