//! The three satisfaction notions of §5 are separately checkable:
//! weak (Def. 5.1) ⊇ weak+directives (Def. 5.2) ⊇ strong (Def. 5.3).

use pg_schema::{validate, Engine, PgSchema, Rule, RuleFamily, ValidationOptions};
use pgraph::{GraphBuilder, PropertyGraph, Value};

fn schema() -> PgSchema {
    PgSchema::parse(
        r#"
        type User @key(fields: ["id"]) {
            id: ID! @required
            login: String! @required
            follows: [User] @distinct @noLoops
        }
        "#,
    )
    .unwrap()
}

/// A graph violating one rule from each family:
/// WS1 (login: Int), DS5 (missing id), SS2 (ghost property).
fn tri_violating_graph() -> PropertyGraph {
    GraphBuilder::new()
        .node("u", "User")
        .prop("u", "login", 42i64)
        .prop("u", "ghost", true)
        .build()
        .unwrap()
}

fn options(weak: bool, directives: bool, strong: bool, engine: Engine) -> ValidationOptions {
    ValidationOptions::builder()
        .engine(engine)
        .families(weak, directives, strong)
        .build()
}

#[test]
fn each_family_is_independently_selectable() {
    let s = schema();
    let g = tri_violating_graph();
    for engine in [Engine::Naive, Engine::Indexed, Engine::Parallel] {
        let weak = validate(&g, &s, &options(true, false, false, engine));
        assert_eq!(weak.len(), 1, "{weak}");
        assert_eq!(weak.violations()[0].rule(), Rule::WS1);

        let dirs = validate(&g, &s, &options(false, true, false, engine));
        assert_eq!(dirs.len(), 1, "{dirs}");
        assert_eq!(dirs.violations()[0].rule(), Rule::DS5);

        let strong = validate(&g, &s, &options(false, false, true, engine));
        assert_eq!(strong.len(), 1, "{strong}");
        assert_eq!(strong.violations()[0].rule(), Rule::SS2);
    }
}

#[test]
fn full_run_is_the_union_of_the_families() {
    let s = schema();
    let g = tri_violating_graph();
    for engine in [Engine::Naive, Engine::Indexed, Engine::Parallel] {
        let full = validate(&g, &s, &ValidationOptions::with_engine(engine));
        assert_eq!(full.len(), 3, "{full}");
        let mut families: Vec<RuleFamily> = full
            .violations()
            .iter()
            .map(|v| v.rule().family())
            .collect();
        families.dedup();
        assert_eq!(
            families,
            vec![RuleFamily::Weak, RuleFamily::Directives, RuleFamily::Strong]
        );
    }
}

#[test]
fn weak_satisfaction_ignores_justification() {
    // A graph full of unknown labels/properties weakly satisfies any
    // schema (no typed constraints apply to unknown elements).
    let s = schema();
    let g = GraphBuilder::new()
        .node("x", "Alien")
        .prop("x", "anything", Value::from(vec![1i64, 2]))
        .node("y", "Alien")
        .edge("x", "y", "beams")
        .build()
        .unwrap();
    let weak = validate(&g, &s, &ValidationOptions::weak_only());
    assert!(weak.conforms(), "{weak}");
    let full = validate(&g, &s, &ValidationOptions::default());
    assert!(!full.conforms());
    // SS1 ×2, SS2 ×1, SS4 ×1.
    assert_eq!(full.len(), 4, "{full}");
}

#[test]
fn directive_constraints_apply_even_on_weakly_invalid_graphs() {
    // DS rules fire independently of WS rules.
    let s = schema();
    let mut g = GraphBuilder::new()
        .node("u", "User")
        .prop("u", "id", Value::Id("1".into()))
        .prop("u", "login", "alice")
        .edge("u", "u", "follows") // DS2 loop
        .build()
        .unwrap();
    let u = g.node_ids().next().unwrap();
    g.set_node_property(u, "login", Value::Int(9)); // WS1 too
    let report = validate(&g, &s, &ValidationOptions::default());
    let rules: Vec<Rule> = report.counts().keys().copied().collect();
    assert_eq!(rules, vec![Rule::WS1, Rule::DS2]);
}

#[test]
fn max_violations_truncates_on_every_engine() {
    let s = schema();
    let g = tri_violating_graph();
    for engine in [Engine::Naive, Engine::Indexed, Engine::Parallel] {
        let opts = ValidationOptions::builder()
            .engine(engine)
            .max_violations(1)
            .build();
        let r = validate(&g, &s, &opts);
        assert!(r.truncated(), "{engine:?}");
        assert!(r.len() <= 1, "{engine:?}: {r}");
        assert!(!r.conforms());
        // The unlimited run still sees all three violations.
        let full = validate(&g, &s, &ValidationOptions::with_engine(engine));
        assert_eq!(full.len(), 3, "{engine:?}");
        assert!(!full.truncated());
        // A zero limit checks nothing, so it must not certify conformance.
        let zero = ValidationOptions::builder()
            .engine(engine)
            .max_violations(0)
            .build();
        let r = validate(&g, &s, &zero);
        assert!(r.is_empty() && r.truncated() && !r.conforms(), "{engine:?}");
    }
}

#[test]
fn metrics_are_opt_in_and_engine_tagged() {
    let s = schema();
    let g = tri_violating_graph();
    let silent = validate(&g, &s, &ValidationOptions::default());
    assert!(silent.metrics().is_none());
    for (engine, name) in [
        (Engine::Naive, "naive"),
        (Engine::Indexed, "indexed"),
        (Engine::Parallel, "parallel"),
    ] {
        let opts = ValidationOptions::builder()
            .engine(engine)
            .collect_metrics(true)
            .build();
        let r = validate(&g, &s, &opts);
        assert_eq!(r, silent, "metrics must not change the verdict");
        let m = r.metrics().expect("metrics were requested");
        assert_eq!(m.engine, name);
        assert_eq!(m.families.len(), 3, "{engine:?}: {m}");
        assert!(m.nodes_scanned >= 1, "{engine:?}");
        let attributed: usize = m.families.iter().map(|f| f.violations).sum();
        assert_eq!(attributed, r.len(), "{engine:?}: {m}");
        if engine == Engine::Parallel {
            assert!(!m.shard_elements.is_empty());
            assert!(m.shard_skew().is_some());
        } else {
            assert!(m.shard_elements.is_empty());
            assert!(m.shard_skew().is_none());
        }
        // The JSON rendering carries the metrics block.
        assert!(r.to_json().contains("\"metrics\""));
    }
}

#[test]
fn report_accessors_are_consistent() {
    let s = schema();
    let g = tri_violating_graph();
    let report = validate(&g, &s, &ValidationOptions::default());
    assert_eq!(report.violations().len(), report.len());
    assert_eq!(report.counts().values().sum::<usize>(), report.len());
    for rule in Rule::ALL {
        assert_eq!(
            report.by_rule(rule).count(),
            report.counts().get(&rule).copied().unwrap_or(0)
        );
    }
    assert!(!report.is_empty());
}
